//! Serving demo: train a small model, persist it, load the snapshot into a
//! `kg-serve` registry, and drive every endpoint over real HTTP — verifying
//! that the service's sampled metrics agree with library-level
//! `evaluate_sampled` on the same seed.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::sync::Arc;

use kgeval::core::sample::seeded_rng;
use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::{evaluate_sampled, TieBreak};
use kgeval::models::{build_model, train, KgcModel, ModelKind, TrainConfig};
use kgeval::recommend::{
    sample_candidates, CandidateSets, Lwd, RelationRecommender, SamplingStrategy, SeenSets,
};
use kgeval::serve::{client, serve, Json, ModelRegistry, Router, ServerConfig};

fn main() {
    // 1. Dataset + model, as in the quickstart.
    let dataset = generate(&preset(PresetId::CodexS, Scale::Quick));
    println!(
        "dataset {}: |E|={} |R|={} test={}",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.test.len()
    );
    let mut model =
        build_model(ModelKind::ComplEx, dataset.num_entities(), dataset.num_relations(), 32, 42);
    let config = TrainConfig { epochs: 10, lr: 0.15, num_negatives: 4, ..Default::default() };
    train(model.as_mut(), dataset.train.triples(), &config, None);

    // 2. Persist the trained model, then load the snapshot back — the
    //    registry serves the *file*, exactly as a deployment would.
    let snapshot_path = std::env::temp_dir()
        .join(format!("kgeval-serve-demo-{}", std::process::id()))
        .join("complex.kgev");
    kgeval::models::io::save_model_to_path(model.as_ref(), ModelKind::ComplEx, &snapshot_path)
        .expect("save snapshot");
    let served: Arc<dyn KgcModel> =
        Arc::from(kgeval::models::io::load_model_from_path(&snapshot_path).expect("load snapshot")
            as Box<dyn KgcModel>);
    println!("snapshot round-tripped through {}", snapshot_path.display());

    // 3. Recommender artifacts so /eval can serve all three strategies.
    let matrix = Arc::new(Lwd::untyped().fit(&dataset));
    let static_sets =
        Arc::new(CandidateSets::static_sets(&matrix, &SeenSets::from_store(&dataset.train)));

    // 4. Register and serve.
    let registry = Arc::new(ModelRegistry::new());
    let filter = Arc::new(dataset.filter.clone());
    registry.register_with_artifacts(
        "complex",
        Arc::clone(&served),
        Arc::clone(&filter),
        Some(Arc::clone(&matrix)),
        Some(Arc::clone(&static_sets)),
    );
    let router = Router::new(Arc::clone(&registry));
    let server = serve(router, &ServerConfig::default()).expect("bind server");
    let addr = server.addr();
    println!("kg-serve listening on http://{addr}\n");

    // 5. /score — a few test triples over the wire.
    let sample: Vec<_> = dataset.test.iter().take(4).collect();
    let triples_json: Vec<String> =
        sample.iter().map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0)).collect();
    let body = format!("{{\"model\":\"complex\",\"triples\":[{}]}}", triples_json.join(","));
    let (status, response) = client::post_json(addr, "/score", &body).expect("/score");
    assert_eq!(status, 200, "/score failed: {response}");
    let parsed = Json::parse(&response).unwrap();
    let scores = parsed.get("scores").and_then(Json::as_array).unwrap();
    println!("/score  : {} triples → first score {}", scores.len(), scores[0]);
    for (t, s) in sample.iter().zip(scores) {
        let direct = served.score(t.head, t.relation, t.tail);
        assert_eq!(s.as_f64().unwrap() as f32, direct, "HTTP score != direct score");
    }

    // 6. /topk — tail prediction for the first test triple's (h, r).
    let q = sample[0];
    let body = format!(
        "{{\"model\":\"complex\",\"queries\":[{{\"head\":{},\"relation\":{}}}],\"k\":5}}",
        q.head.0, q.relation.0
    );
    let (status, response) = client::post_json(addr, "/topk", &body).expect("/topk");
    assert_eq!(status, 200, "/topk failed: {response}");
    let parsed = Json::parse(&response).unwrap();
    let top = &parsed.get("results").and_then(Json::as_array).unwrap()[0];
    println!(
        "/topk   : tail prediction for ({}, {}, ?) → {}",
        q.head.0,
        q.relation.0,
        top.get("entities").unwrap()
    );

    // 7. /eval with every strategy — must agree with the library bit-for-bit.
    let n_s = dataset.num_entities() / 10;
    let seed = 7u64;
    for strategy in SamplingStrategy::ALL {
        let name = strategy.name().to_lowercase();
        let body = format!(
            "{{\"model\":\"complex\",\"strategy\":\"{name}\",\"n_s\":{n_s},\"seed\":{seed},\"triples\":[{}]}}",
            dataset
                .test
                .iter()
                .map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0))
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, response) = client::post_json(addr, "/eval", &body).expect("/eval");
        assert_eq!(status, 200, "/eval {name} failed: {response}");
        let parsed = Json::parse(&response).unwrap();
        let http_mrr = parsed.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();

        // The same estimate computed directly against the library.
        let samples = sample_candidates(
            strategy,
            dataset.num_entities(),
            dataset.num_relations(),
            n_s,
            Some(&matrix),
            Some(&static_sets),
            &mut seeded_rng(seed),
        );
        let direct = evaluate_sampled(
            served.as_ref(),
            &dataset.test,
            filter.as_ref(),
            &samples,
            TieBreak::Mean,
            kgeval::core::parallel::default_threads(),
        );
        assert_eq!(
            http_mrr.to_bits(),
            direct.metrics.mrr.to_bits(),
            "{name}: served MRR {http_mrr} != library MRR {}",
            direct.metrics.mrr
        );
        println!(
            "/eval   : {:<14} MRR {:.4}  (cache {}, {:.4} s) — agrees with evaluate_sampled",
            name,
            http_mrr,
            parsed.get("sample_cache").and_then(Json::as_str).unwrap(),
            parsed.get("seconds").and_then(Json::as_f64).unwrap(),
        );
    }

    // 8. /healthz and /metrics.
    let (status, health) = client::get(addr, "/healthz").expect("/healthz");
    assert_eq!(status, 200);
    println!("\n/healthz: {health}");
    let (status, prom) = client::get(addr, "/metrics").expect("/metrics");
    assert_eq!(status, 200);
    let interesting: Vec<&str> = prom
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("kg_serve_requests_total")
                || l.starts_with("kg_serve_latency_seconds")
                || l.starts_with("kg_serve_score_batch")
        })
        .collect();
    println!("/metrics:");
    for line in &interesting {
        println!("  {line}");
    }
    assert!(
        prom.contains("kg_serve_requests_total{endpoint=\"/eval\"} 3"),
        "metrics must count the three /eval calls"
    );
    assert!(prom.contains("kg_serve_latency_seconds{endpoint=\"/score\",quantile=\"0.99\"}"));

    // Optional: keep serving so the endpoints can be explored with curl
    // (`KG_SERVE_HOLD_SECS=300 cargo run --release --example serve_demo`).
    if let Some(secs) = std::env::var("KG_SERVE_HOLD_SECS").ok().and_then(|v| v.parse().ok()) {
        println!("\nholding the server open for {secs} s — try:");
        println!("  curl -s {addr}/healthz");
        println!("  curl -s {addr}/score -d '{{\"model\":\"complex\",\"triples\":[[0,0,1]]}}'");
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(snapshot_path.parent().unwrap());
    println!("\nserver drained cleanly; the fast estimator is now a service.");
}
