//! Monitor a training run with cheap per-epoch estimates (Figure 3c):
//! the practical use-case the paper motivates — stop paying for full
//! validation rankings during development.
//!
//! ```text
//! cargo run --release --example training_monitor
//! ```

use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::estimator::Metric;
use kgeval::eval::harness::{run_train_eval, HarnessConfig};
use kgeval::eval::report::{f3, TextTable};
use kgeval::models::{ModelKind, TrainConfig};
use kgeval::recommend::{Lwd, SamplingStrategy};

fn main() {
    let dataset = generate(&preset(PresetId::CodexM, Scale::Quick));
    println!("dataset {}: training ComplEx, estimating validation MRR each epoch\n", dataset.name);

    let config = HarnessConfig {
        model: ModelKind::ComplEx,
        train: TrainConfig { epochs: 12, lr: 0.15, num_negatives: 4, ..Default::default() },
        max_eval_triples: 500,
        ..Default::default()
    };
    let run = run_train_eval(&dataset, &config, &Lwd::untyped(), &[]);

    let mut t =
        TextTable::new(vec!["Epoch", "Loss", "True MRR", "Random", "Probabilistic", "Static"]);
    for rec in &run.records {
        let by = |s: SamplingStrategy| {
            rec.estimates
                .iter()
                .find(|e| e.strategy == s)
                .map(|e| e.metrics.mrr)
                .unwrap_or(f64::NAN)
        };
        t.row(vec![
            format!("{}", rec.epoch + 1),
            format!("{:.4}", rec.loss),
            f3(rec.full.mrr),
            f3(by(SamplingStrategy::Random)),
            f3(by(SamplingStrategy::Probabilistic)),
            f3(by(SamplingStrategy::Static)),
        ]);
    }
    println!("{}", t.render());

    for s in SamplingStrategy::ALL {
        let series = run.series(s, Metric::Mrr);
        println!(
            "{:<14}: MAE {:.4}, Pearson {}",
            s.name(),
            series.mae(),
            series.pearson().map(|p| format!("{p:.3}")).unwrap_or_else(|| "—".into())
        );
    }
    let (speedup, _) = run.speedup(SamplingStrategy::Static);
    println!("\nstatic estimation ran {speedup:.1}x faster than the full ranking on average");
}
