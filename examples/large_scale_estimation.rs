//! The paper's large-scale scenario (§5.3): on a wikikg2-like graph, an
//! accurate MRR estimate from ~2 % of the entities, orders of magnitude
//! faster than the full ranking.
//!
//! ```text
//! cargo run --release --example large_scale_estimation
//! ```

use kgeval::core::sample::seeded_rng;
use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::{evaluate_full, evaluate_sampled, TieBreak};
use kgeval::models::{build_model, train, ModelKind, TrainConfig};
use kgeval::recommend::{sample_candidates, Lwd, RelationRecommender, SamplingStrategy};

fn main() {
    let dataset = generate(&preset(PresetId::WikiKg2, Scale::Quick));
    println!(
        "dataset {}: |E|={} |R|={} triples={}",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.num_triples()
    );

    let mut model =
        build_model(ModelKind::ComplEx, dataset.num_entities(), dataset.num_relations(), 32, 9);
    println!("training ComplEx (8 epochs)…");
    let config = TrainConfig { epochs: 8, lr: 0.15, num_negatives: 4, ..Default::default() };
    train(model.as_mut(), dataset.train.triples(), &config, None);

    let threads = kgeval::core::parallel::default_threads();
    let test: Vec<_> = dataset.test.iter().copied().take(2000).collect();

    let full = evaluate_full(model.as_ref(), &test, &dataset.filter, TieBreak::Mean, threads);
    println!(
        "\nfull filtered ranking over {} entities: MRR {:.3} in {:.2} s",
        dataset.num_entities(),
        full.metrics.mrr,
        full.seconds
    );

    let matrix = Lwd::untyped().fit(&dataset);
    let n_s = (dataset.num_entities() as f64 * 0.02) as usize; // 2 % of |E|
    let samples = sample_candidates(
        SamplingStrategy::Probabilistic,
        dataset.num_entities(),
        dataset.num_relations(),
        n_s,
        Some(&matrix),
        None,
        &mut seeded_rng(5),
    );
    let est =
        evaluate_sampled(model.as_ref(), &test, &dataset.filter, &samples, TieBreak::Mean, threads);
    println!(
        "probabilistic estimate from {n_s} candidates/relation (2 % of |E|): MRR {:.3} in {:.2} s",
        est.metrics.mrr, est.seconds
    );
    println!(
        "speed-up: {:.0}x, absolute MRR error: {:.3}",
        full.seconds / est.seconds.max(1e-9),
        (est.metrics.mrr - full.metrics.mrr).abs()
    );
}
