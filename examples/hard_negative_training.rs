//! The paper's §7 future-work directions, implemented:
//!
//! 1. **Recommender-guided training negatives** — corrupt with in-domain
//!    (hard) candidates from L-WD's static sets instead of uniform noise.
//!    Finding: on these graphs hard negatives *reduce* global filtered MRR —
//!    the model stops learning the domain boundary that dominates the full
//!    ranking. This is the trade-off the paper flags as open future work;
//! 2. **Closed-world triplet classification** — reject triples whose head
//!    or tail sits on an L-WD zero-score cell.
//!
//! ```text
//! cargo run --release --example hard_negative_training
//! ```

use kgeval::core::sample::seeded_rng;
use kgeval::core::Triple;
use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::{evaluate_full, HardNegativeSampler, TieBreak};
use kgeval::models::{
    build_model, train_epoch_with_source, ModelKind, NegativeSampler, NegativeSource, TrainConfig,
};
use kgeval::recommend::{CandidateSets, Lwd, RelationRecommender, SeenSets, ZeroScoreClassifier};
use rand::Rng;

fn main() {
    let dataset = generate(&preset(PresetId::CodexM, Scale::Quick));
    let threads = kgeval::core::parallel::default_threads();
    println!(
        "dataset {}: |E|={} |R|={}\n",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations()
    );

    let matrix = Lwd::untyped().fit(&dataset);
    let seen = SeenSets::from_store(&dataset.train);
    let sets = CandidateSets::static_sets(&matrix, &seen);

    // --- Extension 1: hard-negative training -----------------------------
    let config = TrainConfig { epochs: 12, lr: 0.15, num_negatives: 4, ..Default::default() };
    let test: Vec<Triple> = dataset.test.iter().copied().take(600).collect();

    let uniform_source = NegativeSampler::new(dataset.num_entities());
    let hard_source = HardNegativeSampler::new(sets, dataset.num_entities(), 0.8);

    for (name, source) in [
        ("uniform negatives", &uniform_source as &dyn NegativeSource),
        ("hard negatives (L-WD, 20% hard)", &hard_source),
    ] {
        let mut model = build_model(
            ModelKind::DistMult,
            dataset.num_entities(),
            dataset.num_relations(),
            32,
            7,
        );
        let mut rng = seeded_rng(config.seed);
        for _ in 0..config.epochs {
            train_epoch_with_source(
                model.as_mut(),
                dataset.train.triples(),
                &config,
                source,
                &mut rng,
            );
        }
        let full = evaluate_full(model.as_ref(), &test, &dataset.filter, TieBreak::Mean, threads);
        println!(
            "{name:<30}: test MRR {:.3}  Hits@10 {:.3}",
            full.metrics.mrr, full.metrics.hits10
        );
    }

    // --- Extension 2: closed-world triplet classification ----------------
    let clf = ZeroScoreClassifier::new(&matrix);
    let pos_rate = clf.acceptance_rate(&dataset.test);
    let mut rng = seeded_rng(3);
    let corrupted: Vec<Triple> = dataset
        .test
        .iter()
        .map(|t| Triple {
            tail: kgeval::core::EntityId(rng.gen_range(0..dataset.num_entities() as u32)),
            ..*t
        })
        .collect();
    let neg_rate = clf.acceptance_rate(&corrupted);
    println!("\nzero-score triplet classifier:");
    println!("  accepts {:.1} % of true test triples", 100.0 * pos_rate);
    println!("  accepts {:.1} % of uniformly corrupted triples", 100.0 * neg_rate);
    println!("  (rejections cost two sparse lookups; on real KGs like FB15k-237 the");
    println!("   paper reports ~58 % of candidate cells excludable — our synthetic");
    println!("   graphs are more densely type-bridged, so fewer cells are zero)");
}
