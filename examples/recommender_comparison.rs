//! Compare all relation recommenders on one dataset: Candidate Recall,
//! Reduction Rate and fit runtime (a single panel of the paper's Table 5).
//!
//! ```text
//! cargo run --release --example recommender_comparison
//! ```

use kgeval::core::timing::timed;
use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::report::{f3, TextTable};
use kgeval::recommend::{all_recommenders, cr_rr, CandidateSets, SeenSets};

fn main() {
    let dataset = generate(&preset(PresetId::Fb15k237, Scale::Quick));
    println!(
        "dataset {}: |E|={} |R|={} |T|={}\n",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.types.num_types()
    );

    let seen = SeenSets::from_store(&dataset.train);
    let mut seen_with_valid = seen.clone();
    seen_with_valid.extend_with(&dataset.valid);

    let mut table = TextTable::new(vec![
        "Recommender",
        "CR (Test)",
        "CR (Unseen)",
        "RR",
        "Mean set size",
        "Fit (s)",
    ]);
    for rec in all_recommenders() {
        let (matrix, secs) = timed(|| rec.fit(&dataset));
        let sets = CandidateSets::static_sets(&matrix, &seen);
        let report = cr_rr(&sets, &dataset, &seen_with_valid);
        table.row(vec![
            rec.name().to_string(),
            f3(report.cr_test),
            f3(report.cr_unseen),
            f3(report.reduction_rate),
            format!("{:.0}", sets.mean_size()),
            format!("{secs:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("PT cannot recall unseen candidates (CR Unseen = 0); typed and L-WD methods can.");
}
