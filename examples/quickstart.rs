//! Quickstart: generate a knowledge graph, train a KGC model, and compare
//! the full filtered evaluation against the three sampled estimators.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kgeval::core::sample::seeded_rng;
use kgeval::core::timing::timed;
use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::eval::{evaluate_full, evaluate_sampled, TieBreak};
use kgeval::models::{build_model, train, ModelKind, TrainConfig};
use kgeval::recommend::{
    sample_candidates, CandidateSets, Lwd, RelationRecommender, SamplingStrategy, SeenSets,
};

fn main() {
    // 1. A CoDEx-S-sized synthetic knowledge graph.
    let dataset = generate(&preset(PresetId::CodexS, Scale::Quick));
    println!(
        "dataset {}: |E|={} |R|={} train={} valid={} test={}",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len()
    );

    // 2. Train ComplEx.
    let mut model =
        build_model(ModelKind::ComplEx, dataset.num_entities(), dataset.num_relations(), 32, 42);
    let config = TrainConfig { epochs: 15, lr: 0.15, num_negatives: 4, ..Default::default() };
    train(
        model.as_mut(),
        dataset.train.triples(),
        &config,
        Some(&mut |epoch, loss| {
            if epoch % 5 == 4 {
                println!("epoch {:>2}: mean loss {loss:.4}", epoch + 1);
            }
        }),
    );

    // 3. The ground truth: full filtered ranking over every entity.
    let threads = kgeval::core::parallel::default_threads();
    let full =
        evaluate_full(model.as_ref(), &dataset.test, &dataset.filter, TieBreak::Mean, threads);
    println!(
        "\nfull evaluation    : MRR {:.3}  Hits@10 {:.3}  ({:.3} s)",
        full.metrics.mrr, full.metrics.hits10, full.seconds
    );

    // 4. The paper's framework: fit L-WD once, then estimate with 10 % samples.
    let (matrix, fit_secs) = timed(|| Lwd::untyped().fit(&dataset));
    let seen = SeenSets::from_store(&dataset.train);
    let static_sets = CandidateSets::static_sets(&matrix, &seen);
    println!("L-WD fitted in {fit_secs:.3} s ({} nonzero scores)", matrix.nnz());

    let n_s = dataset.num_entities() / 10;
    let mut rng = seeded_rng(7);
    for strategy in SamplingStrategy::ALL {
        let samples = sample_candidates(
            strategy,
            dataset.num_entities(),
            dataset.num_relations(),
            n_s,
            Some(&matrix),
            Some(&static_sets),
            &mut rng,
        );
        let est = evaluate_sampled(
            model.as_ref(),
            &dataset.test,
            &dataset.filter,
            &samples,
            TieBreak::Mean,
            threads,
        );
        println!(
            "{:<14}: MRR {:.3}  (error {:+.3}, {:.3} s)",
            strategy.name(),
            est.metrics.mrr,
            est.metrics.mrr - full.metrics.mrr,
            est.seconds,
        );
    }
    println!("\nRandom overestimates; Probabilistic and Static track the true metric.");
}
