//! Mine "easy negatives" with L-WD (the paper's Table 2/10): entity–slot
//! pairs with score exactly 0 can be ruled out almost for free, and the few
//! true triples landing on zero cells are usually data errors — here, the
//! generator's injected schema-violating noise.
//!
//! ```text
//! cargo run --release --example easy_negatives
//! ```

use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::recommend::{mine_easy_negatives, Lwd, RelationRecommender};

fn main() {
    for id in [PresetId::Fb15k237, PresetId::Yago3, PresetId::WikiKg2] {
        let dataset = generate(&preset(id, Scale::Quick));
        let matrix = Lwd::untyped().fit(&dataset);
        let report = mine_easy_negatives(&matrix, &dataset);
        println!(
            "{}: {} of {} cells ({:.1} %) are zero-score easy negatives",
            report.dataset, report.easy_negatives, report.total_cells, report.easy_pct
        );
        println!(
            "  false easy negatives (true triples on zero cells): {}",
            report.false_easy.len()
        );
        for f in report.false_easy.iter().take(5) {
            println!(
                "    ({}, r{}, {})  zero on {} side, from the {} split",
                f.triple.head,
                f.triple.relation,
                f.triple.tail,
                if f.head_side { "head" } else { "tail" },
                match f.split {
                    0 => "train",
                    1 => "valid",
                    _ => "test",
                }
            );
        }
        println!();
    }
    println!("The overwhelming majority of candidate cells can be ruled out instantly;");
    println!("only noise triples (annotation errors in real data) are ever missed.");
}
