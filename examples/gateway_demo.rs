//! Distributed serving demo: train a small model, start **two shard
//! workers** (each owning half the entity space) behind a **scatter/gather
//! gateway**, plus one ordinary single-node server — then drive `/score`,
//! `/topk`, and `/eval` through both deployments and assert the gateway's
//! responses are byte-identical to the single node's.
//!
//! ```text
//! cargo run --release --example gateway_demo
//! KG_SERVE_HOLD_SECS=300 cargo run --release --example gateway_demo   # keep serving for curl
//! ```

use std::sync::Arc;
use std::time::Duration;

use kgeval::datasets::{generate, preset, PresetId, Scale};
use kgeval::models::{build_model, train, KgcModel, ModelKind, TrainConfig};
use kgeval::serve::{
    client, serve, Gateway, GatewayConfig, Json, ModelRegistry, RegistryConfig, Router,
    ServerConfig, WorkerShard,
};

fn main() {
    // 1. Dataset + trained model (deterministic, so every "node" builds
    //    identical weights — in a real deployment each worker would load
    //    the same snapshot file instead).
    let dataset = generate(&preset(PresetId::CodexS, Scale::Quick));
    let mut model =
        build_model(ModelKind::ComplEx, dataset.num_entities(), dataset.num_relations(), 32, 42);
    train(
        model.as_mut(),
        dataset.train.triples(),
        &TrainConfig { epochs: 10, lr: 0.15, num_negatives: 4, ..Default::default() },
        None,
    );
    let model: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
    let filter = Arc::new(dataset.filter.clone());
    println!(
        "dataset {}: |E|={} |R|={} — every worker holds the full model, \
         each ranks one slice",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations()
    );

    // 2. One ordinary single-node server (the parity baseline) and two
    //    shard workers: worker i of 2 owns ShardPlan::new(|E|, 2).range(i).
    let start_node = |worker_shard: Option<WorkerShard>| {
        let registry = Arc::new(ModelRegistry::with_config(RegistryConfig {
            worker_shard,
            ..RegistryConfig::default()
        }));
        registry.register("complex", Arc::clone(&model), Arc::clone(&filter));
        // At least 2 connection workers per node: the gateway's pooled
        // keep-alive connection occupies one between requests, and held
        // mode should still answer direct curls on a single-core host.
        let config =
            ServerConfig { workers: 2.max(ServerConfig::default().workers), ..Default::default() };
        serve(Router::new(registry), &config).expect("bind node")
    };
    let single = start_node(None);
    let workers: Vec<_> =
        (0..2).map(|i| start_node(Some(WorkerShard { index: i, of: 2 }))).collect();
    for (i, w) in workers.iter().enumerate() {
        println!("worker {i}/2 on http://{} (internal /shard/topk, /shard/rank)", w.addr());
    }

    // 3. The gateway: no models, just the backend list in shard order.
    let gateway = Gateway::new(GatewayConfig {
        backends: workers.iter().map(|w| w.addr().to_string()).collect(),
        health_interval: Duration::from_millis(500),
        ..GatewayConfig::default()
    })
    .expect("gateway");
    let gateway = serve(Router::gateway(gateway), &ServerConfig::default()).expect("bind gateway");
    println!(
        "gateway on http://{} (single node baseline on http://{})\n",
        gateway.addr(),
        single.addr()
    );

    // 4. Drive both deployments with the same traffic; the gateway must
    //    answer byte-identically (modulo /eval's wall-clock "seconds").
    let q = dataset.test[0];
    let requests = [
        (
            "/topk",
            format!(
                "{{\"model\":\"complex\",\"queries\":[{{\"head\":{},\"relation\":{}}},{{\"relation\":{},\"tail\":{}}}],\"k\":5}}",
                q.head.0, q.relation.0, q.relation.0, q.tail.0
            ),
        ),
        (
            "/score",
            format!(
                "{{\"model\":\"complex\",\"triples\":[{}]}}",
                dataset
                    .test
                    .iter()
                    .take(8)
                    .map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ),
        (
            "/eval",
            format!(
                "{{\"model\":\"complex\",\"n_s\":40,\"seed\":7,\"triples\":[{}]}}",
                dataset
                    .test
                    .iter()
                    .map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ),
    ];
    let canon = |body: &str| match Json::parse(body) {
        Ok(Json::Obj(fields)) => {
            Json::Obj(fields.into_iter().filter(|(k, _)| k != "seconds").collect()).to_string()
        }
        _ => body.to_string(),
    };
    for (path, body) in &requests {
        let (s1, direct) = client::post_json(single.addr(), path, body).expect("single node");
        let (s2, scattered) = client::post_json(gateway.addr(), path, body).expect("gateway");
        assert_eq!((s1, s2), (200, 200), "{path}: {direct} / {scattered}");
        assert_eq!(
            canon(&scattered),
            canon(&direct),
            "{path}: gateway bytes diverged from the single node"
        );
        let shown = if scattered.len() > 120 { &scattered[..120] } else { &scattered };
        println!("{path:<7}: gateway == single node ({} bytes)  {shown}…", scattered.len());
    }

    // 5. Gateway observability: backend health + scatter/merge latency.
    let (_, health) = client::get(gateway.addr(), "/healthz").expect("gateway /healthz");
    println!("\ngateway /healthz: {health}");
    let (_, prom) = client::get(gateway.addr(), "/metrics").expect("gateway /metrics");
    for line in prom.lines().filter(|l| l.starts_with("kg_serve_gateway_")) {
        println!("  {line}");
    }

    if let Some(secs) = std::env::var("KG_SERVE_HOLD_SECS").ok().and_then(|v| v.parse::<u64>().ok())
    {
        println!("\nholding the fleet open for {secs} s — try:");
        println!("  curl -s {}/healthz", gateway.addr());
        println!(
            "  curl -s {}/topk -d '{{\"model\":\"complex\",\"queries\":[{{\"head\":0,\"relation\":0}}],\"k\":3}}'",
            gateway.addr()
        );
        std::thread::sleep(Duration::from_secs(secs));
    }

    gateway.shutdown();
    for w in workers {
        w.shutdown();
    }
    single.shutdown();
    println!("\nfleet drained cleanly; full ranking now scales across machines.");
}
