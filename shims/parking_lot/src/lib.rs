//! In-tree, std-only stand-in for `parking_lot`: wrappers over `std::sync`
//! primitives with parking_lot's non-poisoning `lock()` signature.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex whose `lock` never returns a poison error (a poisoned lock is
/// recovered, matching parking_lot's behaviour of not tracking poison).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking; recovers from poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's non-poisoning read/write signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
