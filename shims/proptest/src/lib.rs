//! In-tree, std-only stand-in for `proptest`.
//!
//! The workspace's property tests keep their upstream shape (`proptest!`,
//! strategies, `prop_assert*`), but run on this minimal engine: each test
//! executes `ProptestConfig::cases` random cases drawn from a generator
//! seeded deterministically from the test's name and case index, so runs
//! are reproducible without a persisted regression file. Failing cases
//! panic with the case number; there is **no shrinking** — rerun with the
//! printed case to debug.
//!
//! Implemented surface: range strategies over the primitive numeric types,
//! [`Just`], tuple strategies (arity 2–4), [`collection::vec`],
//! `prop_map` / `prop_flat_map` / `boxed`, weighted and unweighted
//! [`prop_oneof!`], [`ProptestConfig::with_cases`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    // Macros are exported at the crate root via #[macro_export]; re-list
    // them here so `use proptest::prelude::*` brings them in under the
    // 2018+ macro paths.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The engine's RNG (deterministic per test name + case index).
pub type TestRng = StdRng;

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type carried by proptest-style `Result` test bodies. The shim's
/// `prop_assert*` macros panic instead of returning this, so it only exists
/// to type `return Ok(());` early exits in test bodies.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "test case error: {}", self.0)
    }
}

/// What a `proptest!` body expands into returning.
pub type TestCaseResult = std::result::Result<(), TestCaseError>;

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A value generator. Unlike upstream proptest there is no intermediate
/// value tree: strategies produce final values directly and nothing shrinks.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Weighted choice between type-erased strategies (`prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.gen_range(0u64..self.total);
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.generate(rng);
            }
            x -= *w as u64;
        }
        unreachable!("prop_oneof!: weight bookkeeping broken")
    }
}

/// Weighted (`w => strategy`) or uniform (`strategy, …`) alternation.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// `assert!` under a different name (upstream returns an `Err` that the
/// runner catches for shrinking; this shim just panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-block macro: expands each `#[test] fn name(pat in strategy, …)`
/// into a plain `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), case);
                    let run = |__rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $body;
                        Ok(())
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&mut __rng)),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest shim: {} returned Err at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest shim: {} failed at case {case}/{} (deterministic; no shrinking)",
                                stringify!($name),
                                config.cases,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::case_rng("compose", 1);
        let strat = crate::collection::vec((0u32..5, 0.0f64..1.0), 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5);
                assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = crate::case_rng("oneof", 2);
        let strat = prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..4000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!((2700..3300).contains(&ones), "weight-3 arm drawn {ones}/4000");
    }

    #[test]
    fn flat_map_feeds_forward() {
        let mut rng = crate::case_rng("flat", 3);
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n..n + 1));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 10u32..20), v in crate::collection::vec(0u32..3, 0..4)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!(v.len() < 4);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b, "disjoint ranges cannot collide");
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
