//! Collection strategies (`proptest::collection` subset).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Inclusive-exclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
