//! In-tree, std-only stand-in for `criterion`: the workspace's benches keep
//! their upstream-criterion shape (`criterion_group!` / `criterion_main!` /
//! `Criterion::benchmark_group`), but run against this minimal wall-clock
//! harness — per-iteration mean over `sample_size` samples, printed as a
//! table. No statistics, plots, or baselines; good enough to compare hot
//! paths on one machine.

use std::fmt::Display;
use std::time::Instant;

/// Top-level bench context handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    /// Bench a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's knob; here simply
    /// the number of measured iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Register and run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Label from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled by `iter`.
    mean_seconds: Option<f64>,
}

impl Bencher {
    /// Run `f` `sample_size` times (after one untimed warm-up) and record
    /// the mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean_seconds = Some(start.elapsed().as_secs_f64() / self.samples as f64);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, mean_seconds: None };
    f(&mut b);
    match b.mean_seconds {
        Some(s) => eprintln!("  {label:<48} {:>12}  ({samples} samples)", format_seconds(s)),
        None => eprintln!("  {label:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Expands to a function running each listed bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, invoking each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group
            .bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(2.0), "2.000 s");
        assert_eq!(format_seconds(0.002), "2.000 ms");
        assert_eq!(format_seconds(2e-6), "2.000 µs");
        assert_eq!(format_seconds(2e-9), "2.0 ns");
    }
}
