//! In-tree, std-only stand-in for the `bytes` crate: just enough of
//! `Buf`/`BufMut`/`Bytes`/`BytesMut` for the model-snapshot codec in
//! `kg_models::io` (little-endian scalar puts/gets over `Vec<u8>`).

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf: not enough bytes");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Next little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Next little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Next little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Next little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (the write half).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freeze into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Immutable bytes with a consuming cursor (the read half).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the backing buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "Bytes: advance past end");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = BytesMut::new();
        w.put_slice(b"KGEV");
        w.put_u16_le(1);
        w.put_u8(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f32_le(-0.5);
        w.put_f64_le(std::f64::consts::PI);
        let mut r = Bytes::from(Vec::from(w));
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"KGEV");
        assert_eq!(r.get_u16_le(), 1);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), -0.5);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn overread_panics() {
        let mut r = Bytes::from(vec![1u8]);
        let _ = r.get_u16_le();
    }

    #[test]
    fn bytesmut_derefs_to_slice() {
        let mut w = BytesMut::with_capacity(4);
        w.put_u32_le(0x0403_0201);
        assert_eq!(&w[..], &[1, 2, 3, 4]);
        assert_eq!(w.len(), 4);
    }
}
