//! In-tree, std-only stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships this shim implementing exactly the rand 0.8 API
//! subset the seed code uses: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream rand's ChaCha12, but every consumer in this workspace only
//! requires *determinism given a seed*, which this provides. Integer ranges
//! are sampled with the 128-bit multiply-shift reduction (Lemire), floats
//! with the standard 53-bit mantissa-fill; both are unbiased enough for the
//! statistical assertions in the test suite.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform double in `[0, 1)` from the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        Ra: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits into `[0, span)` without modulo bias worth caring
/// about (128-bit multiply-shift).
#[inline]
fn reduce(bits: u64, span: u128) -> u128 {
    (bits as u128 * span) >> 64
}

macro_rules! int_range_impls {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )+};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                // f32 rounding can land exactly on the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )+};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let w: f32 = rng.gen_range(-0.25f32..=0.25);
            assert!((-0.25..=0.25).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "p=0.3 hit {hits}/100000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Astronomically unlikely to be identity.
        assert_ne!(v, sorted);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> u32 {
            rng.gen_range(0u32..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
