//! The shim's standard generator: xoshiro256++ with SplitMix64 seeding.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
///
/// Not cryptographically secure — neither is anything this workspace does
/// with randomness. Passes BigCrush per the xoshiro authors; period 2^256−1.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden point; SplitMix64 cannot
        // produce it from four consecutive outputs, but belt-and-braces:
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_across_seeds() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn clone_continues_identically() {
        let mut r = StdRng::seed_from_u64(9);
        r.next_u64();
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
