//! Slice helpers (rand 0.8's `rand::seq` subset).

use crate::{Rng, RngCore};

/// In-place slice randomisation.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0usize..=i);
            self.swap(i, j);
        }
    }
}
