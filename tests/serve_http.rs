//! Integration tests for `kg-serve`: a real server on an ephemeral port,
//! driven over TCP, with responses checked bit-for-bit against direct
//! library calls — including a concurrent-client run that exercises the
//! `/score` batcher, keep-alive/pipelining parity against the serial
//! path, and the connection-lifecycle regressions (clean EOF close,
//! duplicate `Content-Length`, header caps, idle timeout, 503 admission).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use kgeval::core::sample::seeded_rng;
use kgeval::core::{FilterIndex, Triple};
use kgeval::datasets::{generate, SyntheticKgConfig};
use kgeval::eval::{evaluate_sampled, TieBreak};
use kgeval::models::{build_model, train, KgcModel, ModelKind, TrainConfig};
use kgeval::recommend::{sample_candidates, SamplingStrategy};
use kgeval::serve::{
    client, serve, HttpMetrics, Json, ModelRegistry, RegistryConfig, Router, ServerConfig,
    ServerHandle,
};

struct Fixture {
    server: ServerHandle,
    model: Arc<dyn KgcModel>,
    filter: Arc<FilterIndex>,
    test: Vec<Triple>,
    threads: usize,
    metrics: Arc<HttpMetrics>,
}

impl Fixture {
    fn start() -> Fixture {
        Fixture::start_with(ServerConfig { workers: 8, ..Default::default() })
    }

    fn start_with(config: ServerConfig) -> Fixture {
        let dataset = generate(&SyntheticKgConfig {
            num_entities: 200,
            num_relations: 5,
            num_types: 6,
            num_triples: 1500,
            seed: 13,
            ..Default::default()
        });
        let mut model = build_model(
            ModelKind::DistMult,
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            99,
        );
        train(
            model.as_mut(),
            dataset.train.triples(),
            &TrainConfig { epochs: 3, ..Default::default() },
            None,
        );
        let model: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
        let filter = Arc::new(dataset.filter.clone());
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&model), Arc::clone(&filter));
        let metrics = Arc::clone(registry.metrics());
        let router = Router::new(Arc::clone(&registry));
        let server = serve(router, &config).expect("bind");
        let threads = kgeval::core::parallel::default_threads();
        Fixture { server, model, filter, test: dataset.test.clone(), threads, metrics }
    }

    fn triples_json(&self, triples: &[Triple]) -> String {
        triples
            .iter()
            .map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[test]
fn score_roundtrip_matches_direct_calls_bit_for_bit() {
    let fx = Fixture::start();
    let triples: Vec<Triple> = fx.test.iter().take(16).copied().collect();
    let body = format!("{{\"model\":\"m\",\"triples\":[{}]}}", fx.triples_json(&triples));
    let (status, response) = client::post_json(fx.server.addr(), "/score", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let parsed = Json::parse(&response).unwrap();
    let scores = parsed.get("scores").and_then(Json::as_array).unwrap();
    assert_eq!(scores.len(), triples.len());
    for (t, s) in triples.iter().zip(scores) {
        let direct = fx.model.score(t.head, t.relation, t.tail);
        let served = s.as_f64().unwrap() as f32;
        assert_eq!(served.to_bits(), direct.to_bits(), "score mismatch for {t:?}");
    }
    fx.server.shutdown();
}

#[test]
fn topk_matches_a_full_scoring_pass() {
    let fx = Fixture::start();
    let q = fx.test[0];
    let body = format!(
        "{{\"model\":\"m\",\"queries\":[{{\"head\":{},\"relation\":{}}},{{\"relation\":{},\"tail\":{}}}],\"k\":7}}",
        q.head.0, q.relation.0, q.relation.0, q.tail.0
    );
    let (status, response) = client::post_json(fx.server.addr(), "/topk", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let parsed = Json::parse(&response).unwrap();
    let results = parsed.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 2);

    use kgeval::core::triple::QuerySide;
    for (result, side) in results.iter().zip([QuerySide::Tail, QuerySide::Head]) {
        let entities: Vec<usize> = result
            .get("entities")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_usize)
            .collect();
        let scores: Vec<f64> = result
            .get("scores")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        assert_eq!(entities.len(), 7);
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "descending order");

        // Recompute: full scoring pass, drop known answers, take the best 7.
        let mut all = vec![0.0f32; fx.model.num_entities()];
        fx.model.score_all(q, side, &mut all);
        let known = fx.filter.known_answers(q, side);
        let mut ranked: Vec<(usize, f32)> = all
            .iter()
            .enumerate()
            .filter(|(e, _)| known.binary_search(&kgeval::core::EntityId(*e as u32)).is_err())
            .map(|(e, &s)| (e, s))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        let expected: Vec<usize> = ranked.iter().take(7).map(|&(e, _)| e).collect();
        assert_eq!(entities, expected, "top-k disagrees with the full pass on side {side:?}");
        for (e, s) in entities.iter().zip(&scores) {
            assert_eq!((*s as f32).to_bits(), all[*e].to_bits());
        }
    }
    fx.server.shutdown();
}

#[test]
fn eval_agrees_with_evaluate_sampled_bit_for_bit() {
    let fx = Fixture::start();
    let triples: Vec<Triple> = fx.test.iter().take(40).copied().collect();
    let (n_s, seed) = (25usize, 4242u64);
    let body = format!(
        "{{\"model\":\"m\",\"n_s\":{n_s},\"seed\":{seed},\"include_ranks\":true,\"triples\":[{}]}}",
        fx.triples_json(&triples)
    );
    let (status, response) = client::post_json(fx.server.addr(), "/eval", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let parsed = Json::parse(&response).unwrap();

    let samples = sample_candidates(
        SamplingStrategy::Random,
        fx.model.num_entities(),
        fx.model.num_relations(),
        n_s,
        None,
        None,
        &mut seeded_rng(seed),
    );
    let direct = evaluate_sampled(
        fx.model.as_ref(),
        &triples,
        fx.filter.as_ref(),
        &samples,
        TieBreak::Mean,
        fx.threads,
    );

    let m = parsed.get("metrics").unwrap();
    for (field, expected) in [
        ("mrr", direct.metrics.mrr),
        ("hits1", direct.metrics.hits1),
        ("hits3", direct.metrics.hits3),
        ("hits10", direct.metrics.hits10),
        ("mean_rank", direct.metrics.mean_rank),
    ] {
        let served = m.get(field).and_then(Json::as_f64).unwrap();
        assert_eq!(served.to_bits(), expected.to_bits(), "{field}: {served} != {expected}");
    }
    let ranks: Vec<f64> = parsed
        .get("ranks")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    assert_eq!(ranks, direct.ranks, "per-query ranks must round-trip exactly");

    // Same request again: sample cache hit, same bits.
    let (_, response2) = client::post_json(fx.server.addr(), "/eval", &body).unwrap();
    let parsed2 = Json::parse(&response2).unwrap();
    assert_eq!(parsed2.get("sample_cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(
        parsed2.get("metrics").unwrap().get("mrr").and_then(Json::as_f64),
        m.get("mrr").and_then(Json::as_f64)
    );
    fx.server.shutdown();
}

#[test]
fn concurrent_clients_exercise_the_batcher_and_stay_correct() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    const CLIENTS: usize = 12;

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let triples: Vec<Triple> = fx.test.iter().skip(c * 3).take(5 + c % 4).copied().collect();
        let body = format!("{{\"model\":\"m\",\"triples\":[{}]}}", fx.triples_json(&triples));
        handles.push(std::thread::spawn(move || {
            let (status, response) = client::post_json(addr, "/score", &body).unwrap();
            (status, response, triples)
        }));
    }
    for h in handles {
        let (status, response, triples) = h.join().unwrap();
        assert_eq!(status, 200, "{response}");
        let parsed = Json::parse(&response).unwrap();
        let scores = parsed.get("scores").and_then(Json::as_array).unwrap();
        assert_eq!(scores.len(), triples.len());
        for (t, s) in triples.iter().zip(scores) {
            let direct = fx.model.score(t.head, t.relation, t.tail);
            assert_eq!(
                (s.as_f64().unwrap() as f32).to_bits(),
                direct.to_bits(),
                "concurrent batching corrupted the score of {t:?}"
            );
        }
    }

    // The batcher saw all 12 jobs, and the metrics agree.
    let (_, prom) = client::get(addr, "/metrics").unwrap();
    let jobs: u64 = prom
        .lines()
        .find(|l| l.starts_with("kg_serve_score_batch_jobs_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(jobs, CLIENTS as u64, "every request went through the batcher");
    assert_eq!(fx.metrics.requests_for("/score"), CLIENTS as u64);
    let (p50, p99) = fx.metrics.latency_quantiles("/score").unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "latency quantiles populated: {p50} {p99}");
    fx.server.shutdown();
}

#[test]
fn concurrent_topk_clients_coalesce_and_stay_correct() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    const CLIENTS: usize = 10;

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let q = fx.test[c % fx.test.len()];
        let body = if c % 2 == 0 {
            format!(
                "{{\"model\":\"m\",\"queries\":[{{\"head\":{},\"relation\":{}}}],\"k\":{}}}",
                q.head.0,
                q.relation.0,
                3 + c
            )
        } else {
            format!(
                "{{\"model\":\"m\",\"queries\":[{{\"relation\":{},\"tail\":{}}}],\"k\":{}}}",
                q.relation.0,
                q.tail.0,
                3 + c
            )
        };
        handles.push(std::thread::spawn(move || {
            let (status, response) = client::post_json(addr, "/topk", &body).unwrap();
            (c, q, status, response)
        }));
    }
    use kgeval::core::triple::QuerySide;
    for h in handles {
        let (c, q, status, response) = h.join().unwrap();
        assert_eq!(status, 200, "{response}");
        let side = if c % 2 == 0 { QuerySide::Tail } else { QuerySide::Head };
        let parsed = Json::parse(&response).unwrap();
        let result = &parsed.get("results").and_then(Json::as_array).unwrap()[0];
        let entities: Vec<usize> = result
            .get("entities")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_usize)
            .collect();
        assert_eq!(entities.len(), 3 + c);
        // Recompute the expectation with a direct full scoring pass.
        let mut all = vec![0.0f32; fx.model.num_entities()];
        fx.model.score_all(q, side, &mut all);
        let known = fx.filter.known_answers(q, side);
        let mut ranked: Vec<(usize, f32)> = all
            .iter()
            .enumerate()
            .filter(|(e, _)| known.binary_search(&kgeval::core::EntityId(*e as u32)).is_err())
            .map(|(e, &s)| (e, s))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        let expected: Vec<usize> = ranked.iter().take(3 + c).map(|&(e, _)| e).collect();
        assert_eq!(entities, expected, "client {c}: coalesced top-k diverged from a direct pass");
    }

    // Every request went through the TopKBatcher, in (far) fewer passes
    // than requests when any coalescing happened — and the gauge renders.
    let (_, prom) = client::get(addr, "/metrics").unwrap();
    let metric = |name: &str| -> u64 {
        prom.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from:\n{prom}"))
    };
    assert_eq!(metric("kg_serve_topk_batch_jobs_total"), CLIENTS as u64);
    assert_eq!(metric("kg_serve_topk_batch_queries_total"), CLIENTS as u64);
    assert!(metric("kg_serve_topk_batches_total") <= CLIENTS as u64);
    assert!(
        prom.contains("kg_serve_topk_batch_window_us{model=\"m\"}"),
        "the /topk window gauge must render: {prom}"
    );
    fx.server.shutdown();
}

#[test]
fn expect_continue_roundtrip_over_the_wire_matches_plain_post() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    let triples: Vec<Triple> = fx.test.iter().take(8).copied().collect();
    let body = format!("{{\"model\":\"m\",\"triples\":[{}]}}", fx.triples_json(&triples));
    let (plain_status, plain_body) = client::post_json(addr, "/score", &body).unwrap();
    let mut conn = client::Connection::open(addr).unwrap();
    let (status, got) = conn.post_json_expect_continue("/score", &body).unwrap();
    assert_eq!(status, plain_status);
    assert_eq!(got, plain_body, "the 100-continue handshake must not change the bytes served");
    drop(conn);
    fx.server.shutdown();
}

#[test]
fn topk_responses_identical_for_every_shard_config() {
    // The same model served under different engine shard counts must send
    // byte-identical /topk result payloads over the wire.
    let model_for = || {
        let m = build_model(ModelKind::ComplEx, 120, 4, 16, 7);
        Arc::from(m as Box<dyn KgcModel>) as Arc<dyn KgcModel>
    };
    let train: Vec<Triple> =
        (0..60u32).map(|i| Triple::new(i % 120, i % 4, (i * 7 + 3) % 120)).collect();
    let filter = Arc::new(FilterIndex::from_slices(&[&train]));
    let body =
        r#"{"model":"m","queries":[{"head":5,"relation":2},{"relation":1,"tail":77}],"k":12}"#;
    let single = r#"{"model":"m","queries":[{"head":33,"relation":0}],"k":120}"#;
    let serve_with = |shards: usize| {
        let registry = Arc::new(ModelRegistry::with_config(RegistryConfig {
            shards,
            ..RegistryConfig::default()
        }));
        registry.register("m", model_for(), Arc::clone(&filter));
        let server = serve(Router::new(registry), &ServerConfig::default()).expect("bind");
        let (s1, multi) = client::post_json(server.addr(), "/topk", body).unwrap();
        let (s2, one) = client::post_json(server.addr(), "/topk", single).unwrap();
        server.shutdown();
        assert_eq!((s1, s2), (200, 200), "{multi} {one}");
        let results = |b: &str| Json::parse(b).unwrap().get("results").unwrap().to_string();
        (results(&multi), results(&one))
    };
    let baseline = serve_with(1);
    for shards in [3usize, 8, 120] {
        assert_eq!(serve_with(shards), baseline, "shards={shards} changed /topk bytes");
    }
}

#[test]
fn admin_hot_reload_swaps_the_model_without_downtime() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    // Persist a differently-seeded model as the replacement snapshot.
    let replacement = build_model(
        ModelKind::DistMult,
        fx.model.num_entities(),
        fx.model.num_relations(),
        16,
        123_456,
    );
    let dir = std::env::temp_dir().join(format!("kg-serve-http-admin-{}", std::process::id()));
    let path = dir.join("v2.kgev");
    kgeval::models::io::save_model_to_path(replacement.as_ref(), ModelKind::DistMult, &path)
        .unwrap();

    let t = fx.test[0];
    let score_body =
        format!("{{\"model\":\"m\",\"triples\":[[{},{},{}]]}}", t.head.0, t.relation.0, t.tail.0);
    let served_score = |label: &str| {
        let (status, response) = client::post_json(addr, "/score", &score_body).unwrap();
        assert_eq!(status, 200, "{label}: {response}");
        Json::parse(&response).unwrap().get("scores").and_then(Json::as_array).unwrap()[0]
            .as_f64()
            .unwrap() as f32
    };
    let before = served_score("before reload");
    assert_eq!(before.to_bits(), fx.model.score(t.head, t.relation, t.tail).to_bits());

    let reload = format!("{{\"name\":\"m\",\"path\":\"{}\"}}", path.display());
    let (status, response) = client::post_json(addr, "/admin/models", &reload).unwrap();
    assert_eq!(status, 200, "{response}");
    let parsed = Json::parse(&response).unwrap();
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("replaced"));

    let after = served_score("after reload");
    assert_eq!(
        after.to_bits(),
        replacement.score(t.head, t.relation, t.tail).to_bits(),
        "served scores must come from the reloaded snapshot"
    );
    // /healthz still lists exactly one model under the same name.
    let (_, health) = client::get(addr, "/healthz").unwrap();
    let models = Json::parse(&health).unwrap();
    assert_eq!(models.get("models").and_then(Json::as_array).map(<[Json]>::len), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
    fx.server.shutdown();
}

#[test]
fn keepalive_connection_reuses_one_socket_and_matches_fresh_connections() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    let triples: Vec<Triple> = fx.test.iter().take(6).copied().collect();
    let score_body = format!("{{\"model\":\"m\",\"triples\":[{}]}}", fx.triples_json(&triples));
    let topk_body = format!(
        "{{\"model\":\"m\",\"queries\":[{{\"head\":{},\"relation\":{}}}],\"k\":5}}",
        fx.test[0].head.0, fx.test[0].relation.0
    );

    // Baseline: fresh connection per request (Connection: close path).
    let (s_score, fresh_score) = client::post_json(addr, "/score", &score_body).unwrap();
    let (s_topk, fresh_topk) = client::post_json(addr, "/topk", &topk_body).unwrap();
    assert_eq!((s_score, s_topk), (200, 200));

    let reuses_before = fx.metrics.keepalive_reuses();
    let mut conn = client::Connection::open(addr).unwrap();
    for round in 0..4 {
        let (status, body) = conn.post_json("/score", &score_body).unwrap();
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, fresh_score, "round {round}: keep-alive body diverged from serial");
        let (status, body) = conn.post_json("/topk", &topk_body).unwrap();
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, fresh_topk, "round {round}: keep-alive body diverged from serial");
    }
    assert!(!conn.server_closed(), "8 requests fit comfortably in the per-connection cap");
    // 8 requests on one socket: 7 were reuses.
    assert_eq!(fx.metrics.keepalive_reuses() - reuses_before, 7);
    drop(conn);
    fx.server.shutdown();
}

#[test]
fn pipelined_mixed_requests_match_serial_byte_for_byte() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    let score_a = format!(
        "{{\"model\":\"m\",\"triples\":[{}]}}",
        fx.triples_json(&fx.test.iter().take(4).copied().collect::<Vec<_>>())
    );
    let score_b = format!(
        "{{\"model\":\"m\",\"triples\":[{}]}}",
        fx.triples_json(&fx.test.iter().skip(4).take(3).copied().collect::<Vec<_>>())
    );
    let topk = format!(
        "{{\"model\":\"m\",\"queries\":[{{\"head\":{},\"relation\":{}}},{{\"relation\":{},\"tail\":{}}}],\"k\":9}}",
        fx.test[1].head.0, fx.test[1].relation.0, fx.test[2].relation.0, fx.test[2].tail.0
    );
    let eval = format!(
        "{{\"model\":\"m\",\"n_s\":15,\"seed\":77,\"triples\":[{}]}}",
        fx.triples_json(&fx.test.iter().take(10).copied().collect::<Vec<_>>())
    );
    // Warm the /eval sample cache so serial and pipelined runs both report
    // "hit" — the responses must then be byte-identical.
    let (warm_status, _) = client::post_json(addr, "/eval", &eval).unwrap();
    assert_eq!(warm_status, 200);

    let requests: Vec<(&str, &str, Option<&str>)> = vec![
        ("POST", "/score", Some(&score_a)),
        ("POST", "/topk", Some(&topk)),
        ("POST", "/eval", Some(&eval)),
        ("POST", "/score", Some(&score_b)),
        ("POST", "/topk", Some(&topk)),
    ];

    // Serial: each request on its own fresh connection.
    let serial: Vec<(u16, String)> =
        requests.iter().map(|(m, p, b)| client::request(addr, m, p, *b).unwrap()).collect();

    // Pipelined: all five written before any response is read.
    let mut conn = client::Connection::open(addr).unwrap();
    let pipelined = conn.pipeline(&requests).unwrap();

    // `/eval` reports its own wall-clock `"seconds"`, the one field that
    // legitimately differs between two executions; everything else must be
    // byte-identical.
    let canon = |body: &str| match Json::parse(body) {
        Ok(Json::Obj(fields)) => {
            Json::Obj(fields.into_iter().filter(|(k, _)| k != "seconds").collect()).to_string()
        }
        _ => body.to_string(),
    };
    assert_eq!(pipelined.len(), serial.len());
    for (i, (s, p)) in serial.iter().zip(&pipelined).enumerate() {
        assert_eq!(p.0, s.0, "request {i}: status diverged");
        if requests[i].1 == "/eval" {
            assert_eq!(canon(&p.1), canon(&s.1), "request {i}: pipelined body != serial body");
        } else {
            assert_eq!(p.1, s.1, "request {i}: pipelined body != serial body");
        }
    }
    drop(conn);
    fx.server.shutdown();
}

#[test]
fn idle_keepalive_connections_are_closed_cleanly() {
    let fx = Fixture::start();
    // Short-idle server alongside the fixture's default one.
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&fx.model), Arc::clone(&fx.filter));
    let metrics = Arc::clone(registry.metrics());
    let server = serve(
        Router::new(registry),
        &ServerConfig {
            workers: 2,
            idle_timeout: Duration::from_millis(150),
            ..Default::default()
        },
    )
    .expect("bind");

    let mut conn = client::Connection::open(server.addr()).unwrap();
    let (status, _) = conn.get("/healthz").unwrap();
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(600));
    // The server hung up while we idled; the next request finds a dead
    // socket (write may succeed into the OS buffer, the read sees EOF).
    assert!(conn.get("/healthz").is_err(), "idle connection must be closed by the server");
    // … and the close was clean: no parse error, no error-status response.
    assert_eq!(metrics.requests_for(kgeval::serve::HTTP_PARSE_ENDPOINT), 0);
    assert_eq!(metrics.total_requests(), 1, "only the one real request was recorded");
    server.shutdown();
    fx.server.shutdown();
}

#[test]
fn saturated_server_rejects_connections_with_503_and_retry_after() {
    let dataset_model: Arc<dyn KgcModel> =
        Arc::from(build_model(ModelKind::DistMult, 50, 3, 8, 5) as Box<dyn KgcModel>);
    let triples = [Triple::new(0, 0, 1)];
    let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", dataset_model, filter);
    let metrics = Arc::clone(registry.metrics());
    let server = serve(
        Router::new(registry),
        &ServerConfig { workers: 1, max_connections: 1, retry_after_secs: 7, ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr();

    // Fill the budget: one keep-alive connection, held open.
    let mut held = client::Connection::open(addr).unwrap();
    let (status, _) = held.get("/healthz").unwrap();
    assert_eq!(status, 200);

    // Anyone else is turned away at the door with 503 + Retry-After.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut rejected = String::new();
    s.read_to_string(&mut rejected).unwrap();
    assert!(rejected.starts_with("HTTP/1.1 503 Service Unavailable"), "got: {rejected}");
    assert!(rejected.contains("Retry-After: 7"), "got: {rejected}");
    assert!(rejected.contains("Connection: close"), "got: {rejected}");
    assert!(metrics.rejected_connections() >= 1);

    // Releasing the held connection frees the budget again.
    drop(held);
    let mut ok = false;
    for _ in 0..100 {
        if let Ok((200, _)) = client::get(addr, "/healthz") {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ok, "server must admit connections again once the budget frees");
    server.shutdown();
}

#[test]
fn http_layer_rejections_are_counted_in_metrics() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    // Duplicate Content-Length: the smuggling-shaped framing bug.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /score HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nhello")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");

    // A bare connect/close must NOT count as a parse failure …
    drop(TcpStream::connect(addr).unwrap());

    // … but the framing rejection above must show up in /metrics under the
    // synthetic endpoint label (it never reached the router).
    let (_, prom) = client::get(addr, "/metrics").unwrap();
    assert!(
        prom.contains("kg_serve_request_errors_total{endpoint=\"http_parse\"} 1"),
        "exactly one parse failure recorded: {prom}"
    );
    assert!(prom.contains("kg_serve_connections_total"), "{prom}");
    assert_eq!(fx.metrics.requests_for(kgeval::serve::HTTP_PARSE_ENDPOINT), 1);
    fx.server.shutdown();
}

#[test]
fn c10k_idle_keepalive_connections_coexist_with_live_traffic() {
    // The reactor's reason to exist: ~1k mostly-idle keep-alive
    // connections parked on a 4-worker pool, while interleaved /score and
    // /topk traffic is answered byte-identically to an unloaded server.
    // Under the old thread-per-connection model this test could not pass
    // with any worker count below the connection count.
    const IDLERS: usize = 1000;
    let fx = Fixture::start_with(ServerConfig {
        workers: 4,
        max_connections: IDLERS + 64,
        // Long enough that parked idlers survive the whole test.
        idle_timeout: Duration::from_secs(120),
        ..Default::default()
    });
    let addr = fx.server.addr();

    // Reference responses captured before any load exists.
    let score_body =
        format!("{{\"model\":\"m\",\"triples\":[{}]}}", fx.triples_json(&fx.test[..8]));
    let q = fx.test[0];
    let topk_body = format!(
        "{{\"model\":\"m\",\"queries\":[{{\"head\":{},\"relation\":{}}}],\"k\":5}}",
        q.head.0, q.relation.0
    );
    let (s0, score_ref) = client::post_json(addr, "/score", &score_body).unwrap();
    let (t0, topk_ref) = client::post_json(addr, "/topk", &topk_body).unwrap();
    assert_eq!((s0, t0), (200, 200), "{score_ref} / {topk_ref}");

    // Park the idlers, each proven live with one request so the server has
    // actually served (and kept) every one of them.
    let mut idlers: Vec<client::Connection> = Vec::with_capacity(IDLERS);
    for i in 0..IDLERS {
        let mut conn =
            client::Connection::open(addr).unwrap_or_else(|e| panic!("open idler {i}: {e}"));
        let (status, body) =
            conn.get("/healthz").unwrap_or_else(|e| panic!("idler {i} first request: {e}"));
        assert_eq!(status, 200, "idler {i}: {body}");
        idlers.push(conn);
    }
    assert!(
        fx.metrics.active_connections() >= IDLERS as u64,
        "all idlers must be open concurrently, saw {}",
        fx.metrics.active_connections()
    );

    // Live traffic lands correctly while every idler stays parked.
    for round in 0..5 {
        let (status, body) = client::post_json(addr, "/score", &score_body).unwrap();
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, score_ref, "round {round}: /score must be byte-identical under load");
        let (status, body) = client::post_json(addr, "/topk", &topk_body).unwrap();
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(body, topk_ref, "round {round}: /topk must be byte-identical under load");
    }

    // Sampled idlers are still alive and serve the same bytes.
    for i in (0..IDLERS).step_by(97) {
        let (status, body) = idlers[i]
            .post_json("/score", &score_body)
            .unwrap_or_else(|e| panic!("idler {i} after load: {e}"));
        assert_eq!(status, 200, "idler {i} after load: {body}");
        assert_eq!(body, score_ref, "idler {i}: kept-alive /score parity");
        assert!(!idlers[i].server_closed(), "idler {i} must stay open");
    }
    drop(idlers);
    fx.server.shutdown();
}

#[test]
fn error_paths_do_not_wedge_the_server() {
    let fx = Fixture::start();
    let addr = fx.server.addr();
    for (path, body, expected) in [
        ("/score", r#"{"model":"ghost","triples":[[0,0,0]]}"#, 404),
        ("/score", r#"{"model":"m","triples":[[0,0,99999]]}"#, 422),
        ("/eval", r#"{"model":"m","triples":[[0,0,1]],"strategy":"static"}"#, 400),
        ("/eval", "{", 400),
        ("/nope", "{}", 404),
    ] {
        let (status, response) = client::post_json(addr, path, body).unwrap();
        assert_eq!(status, expected, "{path} {body} → {response}");
    }
    // Still serving.
    let (status, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    fx.server.shutdown();
}
