//! End-to-end integration: dataset → model → recommender → estimators.

use kgeval::core::sample::seeded_rng;
use kgeval::datasets::{generate, SyntheticKgConfig};
use kgeval::eval::estimator::Metric;
use kgeval::eval::harness::{run_train_eval, ExtraEstimator, HarnessConfig};
use kgeval::eval::{evaluate_full, evaluate_sampled, TieBreak};
use kgeval::kp::{KpConfig, KpEstimator};
use kgeval::models::{build_model, train, KgcModel, ModelKind, TrainConfig};
use kgeval::recommend::{
    cr_rr, sample_candidates, CandidateSets, Lwd, RelationRecommender, SamplingStrategy, SeenSets,
};

fn dataset() -> kgeval::datasets::Dataset {
    generate(&SyntheticKgConfig {
        name: "integration".into(),
        num_entities: 400,
        num_relations: 10,
        num_types: 18,
        num_triples: 4000,
        seed: 11,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_reproduces_headline_result() {
    let d = dataset();
    let config = HarnessConfig {
        model: ModelKind::ComplEx,
        dim: 16,
        train: TrainConfig { epochs: 8, lr: 0.15, num_negatives: 4, ..Default::default() },
        sample_size: 40,
        threads: 2,
        max_eval_triples: 100,
        ..Default::default()
    };
    let run = run_train_eval(&d, &config, &Lwd::untyped(), &[]);

    // The paper's core claims, at integration level:
    // 1. Random sampling overestimates the ranking metric.
    let random = run.series(SamplingStrategy::Random, Metric::Mrr);
    let over = random.estimates().iter().zip(random.truths()).filter(|(e, t)| e > t).count();
    assert!(over >= run.records.len() * 3 / 4, "random should overestimate");

    // 2. Recommender-guided estimates have smaller MAE.
    let static_mae = run.series(SamplingStrategy::Static, Metric::Mrr).mae();
    assert!(random.mae() > static_mae, "{} vs {}", random.mae(), static_mae);

    // 3. Sampled estimation is faster than the full ranking.
    let (speedup, _) = run.speedup(SamplingStrategy::Static);
    assert!(speedup > 1.0, "static speedup {speedup}");
}

#[test]
fn kp_baseline_integrates_with_harness() {
    let d = dataset();
    let eval: Vec<_> = d.valid.iter().copied().take(150).collect();
    let kp = KpEstimator::random(
        &eval,
        d.num_entities(),
        KpConfig { sample_triples: 100, ..Default::default() },
    );
    let extras: Vec<ExtraEstimator> =
        vec![("KP", Box::new(move |m: &dyn KgcModel| kp.estimate(m)))];
    let config = HarnessConfig {
        model: ModelKind::DistMult,
        dim: 16,
        train: TrainConfig { epochs: 4, ..Default::default() },
        sample_size: 40,
        threads: 2,
        max_eval_triples: 100,
        ..Default::default()
    };
    let run = run_train_eval(&d, &config, &Lwd::untyped(), &extras);
    let series = run.extra_series("KP", Metric::Mrr);
    assert_eq!(series.len(), 4);
    assert!(series.estimates().iter().all(|v| v.is_finite()));
}

#[test]
fn every_model_survives_the_full_protocol() {
    let d = dataset();
    let threads = 2;
    let test: Vec<_> = d.test.iter().copied().take(40).collect();
    for kind in ModelKind::ALL {
        let mut model =
            build_model(kind, d.num_entities(), d.num_relations(), kind.default_dim().min(16), 3);
        let config = TrainConfig { epochs: 2, ..Default::default() };
        train(model.as_mut(), d.train.triples(), &config, None);
        let full = evaluate_full(model.as_ref(), &test, &d.filter, TieBreak::Mean, threads);
        assert!(full.metrics.mrr > 0.0 && full.metrics.mrr <= 1.0, "{}", kind.name());
        assert!(full.ranks.iter().all(|&r| r >= 1.0 && r <= d.num_entities() as f64));
    }
}

#[test]
fn sampling_everything_recovers_the_full_ranking() {
    let d = dataset();
    let mut model = build_model(ModelKind::DistMult, d.num_entities(), d.num_relations(), 16, 5);
    train(
        model.as_mut(),
        d.train.triples(),
        &TrainConfig { epochs: 3, ..Default::default() },
        None,
    );
    let test: Vec<_> = d.test.iter().copied().take(60).collect();
    let full = evaluate_full(model.as_ref(), &test, &d.filter, TieBreak::Mean, 2);
    let samples = sample_candidates(
        SamplingStrategy::Random,
        d.num_entities(),
        d.num_relations(),
        d.num_entities(), // n_s = |E| → exact
        None,
        None,
        &mut seeded_rng(1),
    );
    let est = evaluate_sampled(model.as_ref(), &test, &d.filter, &samples, TieBreak::Mean, 2);
    assert_eq!(full.ranks, est.ranks, "n_s = |E| must reproduce exact filtered ranks");
    assert_eq!(full.metrics, est.metrics);
}

#[test]
fn recommender_candidate_quality_ordering() {
    let d = dataset();
    let seen = SeenSets::from_store(&d.train);
    let mut seen_v = seen.clone();
    seen_v.extend_with(&d.valid);

    let pt_sets = CandidateSets::from_seen(&seen);
    let pt = cr_rr(&pt_sets, &d, &seen_v);

    let lwd = Lwd::untyped().fit(&d);
    let lwd_sets = CandidateSets::static_sets(&lwd, &seen);
    let lw = cr_rr(&lwd_sets, &d, &seen_v);

    assert_eq!(pt.cr_unseen, 0.0, "PT can never reach unseen answers");
    assert!(lw.cr_test >= pt.cr_test);
    for report in [pt, lw] {
        assert!((0.0..=1.0).contains(&report.cr_test));
        assert!((0.0..=1.0).contains(&report.reduction_rate));
    }

    // The property PT structurally lacks: L-WD's score support extends to
    // answers never observed in the slot. (Whether the *static threshold*
    // includes them depends on the CR/RR trade-off; the score support is
    // the invariant.)
    use kg_core::triple::QuerySide;
    use kg_core::DrColumn;
    let nr = d.num_relations();
    let mut unseen = 0usize;
    let mut reached = 0usize;
    for t in &d.test {
        for side in QuerySide::BOTH {
            let answer = side.answer(*t).0;
            let col = match side {
                QuerySide::Tail => DrColumn::range(t.relation, nr),
                QuerySide::Head => DrColumn::domain(t.relation),
            };
            if !seen_v.contains(answer, col) {
                unseen += 1;
                if lwd.score(answer, col) > 0.0 {
                    reached += 1;
                }
            }
        }
    }
    assert!(unseen > 0, "test split should contain unseen answers");
    assert!(
        reached * 2 >= unseen,
        "L-WD score support should reach most unseen answers ({reached}/{unseen})"
    );
}
