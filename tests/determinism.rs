//! Reproducibility: every stage of the pipeline is deterministic in its
//! seeds, so experiment tables can be regenerated bit-for-bit.

use kgeval::datasets::{generate, preset, PresetId, Scale, SyntheticKgConfig};
use kgeval::eval::estimator::Metric;
use kgeval::eval::harness::{run_train_eval, HarnessConfig};
use kgeval::models::{build_model, train, ModelKind, TrainConfig};
use kgeval::recommend::{Lwd, RelationRecommender, SamplingStrategy};

#[test]
fn dataset_generation_is_deterministic() {
    let a = generate(&preset(PresetId::CodexS, Scale::Quick));
    let b = generate(&preset(PresetId::CodexS, Scale::Quick));
    assert_eq!(a.train.triples(), b.train.triples());
    assert_eq!(a.valid, b.valid);
    assert_eq!(a.test, b.test);
    assert_eq!(a.types.num_assignments(), b.types.num_assignments());
}

#[test]
fn training_is_deterministic() {
    let d = generate(&SyntheticKgConfig {
        num_entities: 200,
        num_relations: 5,
        num_types: 8,
        num_triples: 1500,
        ..Default::default()
    });
    let score = |seed: u64| {
        let mut m = build_model(ModelKind::ComplEx, d.num_entities(), d.num_relations(), 16, seed);
        train(
            m.as_mut(),
            d.train.triples(),
            &TrainConfig { epochs: 3, seed: 42, ..Default::default() },
            None,
        );
        m.score(kgeval::core::EntityId(0), kgeval::core::RelationId(0), kgeval::core::EntityId(1))
    };
    assert_eq!(score(7), score(7));
    assert_ne!(score(7), score(8), "different init seeds should differ");
}

#[test]
fn recommender_fit_is_deterministic() {
    let d = generate(&preset(PresetId::CodexS, Scale::Quick));
    let a = Lwd::typed().fit(&d);
    let b = Lwd::typed().fit(&d);
    assert_eq!(a.nnz(), b.nnz());
    for c in 0..a.num_columns() {
        let col = kgeval::core::DrColumn(c as u32);
        assert_eq!(a.column(col).0, b.column(col).0);
    }
}

#[test]
fn harness_runs_are_reproducible() {
    let d = generate(&SyntheticKgConfig {
        num_entities: 150,
        num_relations: 5,
        num_types: 8,
        num_triples: 1200,
        ..Default::default()
    });
    let config = HarnessConfig {
        model: ModelKind::DistMult,
        dim: 8,
        train: TrainConfig { epochs: 3, ..Default::default() },
        sample_size: 20,
        threads: 2,
        max_eval_triples: 50,
        ..Default::default()
    };
    let r1 = run_train_eval(&d, &config, &Lwd::untyped(), &[]);
    let r2 = run_train_eval(&d, &config, &Lwd::untyped(), &[]);
    for (a, b) in r1.records.iter().zip(&r2.records) {
        assert_eq!(a.full.mrr, b.full.mrr);
        assert_eq!(a.loss, b.loss);
    }
    let s1 = r1.series(SamplingStrategy::Probabilistic, Metric::Mrr);
    let s2 = r2.series(SamplingStrategy::Probabilistic, Metric::Mrr);
    assert_eq!(s1.estimates(), s2.estimates());
}
