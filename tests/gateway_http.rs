//! Multi-node integration tests: a scatter/gather gateway over real shard
//! workers (each an HTTP server on an ephemeral port) must answer
//! **byte-identically** to a single-node server carrying the same models —
//! for `/topk`, `/score`, and `/eval`, across all 7 model families, over
//! mixed sequential and pipelined traffic. Failure semantics (backend
//! down → 503 + error counter, degraded `/healthz`) ride along.

use std::sync::Arc;
use std::time::Duration;

use kgeval::core::{FilterIndex, Triple};
use kgeval::models::{build_model, KgcModel, ModelKind};
use kgeval::serve::{
    client, serve, ClientConfig, Gateway, GatewayConfig, Json, ModelRegistry, RegistryConfig,
    Router, ServerConfig, ServerHandle, WorkerShard,
};

const NUM_ENTITIES: usize = 60;
const NUM_RELATIONS: usize = 4;

fn family_dim(kind: ModelKind) -> usize {
    match kind {
        ModelKind::ConvE => 16,
        ModelKind::Rescal | ModelKind::TuckEr => 8,
        _ => 12,
    }
}

fn family_name(kind: ModelKind) -> String {
    format!("{kind:?}").to_lowercase()
}

fn shared_filter() -> Arc<FilterIndex> {
    let triples: Vec<Triple> = (0..40u32)
        .map(|i| Triple::new(i % NUM_ENTITIES as u32, i % NUM_RELATIONS as u32, (i * 7 + 3) % 60))
        .collect();
    Arc::new(FilterIndex::from_slices(&[&triples]))
}

/// A registry with every model family registered under its lowercase name;
/// weights are seed-deterministic, so every node builds identical models.
fn registry_with_all_families(worker_shard: Option<WorkerShard>) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::with_config(RegistryConfig {
        worker_shard,
        ..RegistryConfig::default()
    }));
    let filter = shared_filter();
    for kind in ModelKind::ALL {
        let model = build_model(kind, NUM_ENTITIES, NUM_RELATIONS, family_dim(kind), 77);
        registry.register(
            family_name(kind),
            Arc::from(model as Box<dyn KgcModel>),
            Arc::clone(&filter),
        );
    }
    registry
}

fn start_node(worker_shard: Option<WorkerShard>) -> ServerHandle {
    let router = Router::new(registry_with_all_families(worker_shard));
    serve(router, &ServerConfig { workers: 4, ..Default::default() }).expect("bind node")
}

fn start_gateway(workers: &[&ServerHandle]) -> ServerHandle {
    let gateway = Gateway::new(GatewayConfig {
        backends: workers.iter().map(|w| w.addr().to_string()).collect(),
        // No background prober in tests: health transitions come from
        // live requests only, keeping counters deterministic.
        health_interval: Duration::ZERO,
        ..GatewayConfig::default()
    })
    .expect("gateway");
    serve(Router::gateway(gateway), &ServerConfig { workers: 4, ..Default::default() })
        .expect("bind gateway")
}

/// Drop the one field that legitimately differs between two executions
/// anywhere (`/eval`'s wall-clock `"seconds"`).
fn canon(body: &str) -> String {
    match Json::parse(body) {
        Ok(Json::Obj(fields)) => {
            Json::Obj(fields.into_iter().filter(|(k, _)| k != "seconds").collect()).to_string()
        }
        _ => body.to_string(),
    }
}

#[test]
fn gateway_answers_byte_identically_to_a_single_node_for_all_families() {
    let single = start_node(None);
    let workers: Vec<ServerHandle> =
        (0..3).map(|i| start_node(Some(WorkerShard { index: i, of: 3 }))).collect();
    let gateway = start_gateway(&workers.iter().collect::<Vec<_>>());

    for kind in ModelKind::ALL {
        let model = family_name(kind);
        let requests = [
            // /topk: mixed sides, filtered + unfiltered, k beyond |E|.
            (
                "/topk",
                format!(
                    r#"{{"model":"{model}","queries":[{{"head":2,"relation":1}},{{"relation":0,"tail":9}},{{"head":59,"relation":3}}],"k":7}}"#
                ),
            ),
            (
                "/topk",
                format!(
                    r#"{{"model":"{model}","queries":[{{"head":5,"relation":2}}],"k":500,"filtered":false}}"#
                ),
            ),
            // /score: a batch spanning the chunk boundaries of 3 workers.
            (
                "/score",
                format!(
                    r#"{{"model":"{model}","triples":[[0,1,2],[5,2,7],[9,0,4],[59,3,58],[30,1,31],[12,2,13],[44,0,45]]}}"#
                ),
            ),
            // /eval: first call (sample-cache miss on every node), with
            // per-query ranks included.
            (
                "/eval",
                format!(
                    r#"{{"model":"{model}","triples":[[0,1,2],[5,2,7],[9,0,4],[30,1,31],[44,0,45]],"n_s":12,"seed":9,"include_ranks":true}}"#
                ),
            ),
            // Second identical call: cache hit everywhere, ranks omitted.
            (
                "/eval",
                format!(
                    r#"{{"model":"{model}","triples":[[0,1,2],[5,2,7],[9,0,4],[30,1,31],[44,0,45]],"n_s":12,"seed":9}}"#
                ),
            ),
        ];
        for (path, body) in &requests {
            let (s_single, b_single) = client::post_json(single.addr(), path, body).unwrap();
            let (s_gw, b_gw) = client::post_json(gateway.addr(), path, body).unwrap();
            assert_eq!(s_gw, s_single, "{model} {path}: status diverged ({b_gw})");
            assert_eq!(s_single, 200, "{model} {path}: {b_single}");
            if *path == "/eval" {
                assert_eq!(canon(&b_gw), canon(&b_single), "{model} {path}: bytes diverged");
            } else {
                assert_eq!(b_gw, b_single, "{model} {path}: bytes diverged");
            }
        }
    }

    gateway.shutdown();
    for w in workers {
        w.shutdown();
    }
    single.shutdown();
}

#[test]
fn gateway_matches_single_node_over_pipelined_mixed_traffic_and_two_workers() {
    let single = start_node(None);
    let workers: Vec<ServerHandle> =
        (0..2).map(|i| start_node(Some(WorkerShard { index: i, of: 2 }))).collect();
    let gateway = start_gateway(&workers.iter().collect::<Vec<_>>());

    let topk = r#"{"model":"complex","queries":[{"head":1,"relation":0},{"relation":2,"tail":33}],"k":11}"#;
    let score = r#"{"model":"rotate","triples":[[1,0,2],[3,1,4],[5,2,6],[7,3,8]]}"#;
    let eval = r#"{"model":"transe","triples":[[1,0,2],[3,1,4],[5,2,6]],"n_s":9,"seed":3,"include_ranks":true}"#;
    // Warm both deployments' sample caches so serial and pipelined runs
    // agree on the "hit" marker.
    assert_eq!(client::post_json(single.addr(), "/eval", eval).unwrap().0, 200);
    assert_eq!(client::post_json(gateway.addr(), "/eval", eval).unwrap().0, 200);

    let requests: Vec<(&str, &str, Option<&str>)> = vec![
        ("POST", "/topk", Some(topk)),
        ("POST", "/score", Some(score)),
        ("POST", "/eval", Some(eval)),
        ("POST", "/topk", Some(topk)),
        ("POST", "/score", Some(score)),
    ];
    let serial: Vec<(u16, String)> = requests
        .iter()
        .map(|(m, p, b)| client::request(single.addr(), m, p, *b).unwrap())
        .collect();
    let mut conn = client::Connection::open(gateway.addr()).unwrap();
    let pipelined = conn.pipeline(&requests).unwrap();
    assert_eq!(pipelined.len(), serial.len());
    for (i, (s, p)) in serial.iter().zip(&pipelined).enumerate() {
        assert_eq!(p.0, s.0, "request {i}: status diverged");
        assert_eq!(
            canon(&p.1),
            canon(&s.1),
            "request {i} ({}): gateway pipeline != single-node serial",
            requests[i].1
        );
    }
    drop(conn);

    // Error parity rides the relay path: malformed and invalid requests
    // produce the same bytes a single node produces.
    for (path, body) in [
        ("/score", "not json at all"),
        ("/score", r#"{"model":"rotate","triples":[[0,0,999]]}"#),
        // The invalid triple sits at index 2, which lands in worker 1's
        // chunk as its index 0 — the error must still name triples[2],
        // exactly as a single node does (full-body revalidation path).
        ("/score", r#"{"model":"rotate","triples":[[0,0,1],[0,0,2],[0,0,999],[0,0,3]]}"#),
        ("/eval", r#"{"model":"transe","triples":[[1,0,2],[3,1,4],[9,2,999]],"n_s":5}"#),
        ("/score", r#"{"model":"ghost","triples":[[0,0,1]]}"#),
        ("/topk", r#"{"model":"complex","queries":[{"relation":9,"head":1}]}"#),
        ("/eval", r#"{"model":"transe","triples":[[0,1,2]],"strategy":"static"}"#),
    ] {
        let (s_single, b_single) = client::post_json(single.addr(), path, body).unwrap();
        let (s_gw, b_gw) = client::post_json(gateway.addr(), path, body).unwrap();
        assert_eq!((s_gw, &b_gw), (s_single, &b_single), "{path} {body}: error parity");
    }

    gateway.shutdown();
    for w in workers {
        w.shutdown();
    }
    single.shutdown();
}

#[test]
fn gateway_healthz_reports_backends_and_admin_is_refused() {
    let workers: Vec<ServerHandle> =
        (0..2).map(|i| start_node(Some(WorkerShard { index: i, of: 2 }))).collect();
    let gateway = start_gateway(&workers.iter().collect::<Vec<_>>());

    let (status, body) = client::get(gateway.addr(), "/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("role").and_then(Json::as_str), Some("gateway"));
    let backends = v.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(backends.len(), 2);
    assert!(backends.iter().all(|b| b.get("healthy").and_then(Json::as_bool) == Some(true)));

    let (status, body) =
        client::post_json(gateway.addr(), "/admin/models", r#"{"name":"x","path":"/y"}"#).unwrap();
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("reload each worker directly"), "{body}");

    gateway.shutdown();
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn dead_backend_means_503_with_retry_after_and_an_error_counter() {
    let workers: Vec<ServerHandle> =
        (0..2).map(|i| start_node(Some(WorkerShard { index: i, of: 2 }))).collect();
    let gateway = start_gateway(&workers.iter().collect::<Vec<_>>());

    // Healthy fleet answers.
    let body = r#"{"model":"distmult","queries":[{"head":0,"relation":1}],"k":4}"#;
    let (status, _) = client::post_json(gateway.addr(), "/topk", body).unwrap();
    assert_eq!(status, 200);

    // Kill worker 1: the very next scatter fails, and the gateway answers
    // 503 + Retry-After instead of a silently range-incomplete ranking.
    workers.into_iter().nth(1).unwrap().shutdown();
    let mut s = std::net::TcpStream::connect(gateway.addr()).unwrap();
    use std::io::{Read, Write};
    let wire = format!(
        "POST /topk HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(wire.as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 503"), "got: {out}");
    assert!(out.contains("Retry-After:"), "got: {out}");
    assert!(out.contains("unavailable"), "got: {out}");

    // The failure was counted per backend, and /healthz degrades.
    let (_, prom) = client::get(gateway.addr(), "/metrics").unwrap();
    assert!(
        prom.contains("kg_serve_gateway_backend_errors_total{backend="),
        "backend error counter must render: {prom}"
    );
    assert!(
        prom.contains("kg_serve_gateway_scatter_seconds{endpoint=\"/topk\""),
        "scatter latency must render: {prom}"
    );
    assert!(
        prom.contains("kg_serve_gateway_merge_seconds{endpoint=\"/topk\""),
        "merge latency must render: {prom}"
    );
    let (_, health) = client::get(gateway.addr(), "/healthz").unwrap();
    let v = Json::parse(&health).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("degraded"), "{health}");

    gateway.shutdown();
}

#[test]
fn client_config_bounds_connects_and_reads() {
    // Connect timeout: RFC 5737 TEST-NET-1 is unroutable in a normal
    // network, so an unbounded connect would hang; whatever this
    // environment does with the packet, the configured budget must bound
    // the attempt (some sandboxes answer or refuse immediately, so only
    // the time bound is asserted, not the outcome).
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(200)),
        read_timeout: Some(Duration::from_millis(200)),
    };
    let started = std::time::Instant::now();
    let _ = client::Connection::open_with("192.0.2.1:9".parse().unwrap(), &config);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "connect timeout must bound the attempt, took {:?}",
        started.elapsed()
    );

    // Read timeout: a listener that accepts but never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2));
        drop(stream);
    });
    let mut conn = client::Connection::open_with(addr, &config).unwrap();
    let started = std::time::Instant::now();
    assert!(conn.get("/healthz").is_err(), "a mute server must time the read out");
    assert!(started.elapsed() < Duration::from_secs(2), "read budget enforced");
    hold.join().unwrap();
}
