//! Live-graph end-to-end tests: a server fed `POST /triples` deltas must
//! answer `/topk` and `/eval` **byte-identically** to a server cold-loaded
//! with the same final graph, across all 7 model families; version-stale
//! `/eval` cache entries must miss (an insert between two identical calls
//! changes the answer); and the continuous-evaluation monitor must track
//! window slides and raise its drift alarm after a bad hot reload.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use kgeval::core::{FilterIndex, Triple};
use kgeval::datasets::{generate, SyntheticKgConfig};
use kgeval::models::{build_model, train, KgcModel, ModelKind, TrainConfig};
use kgeval::recommend::SamplingStrategy;
use kgeval::serve::{client, serve, Json, ModelRegistry, MonitorConfig, Router, ServerConfig};

const NUM_ENTITIES: usize = 60;
const NUM_RELATIONS: usize = 4;

fn family_dim(kind: ModelKind) -> usize {
    match kind {
        ModelKind::ConvE => 16,
        ModelKind::Rescal | ModelKind::TuckEr => 8,
        _ => 12,
    }
}

fn family_name(kind: ModelKind) -> String {
    format!("{kind:?}").to_lowercase()
}

/// The graph both servers must end up agreeing on.
fn final_triples() -> Vec<Triple> {
    (0..40u32)
        .map(|i| Triple::new(i % NUM_ENTITIES as u32, i % NUM_RELATIONS as u32, (i * 7 + 3) % 60))
        .collect()
}

/// Triples present at startup on the live server but absent from the final
/// graph — they must be deleted over the wire.
fn doomed_triples(final_set: &HashSet<Triple>) -> Vec<Triple> {
    let doomed: Vec<Triple> = (0..12u32)
        .map(|i| Triple::new((i * 5 + 1) % 60, (i + 2) % NUM_RELATIONS as u32, (i * 9 + 4) % 60))
        .filter(|t| !final_set.contains(t))
        .collect();
    assert!(doomed.len() >= 8, "fixture needs a meaningful delete set");
    doomed
}

fn registry_with_all_families(filter: Arc<FilterIndex>) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for kind in ModelKind::ALL {
        let model = build_model(kind, NUM_ENTITIES, NUM_RELATIONS, family_dim(kind), 77);
        registry.register(
            family_name(kind),
            Arc::from(model as Box<dyn KgcModel>),
            Arc::clone(&filter),
        );
    }
    registry
}

fn triples_json(triples: &[Triple]) -> String {
    triples
        .iter()
        .map(|t| format!("[{},{},{}]", t.head.0, t.relation.0, t.tail.0))
        .collect::<Vec<_>>()
        .join(",")
}

/// Drop the fields that legitimately differ between a delta-fed server and
/// a cold-loaded one: `/eval`'s wall clock and its graph version (the live
/// server has applied deltas, the cold one is at version 0 — the *content*
/// must still match bit for bit).
fn canon(body: &str) -> String {
    match Json::parse(body) {
        Ok(Json::Obj(fields)) => Json::Obj(
            fields.into_iter().filter(|(k, _)| k != "seconds" && k != "graph_version").collect(),
        )
        .to_string(),
        _ => body.to_string(),
    }
}

#[test]
fn live_deltas_match_a_cold_snapshot_byte_for_byte_for_all_families() {
    let finals = final_triples();
    let final_set: HashSet<Triple> = finals.iter().copied().collect();
    let doomed = doomed_triples(&final_set);
    // Live server starts from a stale graph: the first 25 final triples
    // plus everything doomed; the rest arrives as two wire deltas.
    let base: Vec<Triple> = finals.iter().take(25).chain(doomed.iter()).copied().collect();
    let added: Vec<Triple> = finals.iter().skip(25).copied().collect();

    let live = serve(
        Router::new(registry_with_all_families(Arc::new(FilterIndex::from_slices(&[&base])))),
        &ServerConfig { workers: 4, ..Default::default() },
    )
    .expect("bind live");
    let cold = serve(
        Router::new(registry_with_all_families(Arc::new(FilterIndex::from_slices(&[&finals])))),
        &ServerConfig { workers: 4, ..Default::default() },
    )
    .expect("bind cold");

    for kind in ModelKind::ALL {
        let model = family_name(kind);
        // Delta 1: part of the catch-up, plus a no-op insert (already
        // present) and a no-op delete (never present) that must be skipped.
        let noop_insert = finals[0];
        let noop_delete = Triple::new(59, 0, 59);
        assert!(!final_set.contains(&noop_delete) && !base.contains(&noop_delete));
        let body = format!(
            "{{\"model\":\"{model}\",\"insert\":[{}],\"delete\":[{}]}}",
            triples_json(&added[..8].iter().chain([&noop_insert]).copied().collect::<Vec<_>>()),
            triples_json(&doomed[..4]),
        );
        let (status, response) = client::post_json(live.addr(), "/triples", &body).unwrap();
        assert_eq!(status, 200, "{model}: {response}");
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(parsed.get("version").and_then(Json::as_usize), Some(1), "{response}");
        assert_eq!(parsed.get("inserted").and_then(Json::as_usize), Some(8), "no-op skipped");
        assert_eq!(parsed.get("deleted").and_then(Json::as_usize), Some(4));

        // Delta 2: the rest of the catch-up in one batch.
        let body = format!(
            "{{\"model\":\"{model}\",\"insert\":[{}],\"delete\":[{}]}}",
            triples_json(&added[8..]),
            triples_json(&doomed[4..]),
        );
        let (status, response) = client::post_json(live.addr(), "/triples", &body).unwrap();
        assert_eq!(status, 200, "{model}: {response}");
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(parsed.get("version").and_then(Json::as_usize), Some(2), "{response}");
        assert_eq!(
            parsed.get("known_triples").and_then(Json::as_usize),
            Some(final_set.len()),
            "{model}: live graph must now hold exactly the final triple set"
        );
    }

    // Every read endpoint must now be indistinguishable from the cold load.
    for kind in ModelKind::ALL {
        let model = family_name(kind);
        let requests = [
            (
                "/topk",
                format!(
                    r#"{{"model":"{model}","queries":[{{"head":2,"relation":1}},{{"relation":0,"tail":9}},{{"head":59,"relation":3}}],"k":7}}"#
                ),
            ),
            (
                "/topk",
                format!(
                    r#"{{"model":"{model}","queries":[{{"head":5,"relation":2}}],"k":500,"filtered":false}}"#
                ),
            ),
            // /eval twice: the repeat must be a version-valid cache hit on
            // BOTH servers (same "eval_cache" field), same bytes.
            (
                "/eval",
                format!(
                    r#"{{"model":"{model}","triples":[[0,1,2],[5,2,7],[9,0,4],[30,1,31],[44,0,45]],"n_s":12,"seed":9,"include_ranks":true}}"#
                ),
            ),
            (
                "/eval",
                format!(
                    r#"{{"model":"{model}","triples":[[0,1,2],[5,2,7],[9,0,4],[30,1,31],[44,0,45]],"n_s":12,"seed":9,"include_ranks":true}}"#
                ),
            ),
        ];
        for (path, body) in &requests {
            let (s_live, b_live) = client::post_json(live.addr(), path, body).unwrap();
            let (s_cold, b_cold) = client::post_json(cold.addr(), path, body).unwrap();
            assert_eq!(s_live, s_cold, "{model} {path}: status diverged ({b_live})");
            assert_eq!(s_live, 200, "{model} {path}: {b_live}");
            if *path == "/eval" {
                assert_eq!(canon(&b_live), canon(&b_cold), "{model} {path}: bytes diverged");
            } else {
                assert_eq!(b_live, b_cold, "{model} {path}: bytes diverged");
            }
        }
        // The version skew canon() hides is exactly the one we created.
        let (_, b) = client::post_json(
            live.addr(),
            "/eval",
            &format!(r#"{{"model":"{model}","triples":[[0,1,2]],"n_s":5,"seed":1}}"#),
        )
        .unwrap();
        assert_eq!(
            Json::parse(&b).unwrap().get("graph_version").and_then(Json::as_usize),
            Some(2),
            "{model}: /eval must report the version it computed against"
        );
    }

    // GET /admin/models reflects the post-delta state on the live server.
    let (status, body) = client::get(live.addr(), "/admin/models").unwrap();
    assert_eq!(status, 200, "{body}");
    let models = Json::parse(&body).unwrap();
    let models = models.get("models").and_then(Json::as_array).unwrap();
    assert_eq!(models.len(), ModelKind::ALL.len());
    for m in models {
        assert_eq!(m.get("entities").and_then(Json::as_usize), Some(NUM_ENTITIES));
        assert_eq!(m.get("relations").and_then(Json::as_usize), Some(NUM_RELATIONS));
        assert_eq!(m.get("graph_version").and_then(Json::as_usize), Some(2));
        assert_eq!(m.get("known_triples").and_then(Json::as_usize), Some(final_set.len()));
        assert!(m.get("family").and_then(Json::as_str).is_some());
        assert!(m.get("dim").and_then(Json::as_usize).unwrap() > 0);
    }

    // /healthz carries the per-model graph version too (satellite: worker
    // shard state; this node is unsharded, so worker_shard is null).
    let (_, health) = client::get(live.addr(), "/healthz").unwrap();
    let health = Json::parse(&health).unwrap();
    assert!(matches!(health.get("worker_shard"), Some(Json::Null)));
    let ranges = health.get("shard_ranges").and_then(Json::as_array).unwrap();
    assert_eq!(ranges.len(), ModelKind::ALL.len());
    for r in ranges {
        assert_eq!(r.get("graph_version").and_then(Json::as_usize), Some(2));
        assert_eq!(r.get("entities").and_then(Json::as_usize), Some(NUM_ENTITIES));
    }

    live.shutdown();
    cold.shutdown();
}

#[test]
fn insert_between_identical_evals_changes_the_answer_and_misses_the_cache() {
    // One query (0,0,1) over a near-empty graph: the sampled evaluation
    // ranks entity 1 against every other entity. Deterministic seeds make
    // the initial rank reproducibly > 1; inserting (0,0,e) for every other
    // e turns all competitors into known answers, forcing rank 1.
    let num_entities = 50usize;
    let base = [Triple::new(0, 0, 1)];
    let filter = Arc::new(FilterIndex::from_slices(&[&base]));
    let model = build_model(ModelKind::DistMult, num_entities, 2, 8, 3);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
    let server = serve(Router::new(registry), &ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let eval_body = format!(r#"{{"model":"m","triples":[[0,0,1]],"n_s":{num_entities},"seed":1}}"#);
    let (status, first) = client::post_json(addr, "/eval", &eval_body).unwrap();
    assert_eq!(status, 200, "{first}");
    let first = Json::parse(&first).unwrap();
    assert_eq!(first.get("eval_cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(first.get("graph_version").and_then(Json::as_usize), Some(0));
    let mrr_before = first.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
    assert!(mrr_before < 1.0, "fixture must start with rank > 1, got mrr {mrr_before}");

    // Identical repeat: served from the eval cache, identical numbers.
    let (_, second) = client::post_json(addr, "/eval", &eval_body).unwrap();
    let second = Json::parse(&second).unwrap();
    assert_eq!(second.get("eval_cache").and_then(Json::as_str), Some("hit"));
    let mrr_cached = second.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
    assert_eq!(mrr_cached.to_bits(), mrr_before.to_bits());

    // Insert (0,0,e) for every e ≠ 1 and (h,0,1) for every h ≠ 0: both the
    // tail- and head-side keys of the evaluated triple are touched, so the
    // cached entry must be treated as stale, not served — and every
    // competitor on both sides becomes a known answer.
    let inserts: Vec<Triple> = (0..num_entities as u32)
        .filter(|&e| e != 1)
        .map(|e| Triple::new(0, 0, e))
        .chain((0..num_entities as u32).filter(|&h| h != 0).map(|h| Triple::new(h, 0, 1)))
        .collect();
    let body = format!(r#"{{"model":"m","insert":[{}]}}"#, triples_json(&inserts));
    let (status, response) = client::post_json(addr, "/triples", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let outcome = Json::parse(&response).unwrap();
    assert_eq!(outcome.get("version").and_then(Json::as_usize), Some(1));
    assert_eq!(outcome.get("inserted").and_then(Json::as_usize), Some(2 * (num_entities - 1)));

    // The same request now recomputes against the new graph: cache miss,
    // bumped version, and a different answer (all competitors filtered).
    let (_, third) = client::post_json(addr, "/eval", &eval_body).unwrap();
    let third = Json::parse(&third).unwrap();
    assert_eq!(
        third.get("eval_cache").and_then(Json::as_str),
        Some("miss"),
        "a version-stale cache entry must be a miss: {third:?}"
    );
    assert_eq!(third.get("graph_version").and_then(Json::as_usize), Some(1));
    let mrr_after = third.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
    assert_eq!(mrr_after, 1.0, "every competitor is now a known answer");
    assert_ne!(mrr_after.to_bits(), mrr_before.to_bits(), "the insert must change the answer");

    // And the repeat of the *new* state is a hit again.
    let (_, fourth) = client::post_json(addr, "/eval", &eval_body).unwrap();
    assert_eq!(Json::parse(&fourth).unwrap().get("eval_cache").and_then(Json::as_str), Some("hit"));
    server.shutdown();
}

#[test]
fn monitor_tracks_deltas_and_raises_the_drift_alarm_on_a_bad_reload() {
    let dataset = generate(&SyntheticKgConfig {
        num_entities: 120,
        num_relations: 4,
        num_types: 5,
        num_triples: 900,
        seed: 21,
        ..Default::default()
    });
    let mut model =
        build_model(ModelKind::DistMult, dataset.num_entities(), dataset.num_relations(), 12, 42);
    train(
        model.as_mut(),
        dataset.train.triples(),
        &TrainConfig { epochs: 3, ..Default::default() },
        None,
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::from(model as Box<dyn KgcModel>), Arc::new(dataset.filter.clone()));
    let server = serve(Router::new(Arc::clone(&registry)), &ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let window: Vec<Triple> = dataset.valid.iter().take(30).copied().collect();
    let monitor = registry
        .start_monitor(
            "m",
            MonitorConfig {
                window: window.clone(),
                n_s: 20,
                seed: 5,
                strategy: SamplingStrategy::Random,
                drift_threshold: 0.01,
                ..MonitorConfig::default()
            },
        )
        .expect("start monitor");

    let wait_for_evals = |n: u64| {
        for _ in 0..200 {
            if monitor.evals_run() >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("monitor never reached {n} evaluation rounds");
    };

    // Baseline round fires at startup.
    wait_for_evals(1);
    let (status, body) = client::get(addr, "/monitor").unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    let m = &parsed.get("monitors").and_then(Json::as_array).unwrap()[0];
    assert_eq!(m.get("model").and_then(Json::as_str), Some("m"));
    assert_eq!(m.get("window_len").and_then(Json::as_usize), Some(window.len()));
    assert_eq!(m.get("graph_version").and_then(Json::as_usize), Some(0));
    assert_eq!(m.get("drift_alarm"), Some(&Json::Bool(false)));
    let baseline = m.get("baseline_mrr").and_then(Json::as_f64).unwrap();
    let mrr = m.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
    assert_eq!(mrr.to_bits(), baseline.to_bits(), "first round defines the baseline");
    assert!(m.get("eval_age_seconds").and_then(Json::as_f64).is_some());

    // A wire delta slides the window and wakes the monitor.
    let fresh = (0..dataset.num_entities() as u32)
        .map(|t| Triple::new(0, 0, t))
        .find(|t| !dataset.filter.contains(*t))
        .expect("some unknown triple exists");
    let body = format!(r#"{{"model":"m","insert":[{}]}}"#, triples_json(&[fresh]));
    let (status, response) = client::post_json(addr, "/triples", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    wait_for_evals(2);
    let (_, body) = client::get(addr, "/monitor").unwrap();
    let parsed = Json::parse(&body).unwrap();
    let m = &parsed.get("monitors").and_then(Json::as_array).unwrap()[0];
    assert_eq!(m.get("graph_version").and_then(Json::as_usize), Some(1));
    assert_eq!(
        m.get("window_len").and_then(Json::as_usize),
        Some(window.len() + 1),
        "inserted triples join the sliding window"
    );
    assert_eq!(m.get("drift_alarm"), Some(&Json::Bool(false)));

    // Hot-reload an untrained snapshot under the same name: the next
    // monitored round sees MRR collapse and raises the alarm.
    let bad =
        build_model(ModelKind::DistMult, dataset.num_entities(), dataset.num_relations(), 12, 999);
    let dir = std::env::temp_dir().join(format!("kg-live-monitor-{}", std::process::id()));
    let path = dir.join("bad.kgev");
    kgeval::models::io::save_model_to_path(bad.as_ref(), ModelKind::DistMult, &path).unwrap();
    let reload = format!("{{\"name\":\"m\",\"path\":\"{}\"}}", path.display());
    let (status, response) = client::post_json(addr, "/admin/models", &reload).unwrap();
    assert_eq!(status, 200, "{response}");
    monitor.poke();
    wait_for_evals(3);

    let (_, body) = client::get(addr, "/monitor").unwrap();
    let parsed = Json::parse(&body).unwrap();
    let m = &parsed.get("monitors").and_then(Json::as_array).unwrap()[0];
    assert_eq!(
        m.get("drift_alarm"),
        Some(&Json::Bool(true)),
        "untrained replacement must trip the drift alarm: {body}"
    );
    let degraded = m.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
    assert!(degraded < baseline - 0.01, "mrr {degraded} vs baseline {baseline}");
    assert_eq!(
        m.get("graph_version").and_then(Json::as_usize),
        Some(1),
        "the reload donates the live graph, so the version survives"
    );

    // The alarm and gauges are scrapeable.
    let (_, prom) = client::get(addr, "/metrics").unwrap();
    assert!(prom.contains("kg_serve_monitor_drift_alarm{model=\"m\"} 1"), "{prom}");
    assert!(prom.contains("kg_serve_monitor_mrr{model=\"m\"}"), "{prom}");
    assert!(prom.contains("kg_serve_monitor_baseline_mrr{model=\"m\"}"), "{prom}");
    assert!(prom.contains("kg_serve_monitor_evals_total{model=\"m\"} 3"), "{prom}");
    assert!(prom.contains("kg_serve_monitor_eval_age_seconds{model=\"m\"}"), "{prom}");
    assert!(prom.contains("kg_serve_graph_version{model=\"m\"} 1"), "{prom}");

    // Stopping the monitor removes it from /monitor.
    assert!(registry.stop_monitor("m"));
    let (_, body) = client::get(addr, "/monitor").unwrap();
    let parsed = Json::parse(&body).unwrap();
    assert!(parsed.get("monitors").and_then(Json::as_array).unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
    server.shutdown();
}
