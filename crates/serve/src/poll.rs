//! Readiness-polling syscall shim: the one file in the serving crate that
//! talks to the OS event interface directly, so every `unsafe` the reactor
//! needs lives here behind a safe, `mio`-shaped API.
//!
//! * Linux: `epoll` (`epoll_create1` / `epoll_ctl` / `epoll_wait`).
//! * macOS / the BSDs: `kqueue` (`kqueue` / `kevent`), 64-bit targets only
//!   (tokens ride in the pointer-sized `udata` field).
//!
//! Both backends are used **level-triggered**: an fd with unread input (or
//! writable buffer space the reactor wants) reports ready on every
//! [`Poller::wait`] until the condition is consumed. Level-triggering keeps
//! the connection state machine simple — no "drain until `EAGAIN` or lose
//! the edge" obligation — at the cost of re-reported events the reactor
//! suppresses by registering only the interests it can act on.
//!
//! The FFI declarations bind the C library's wrappers (every libc on the
//! supported platforms exports them with these exact signatures), not raw
//! syscall numbers, so errno handling comes via
//! [`std::io::Error::last_os_error`] like the rest of std's own net code.
#![allow(unsafe_code)] // the crate root denies it; readiness FFI is the sanctioned exception

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report from [`Poller::wait`].
///
/// Error and hang-up conditions (`EPOLLERR`/`EPOLLHUP`/`EV_EOF`) are folded
/// into `readable`/`writable` both set: whichever operation the connection
/// attempts next will surface the concrete `io::Error` (or EOF), which is
/// the only place it can be handled anyway.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// Interest set for [`Poller::register`] / [`Poller::reregister`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest { readable: true, writable: false };

    pub fn new(readable: bool, writable: bool) -> Interest {
        Interest { readable, writable }
    }
}

/// Upper bound on events surfaced per [`Poller::wait`] call. More ready
/// fds than this simply arrive on the next tick (level-triggered backends
/// re-report anything still ready), so the bound trades one reallocation
/// -free buffer against tick latency under extreme fan-in.
const MAX_EVENTS: usize = 1024;

/// Milliseconds for the kernel timeout, rounded **up** so a sub-tick
/// deadline sleeps at least once instead of busy-spinning; the caller
/// re-checks wall-clock deadlines against `Instant::now()` after every
/// wake-up, so oversleeping by a fraction of a millisecond is harmless.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis().saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, MAX_EVENTS};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel `struct epoll_event`. On x86/x86_64 the kernel ABI packs it
    /// (no padding between `events` and `data`); everywhere else it is
    /// naturally aligned.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An epoll instance owning its fd.
    pub struct Poller {
        epfd: RawFd,
        /// Reused kernel-facing event buffer (zero-initialized, plain old
        /// data — no uninitialized memory is ever read).
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is checked and surfaced as the OS error.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: interest_bits(interest), data: token };
            // SAFETY: `ev` is a live, properly laid-out epoll_event for
            // the duration of the call; the kernel only reads it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // A null event pointer is allowed for DEL on every kernel
            // since 2.6.9; passing a dummy event stays compatible anyway.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::new(false, false))
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            // SAFETY: `buf` holds MAX_EVENTS initialized epoll_events;
            // the kernel writes at most `maxevents` of them and the
            // checked return value `n` bounds how many are read back.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    super::timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    // EINTR: report an empty tick; the reactor recomputes
                    // its deadline timeout and calls again.
                    return Ok(());
                }
                return Err(err);
            }
            for raw in self.buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (raw.events, raw.data);
                let err = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    token: data,
                    readable: err || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: err || bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a valid fd this Poller exclusively owns;
            // nothing uses it after drop.
            unsafe { close(self.epfd) };
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            // RDHUP so a half-closed peer wakes the reactor even when the
            // read buffer is empty (it reads the EOF and closes cleanly).
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

#[cfg(all(
    any(
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ),
    target_pointer_width = "64"
))]
mod sys {
    use super::{Event, Interest, MAX_EVENTS};
    use std::ffi::c_void;
    use std::io;
    use std::os::fd::RawFd;
    use std::ptr;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// `struct kevent` as laid out by the 64-bit BSD/darwin ABIs.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// A kqueue instance owning its fd.
    pub struct Poller {
        kq: RawFd,
        buf: Vec<Kevent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: kqueue takes no arguments; a negative return is
            // checked and surfaced as the OS error.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            let zero = Kevent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            };
            Ok(Poller { kq, buf: vec![zero; MAX_EVENTS] })
        }

        /// Apply one filter change; `required` distinguishes "must
        /// succeed" adds from best-effort deletes (ENOENT is expected when
        /// the filter was never registered).
        fn change(
            &self,
            fd: RawFd,
            filter: i16,
            flags: u16,
            token: u64,
            required: bool,
        ) -> io::Result<()> {
            let change = Kevent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            // SAFETY: the changelist points at one live Kevent; no
            // eventlist is supplied so the kernel writes nothing back.
            let rc = unsafe { kevent(self.kq, &change, 1, ptr::null_mut(), 0, ptr::null()) };
            if rc < 0 && required {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn apply(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for (filter, wanted) in
                [(EVFILT_READ, interest.readable), (EVFILT_WRITE, interest.writable)]
            {
                if wanted {
                    self.change(fd, filter, EV_ADD, token, true)?;
                } else {
                    self.change(fd, filter, EV_DELETE, token, false)?;
                }
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.apply(fd, 0, Interest::new(false, false))
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let ms = super::timeout_ms(timeout);
            let ts;
            let ts_ptr = if ms < 0 {
                std::ptr::null()
            } else {
                ts = Timespec {
                    tv_sec: i64::from(ms) / 1000,
                    tv_nsec: i64::from(ms) % 1000 * 1_000_000,
                };
                &ts as *const Timespec
            };
            // SAFETY: `buf` holds MAX_EVENTS initialized Kevents; the
            // kernel writes at most `nevents` of them and the checked
            // return value `n` bounds how many are read back. `ts_ptr` is
            // null or points at `ts`, which outlives the call.
            let n = unsafe {
                kevent(
                    self.kq,
                    std::ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    ts_ptr,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in self.buf.iter().take(n as usize) {
                let err = raw.flags & (EV_EOF | EV_ERROR) != 0;
                events.push(Event {
                    token: raw.udata as u64,
                    readable: err || raw.filter == EVFILT_READ,
                    writable: err || raw.filter == EVFILT_WRITE,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `kq` is a valid fd this Poller exclusively owns;
            // nothing uses it after drop.
            unsafe { close(self.kq) };
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    all(
        any(
            target_os = "macos",
            target_os = "ios",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        ),
        target_pointer_width = "64"
    )
)))]
compile_error!(
    "kg-serve's reactor needs a readiness backend: epoll (Linux) or kqueue (64-bit macOS/BSD)"
);

/// OS readiness queue with a uniform face over epoll and kqueue.
///
/// Level-triggered: a registered fd reports on every [`Poller::wait`]
/// while its condition holds. Register only interests the state machine
/// can consume, or the reactor busy-spins.
pub struct Poller {
    sys: sys::Poller,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { sys: sys::Poller::new()? })
    }

    /// Start watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`] (the kernel also drops closed fds on its
    /// own, but relying on that leaks kqueue filters).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.sys.register(fd, token, interest)
    }

    /// Replace the interest set (and token) of an fd registered earlier.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.sys.reregister(fd, token, interest)
    }

    /// Stop watching `fd`. Call before closing it.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.sys.deregister(fd)
    }

    /// Block until at least one registered fd is ready, `timeout` elapses
    /// (`None` = forever), or a signal interrupts the wait (reported as an
    /// empty `events`, never an error). Ready fds are appended to
    /// `events`, at most [`MAX_EVENTS`] per call.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.sys.wait(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn timeout_ms_rounds_up_and_saturates() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1500))), 2);
        assert_eq!(timeout_ms(Some(Duration::from_secs(u64::MAX))), i32::MAX);
    }

    #[test]
    fn readiness_roundtrip_on_a_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet: a zero timeout returns promptly and empty.
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "no data, no event");

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data re-reports on the next wait.
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(events.len(), 1, "level-triggered backends re-report");

        // Consume; readiness clears.
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "consumed data, no event");

        // Peer close reports readable (read yields EOF).
        drop(a);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "hang-up surfaces as readable");
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_and_timeouts() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        // A fresh socket's send buffer has room: writable immediately.
        poller.register(a.as_raw_fd(), 3, Interest::new(false, true)).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].writable);

        // Interest swap to readable: no data pending → a short timeout
        // elapses (bounds the blocking wait as promised).
        poller.reregister(a.as_raw_fd(), 3, Interest::READABLE).unwrap();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25), "timeout honored");
        drop(b);
    }
}
