//! Tiny blocking HTTP/1.1 client, std-only — enough to drive this crate's
//! server from tests, examples, and smoke checks without external tooling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issue one request; returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|e| std::io::Error::other(e.to_string()))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post_json(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(json))
}
