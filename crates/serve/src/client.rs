//! Tiny blocking HTTP/1.1 client, std-only — enough to drive this crate's
//! server from tests, examples, and smoke checks without external tooling.
//!
//! Two modes:
//!
//! * the free functions ([`request`], [`get`], [`post_json`]) open a fresh
//!   connection per call and send `Connection: close` — the pre-keep-alive
//!   behaviour, still the simplest thing for one-off calls;
//! * [`Connection`] holds one socket open across calls (HTTP/1.1
//!   keep-alive), honors a server's `Connection: close`, and can
//!   [`Connection::pipeline`] several requests back-to-back before reading
//!   any response.
//!
//! Interim 1xx responses are skipped transparently everywhere, and
//! [`Connection::post_json_expect_continue`] implements the full
//! `Expect: 100-continue` handshake — body withheld until the server says
//! `100 Continue`, never sent when the request is rejected on its headers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Connection budgets for the client side.
///
/// The defaults reproduce the pre-config behaviour: a 60 s read timeout
/// and OS-default (unbounded) connect. The gateway overrides both so a
/// dead backend costs a bounded connect/read budget instead of a hung
/// scatter.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` leaves the OS
    /// default in place.
    pub connect_timeout: Option<Duration>,
    /// Per-read socket timeout while waiting for response bytes; `None`
    /// blocks indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { connect_timeout: None, read_timeout: Some(Duration::from_secs(60)) }
    }
}

impl ClientConfig {
    fn connect(&self, addr: SocketAddr) -> std::io::Result<TcpStream> {
        let stream = match self.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }
}

/// Serialize one request head + body. `close` adds `Connection: close`
/// (one-shot mode); without it HTTP/1.1's keep-alive default applies.
fn encode_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    close: bool,
) -> String {
    let body = body.unwrap_or("");
    format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    )
}

/// Read one response head (status line + headers); returns
/// `(status, content_length, server_will_close)`. Interim 1xx responses
/// are a valid outcome here — they carry no body, and the final response
/// follows on the same stream.
fn read_response_head(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<(u16, Option<usize>, bool)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        // Typed as UnexpectedEof so callers can tell "the server closed
        // the (possibly stale keep-alive) socket" from timeouts and
        // transport errors — the gateway retries only the former.
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a response arrived",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection")
                && value.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"))
            {
                close = true;
            }
        }
    }
    Ok((status, content_length, close))
}

/// Read a response body framed by `content_length`; without a length the
/// body runs to EOF and the returned `close` flag is forced true (the
/// connection is spent either way).
fn read_response_body(
    reader: &mut BufReader<TcpStream>,
    content_length: Option<usize>,
    close: bool,
) -> std::io::Result<(String, bool)> {
    match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            let body = String::from_utf8(buf).map_err(|e| std::io::Error::other(e.to_string()))?;
            Ok((body, close))
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            Ok((buf, true))
        }
    }
}

/// Read one final response; returns `(status, body, server_will_close)`.
/// Interim 1xx responses (e.g. `100 Continue` the client did not wait
/// for) are skipped — the final response follows on the same stream.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String, bool)> {
    loop {
        let (status, content_length, close) = read_response_head(reader)?;
        if (100..200).contains(&status) {
            continue;
        }
        let (body, close) = read_response_body(reader, content_length, close)?;
        return Ok((status, body, close));
    }
}

/// Issue one request on a fresh connection; returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let stream = ClientConfig::default().connect(addr)?;
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(encode_request(addr, method, path, body, true).as_bytes())?;
    reader.get_mut().flush()?;
    let (status, body, _) = read_response(&mut reader)?;
    Ok((status, body))
}

/// `GET path` on a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body on a fresh connection.
pub fn post_json(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(json))
}

/// A persistent keep-alive connection: many requests, one socket.
pub struct Connection {
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
    server_closed: bool,
}

impl Connection {
    /// Connect to `addr` with the default budgets ([`ClientConfig`]: 60 s
    /// read timeout, OS-default connect) and `TCP_NODELAY`.
    pub fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        Self::open_with(addr, &ClientConfig::default())
    }

    /// Connect to `addr` with explicit connect/read budgets.
    pub fn open_with(addr: SocketAddr, config: &ClientConfig) -> std::io::Result<Connection> {
        let stream = config.connect(addr)?;
        Ok(Connection { reader: BufReader::new(stream), addr, server_closed: false })
    }

    /// Whether the server announced (or effected) a close; once true,
    /// further requests fail and the caller should open a new connection.
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    /// Issue one request on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        if self.server_closed {
            return Err(std::io::Error::other("server closed this keep-alive connection"));
        }
        let wire = encode_request(self.addr, method, path, body, false);
        // Any failure to deliver the request or produce its response means
        // the socket is spent — record that, so `server_closed()` keeps
        // its promise on the EPIPE and EOF-without-close paths alike
        // (e.g. the server idle-closed first).
        let result = (|| {
            self.reader.get_mut().write_all(wire.as_bytes())?;
            self.reader.get_mut().flush()?;
            read_response(&mut self.reader)
        })();
        let (status, body, close) = result.inspect_err(|_| self.server_closed = true)?;
        self.server_closed = close;
        Ok((status, body))
    }

    /// `GET path` on the persistent connection.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body on the persistent connection.
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(json))
    }

    /// `POST path` with `Expect: 100-continue`: send the head only, wait
    /// for the server's verdict, and ship the body **only after**
    /// `100 Continue` arrives. A final status instead of the interim
    /// response (the server rejected on headers alone — 413, 417, …) is
    /// returned directly and the body is never transmitted.
    pub fn post_json_expect_continue(
        &mut self,
        path: &str,
        json: &str,
    ) -> std::io::Result<(u16, String)> {
        if json.is_empty() {
            // Nothing to withhold — and the server (rightly) sends no 100
            // for a zero-length body, which the handshake below would
            // misread as an early header rejection.
            return self.request("POST", path, Some(json));
        }
        if self.server_closed {
            return Err(std::io::Error::other("server closed this keep-alive connection"));
        }
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nExpect: 100-continue\r\n\r\n",
            self.addr,
            json.len()
        );
        let result = (|| {
            self.reader.get_mut().write_all(head.as_bytes())?;
            self.reader.get_mut().flush()?;
            let (status, content_length, close) = read_response_head(&mut self.reader)?;
            if (100..200).contains(&status) {
                // Permission granted: ship the body, then read the final
                // response (skipping any further interim ones).
                self.reader.get_mut().write_all(json.as_bytes())?;
                self.reader.get_mut().flush()?;
                return read_response(&mut self.reader);
            }
            // Early rejection — the final status arrived without a 100.
            // The request's body was announced but never sent, so this
            // connection's framing is spent for further requests.
            let (body, _) = read_response_body(&mut self.reader, content_length, close)?;
            Ok((status, body, true))
        })();
        let (status, body, close) = result.inspect_err(|_| self.server_closed = true)?;
        self.server_closed = close;
        Ok((status, body))
    }

    /// Pipeline: write every request before reading any response, then
    /// read the responses in order (responses arrive in request order per
    /// HTTP/1.1).
    ///
    /// Returns the responses actually received: fewer than
    /// `requests.len()` entries means the connection ended partway through
    /// — the server said `Connection: close`, or died without one
    /// ([`Connection::server_closed`] turns true either way) — and the
    /// remaining requests were never answered; resend those on a fresh
    /// connection. An `Err` means not even the first response arrived.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, Option<&str>)],
    ) -> std::io::Result<Vec<(u16, String)>> {
        if self.server_closed {
            return Err(std::io::Error::other("server closed this keep-alive connection"));
        }
        let mut wire = String::new();
        for (method, path, body) in requests {
            wire.push_str(&encode_request(self.addr, method, path, *body, false));
        }
        let written = (|| {
            self.reader.get_mut().write_all(wire.as_bytes())?;
            self.reader.get_mut().flush()
        })();
        written.inspect_err(|_| self.server_closed = true)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            if self.server_closed {
                break;
            }
            match read_response(&mut self.reader) {
                Ok((status, body, close)) => {
                    self.server_closed = close;
                    responses.push((status, body));
                }
                // Partial result, not an error: the caller keeps everything
                // that was answered, even when the server vanished without
                // a Connection: close.
                Err(_) if !responses.is_empty() => {
                    self.server_closed = true;
                    break;
                }
                Err(e) => {
                    self.server_closed = true;
                    return Err(e);
                }
            }
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Shutdown, TcpListener};

    /// One-connection server that writes a fixed byte script, half-closes,
    /// and drains the client's bytes (so client writes never see an RST).
    fn scripted_server(script: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else { return };
            let _ = stream.write_all(script.as_bytes());
            let _ = stream.shutdown(Shutdown::Write);
            let mut sink = [0u8; 1024];
            while let Ok(n) = stream.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        });
        addr
    }

    #[test]
    fn encode_request_formats_the_wire_head() {
        let addr: SocketAddr = "127.0.0.1:8080".parse().expect("addr");
        assert_eq!(
            encode_request(addr, "POST", "/score", Some("{}"), true),
            "POST /score HTTP/1.1\r\nHost: 127.0.0.1:8080\r\n\
             Content-Type: application/json\r\nContent-Length: 2\r\n\
             Connection: close\r\n\r\n{}"
        );
        // Keep-alive mode omits the Connection header (HTTP/1.1 default)
        // and an absent body is an explicit zero-length one.
        assert_eq!(
            encode_request(addr, "GET", "/healthz", None, false),
            "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1:8080\r\n\
             Content-Type: application/json\r\nContent-Length: 0\r\n\r\n"
        );
    }

    #[test]
    fn interim_1xx_responses_are_skipped_transparently() {
        let addr = scripted_server(
            "HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 102 Processing\r\n\r\n\
             HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: 4\r\nConnection: close\r\n\r\ndone",
        );
        let (status, body) = get(addr, "/x").expect("roundtrip");
        assert_eq!(status, 200, "the final status, not an interim one");
        assert_eq!(body, "done");
    }

    #[test]
    fn missing_content_length_reads_to_eof_and_spends_the_connection() {
        let addr = scripted_server("HTTP/1.1 200 OK\r\n\r\nunframed tail");
        let mut conn = Connection::open(addr).expect("open");
        let (status, body) = conn.get("/x").expect("roundtrip");
        assert_eq!(status, 200);
        assert_eq!(body, "unframed tail");
        assert!(conn.server_closed(), "an EOF-framed body spends the socket");
        assert!(conn.get("/again").is_err(), "no further requests on a spent socket");
    }

    #[test]
    fn pipeline_keeps_partial_results_when_the_server_dies_midway() {
        // Two pipelined requests; the server answers only the first (with
        // keep-alive framing) and vanishes without a Connection: close.
        let addr = scripted_server(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 1\r\n\r\na",
        );
        let mut conn = Connection::open(addr).expect("open");
        let requests: Vec<(&str, &str, Option<&str>)> =
            vec![("GET", "/a", None), ("GET", "/b", None)];
        let responses = conn.pipeline(&requests).expect("partial results are Ok, not Err");
        assert_eq!(responses, vec![(200, "a".to_string())]);
        assert!(conn.server_closed(), "the mid-pipeline EOF must mark the socket spent");
    }
}
