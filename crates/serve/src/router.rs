//! Request routing and the JSON request/response schemas of the service.
//!
//! Endpoints (see the crate docs for full schemas):
//!
//! * `POST /score`        — score `(h, r, t)` triples, coalesced by the batcher;
//! * `POST /topk`         — top-k tail/head prediction with known-true removal,
//!   coalesced by the per-model [`crate::batch::TopKBatcher`] and executed
//!   as one multi-query pass fanned out across queries × entity shards;
//! * `POST /eval`         — sampled MRR/Hits@K via the paper's fast estimator,
//!   version-stamped against the live graph and LRU-cached;
//! * `POST /triples`      — stream triple inserts/deletes into the model's
//!   live graph (bumps the graph version, invalidates touched caches);
//! * `POST /admin/models` — hot-reload a model snapshot, flipping the
//!   registry entry atomically;
//! * `GET  /admin/models` — list registered models (shape, graph version);
//! * `GET  /monitor`      — continuous-evaluation status per model;
//! * `POST /shard/topk` / `POST /shard/rank` — **internal** multi-node
//!   endpoints: the same queries evaluated only over this worker's
//!   configured entity range, returned as wire-encoded
//!   [`kg_core::partial`] results for a gateway to merge;
//! * `GET  /healthz`      — liveness + registered models + shard ranges;
//! * `GET  /metrics`      — Prometheus text (request counts, p50/p99, batches).
//!
//! The router is transport-independent: it maps `(method, path, body)` to a
//! [`Response`], which makes every handler unit-testable without sockets.
//! In the server it runs on the pool workers the reactor dispatches parsed
//! requests to (`crate::reactor`) — a handler may block (locks, scoring
//! passes) without stalling any other connection's I/O, but every blocked
//! handler occupies one of [`crate::ServerConfig::workers`].
//! A router can also front a [`Gateway`] instead of a local registry
//! ([`Router::gateway`]): `/score`, `/topk`, and `/eval` are then
//! scattered across remote shard workers and the partials merged (see
//! [`crate::gateway`]).

use std::sync::Arc;
use std::time::Instant;

use kg_core::triple::QuerySide;
use kg_core::{GraphDelta, Triple};
use kg_eval::{evaluate_sampled, TieBreak};
use kg_recommend::SamplingStrategy;

use crate::batch::TopKQuery;
use crate::gateway::Gateway;
use crate::http_metrics::HttpMetrics;
use crate::json::Json;
use crate::registry::{EvalKey, ModelEntry, ModelRegistry, SampleKey};

/// Largest request body the service accepts (guards the std-only parser).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Cap on triples in one `/score` or `/eval` request.
pub const MAX_TRIPLES_PER_REQUEST: usize = 1_000_000;

/// Cap on queries in one `/topk` request.
pub const MAX_TOPK_QUERIES: usize = 10_000;

/// A transport-agnostic HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Retry-After` seconds advertised alongside 429/503 responses.
    pub retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, value: Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string(),
            retry_after: None,
        }
    }

    /// A 200 JSON response (the gateway builds merged responses with
    /// this).
    pub(crate) fn json_ok(value: Json) -> Self {
        Response::json(200, value)
    }

    /// Relay a backend's response body unchanged (the gateway's
    /// error-parity path).
    pub(crate) fn passthrough(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", body, retry_after: None }
    }

    /// Attach a `Retry-After` advertisement.
    pub(crate) fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// JSON `{"error": message}` response; also used by the HTTP layer for
    /// framing failures (400/413/431/501) so error bodies share one shape.
    pub(crate) fn error(status: u16, message: impl Into<String>) -> Self {
        Response::json(status, Json::obj([("error", Json::Str(message.into()))]))
    }
}

/// What a router fronts: a local model registry (single node or shard
/// worker), or a scatter/gather gateway over remote workers.
enum Mode {
    Local(Arc<ModelRegistry>),
    Gateway(Arc<Gateway>),
}

/// Shared state handed to the router for every request.
pub struct Router {
    mode: Mode,
    metrics: Arc<HttpMetrics>,
}

impl Router {
    /// Router over `registry`, recording into the registry's shared
    /// [`HttpMetrics`] (the same instance its batchers observe into).
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        let metrics = Arc::clone(registry.metrics());
        Router { mode: Mode::Local(registry), metrics }
    }

    /// Router in **gateway mode**: `/score`, `/topk`, and `/eval` are
    /// scattered across the gateway's backend workers and the partial
    /// results merged (see [`crate::gateway`]); no model is served
    /// locally. `/admin/models` and the internal `/shard/*` endpoints do
    /// not exist here.
    pub fn gateway(gateway: Gateway) -> Self {
        let metrics = Arc::clone(gateway.metrics());
        Router { mode: Mode::Gateway(Arc::new(gateway)), metrics }
    }

    /// The metrics registry (shared with the server and batchers).
    pub fn metrics(&self) -> &Arc<HttpMetrics> {
        &self.metrics
    }

    /// Dispatch one request, recording count + latency for the endpoint.
    pub fn handle(&self, method: &str, path: &str, body: &str) -> Response {
        let start = Instant::now();
        let response = self.dispatch(method, path, body);
        let latency_us = start.elapsed().as_micros() as u64;
        // Unknown paths share one label: per-path labels would let a path
        // scanner grow the metrics map without bound.
        let endpoint = match path {
            "/score" | "/topk" | "/eval" | "/triples" | "/monitor" | "/admin/models"
            | "/healthz" | "/metrics" | "/shard/topk" | "/shard/rank" => path,
            _ => "other",
        };
        self.metrics.observe_request(endpoint, latency_us, response.status);
        response
    }

    fn dispatch(&self, method: &str, path: &str, body: &str) -> Response {
        let registry =
            match &self.mode {
                Mode::Local(registry) => registry,
                Mode::Gateway(gateway) => return match (method, path) {
                    ("GET", "/healthz") => gateway.healthz(),
                    ("GET", "/metrics") => self.render_metrics(),
                    ("POST", "/score") => gateway.score(body),
                    ("POST", "/topk") => gateway.topk(body),
                    ("POST", "/eval") => gateway.eval(body),
                    ("POST" | "GET", "/admin/models") => Response::error(
                        501,
                        "the gateway does not proxy admin endpoints; reload each worker directly",
                    ),
                    ("POST", "/triples") => Response::error(
                        501,
                        "the gateway does not proxy graph writes; apply deltas to every worker \
                         directly (a fleet must ingest identically to stay in agreement)",
                    ),
                    ("GET", "/monitor") => Response::error(
                        501,
                        "the gateway does not proxy monitors; query each worker directly",
                    ),
                    ("POST", _) | ("GET", _) => {
                        Response::error(404, format!("no route for {method} {path}"))
                    }
                    _ => Response::error(405, format!("method {method} not allowed")),
                },
            };
        match (method, path) {
            ("GET", "/healthz") => self.healthz(registry),
            ("GET", "/metrics") => self.render_metrics(),
            ("POST", "/score") => self.with_request(registry, body, |r, e| self.score(r, e)),
            ("POST", "/topk") => self.with_request(registry, body, |r, e| self.topk(r, e)),
            ("POST", "/eval") => self.with_request(registry, body, |r, e| self.eval(r, e)),
            // Internal shard-worker endpoints (multi-node topology): the
            // same parsing and validation as their public counterparts,
            // but evaluation is restricted to this worker's configured
            // entity range and partial results are returned for the
            // gateway to merge.
            ("POST", "/shard/topk") => {
                self.with_request(registry, body, |r, e| self.shard_topk(r, e))
            }
            ("POST", "/shard/rank") => {
                self.with_request(registry, body, |r, e| self.shard_rank(r, e))
            }
            ("POST", "/triples") => {
                self.with_request(registry, body, |r, e| self.triples(registry, r, e))
            }
            ("POST", "/admin/models") => self.admin_models(registry, body),
            ("GET", "/admin/models") => self.list_models(registry),
            ("GET", "/monitor") => self.monitor_status(registry),
            ("POST", _) | ("GET", _) => {
                Response::error(404, format!("no route for {method} {path}"))
            }
            _ => Response::error(405, format!("method {method} not allowed")),
        }
    }

    fn render_metrics(&self) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: self.metrics.render(),
            retry_after: None,
        }
    }

    fn healthz(&self, registry: &Arc<ModelRegistry>) -> Response {
        let worker_shard = match registry.worker_shard() {
            Some(ws) => {
                Json::obj([("index", Json::Num(ws.index as f64)), ("of", Json::Num(ws.of as f64))])
            }
            None => Json::Null,
        };
        let shard_ranges: Vec<Json> = registry
            .names()
            .into_iter()
            .filter_map(|name| registry.get(&name))
            .map(|entry| {
                let range = entry.shard_range();
                Json::obj([
                    ("model", Json::Str(entry.name().to_string())),
                    ("entities", Json::Num(entry.engine().num_entities() as f64)),
                    (
                        "range",
                        Json::Arr(vec![Json::Num(range.start as f64), Json::Num(range.end as f64)]),
                    ),
                    ("graph_version", Json::Num(entry.graph_version() as f64)),
                    ("precision", Json::Str(entry.engine().precision().name().to_string())),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                ("status", Json::Str("ok".into())),
                ("uptime_seconds", Json::Num(self.metrics.uptime_seconds())),
                ("kernel_isa", Json::Str(kg_models::kernels::active().name().to_string())),
                ("models", Json::Arr(registry.names().into_iter().map(Json::Str).collect())),
                ("worker_shard", worker_shard),
                ("shard_ranges", Json::Arr(shard_ranges)),
            ]),
        )
    }

    /// Parse the body, resolve the `model` field, run the handler.
    fn with_request(
        &self,
        registry: &Arc<ModelRegistry>,
        body: &str,
        f: impl FnOnce(&Json, &Arc<ModelEntry>) -> Response,
    ) -> Response {
        if body.len() > MAX_BODY_BYTES {
            return Response::error(413, "request body too large");
        }
        let parsed = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, format!("invalid JSON: {e}")),
        };
        let name = match parsed.get("model").and_then(Json::as_str) {
            Some(n) => n,
            None => return Response::error(400, "missing string field 'model'"),
        };
        let entry = match registry.get(name) {
            Some(e) => e,
            None => return Response::error(404, format!("model '{name}' is not registered")),
        };
        f(&parsed, &entry)
    }

    fn score(&self, request: &Json, entry: &Arc<ModelEntry>) -> Response {
        let triples = match parse_triples(request, entry, MAX_TRIPLES_PER_REQUEST) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let count = triples.len();
        let scores = entry.batcher().submit(triples);
        Response::json(
            200,
            Json::obj([
                ("model", Json::Str(entry.name().to_string())),
                ("count", Json::Num(count as f64)),
                ("scores", Json::from_f32s(&scores)),
            ]),
        )
    }

    fn topk(&self, request: &Json, entry: &Arc<ModelEntry>) -> Response {
        let (k, filtered) = match parse_topk_params(request) {
            Ok(p) => p,
            Err(r) => return r,
        };
        let queries = match parse_topk_queries(request, entry) {
            Ok(q) => q,
            Err(r) => return r,
        };
        let engine = entry.engine();
        let k = k.min(engine.num_entities());
        // Every request goes through the model's TopKBatcher: concurrent
        // requests coalesce into one multi-query pass, and the merged
        // batch is executed under the two-level work plan — queries across
        // worker threads, spare threads fanning each query's entity shards
        // out. Per-shard bounded heaps merged deterministically; no
        // entity-count-sized row is allocated per request.
        let jobs: Vec<TopKQuery> = queries
            .into_iter()
            .map(|(triple, side)| TopKQuery { triple, side, k, filtered })
            .collect();
        let results: Vec<Json> = entry
            .topk_batcher()
            .submit(jobs)
            .into_iter()
            .map(|top| {
                Json::obj([
                    (
                        "entities",
                        Json::Arr(top.iter().map(|&(e, _)| Json::Num(e as f64)).collect()),
                    ),
                    ("scores", Json::Arr(top.iter().map(|&(_, s)| Json::Num(s as f64)).collect())),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                ("model", Json::Str(entry.name().to_string())),
                ("k", Json::Num(k as f64)),
                ("filtered", Json::Bool(filtered)),
                ("shards", Json::Num(engine.num_shards() as f64)),
                ("results", Json::Arr(results)),
            ]),
        )
    }

    /// `POST /shard/topk` (internal): the queries of a `/topk` request —
    /// same body schema, same validation — evaluated **only over this
    /// worker's configured entity range**
    /// ([`crate::registry::ModelEntry::shard_range`]), returning one
    /// wire-encoded [`kg_core::partial::PartialTopK`] per query for the
    /// gateway to merge. The response reports the range and entity count
    /// so the gateway can verify the fleet tiles the entity space.
    fn shard_topk(&self, request: &Json, entry: &Arc<ModelEntry>) -> Response {
        let (k, filtered) = match parse_topk_params(request) {
            Ok(p) => p,
            Err(r) => return r,
        };
        let queries = match parse_topk_queries(request, entry) {
            Ok(q) => q,
            Err(r) => return r,
        };
        let engine = entry.engine();
        let k = k.min(engine.num_entities());
        let range = entry.shard_range();
        // One live-graph snapshot for the whole request: every query sees
        // the same graph version even if deltas land mid-pass.
        let snapshot = entry.live().snapshot();
        // The same two-level work plan the public path uses: queries
        // across workers, spare threads fanning each query's range out.
        let split = kg_core::parallel::two_level_split(queries.len(), entry.threads());
        let partials = kg_core::parallel::parallel_map_indexed(queries.len(), split.outer, |i| {
            // PANIC-OK: `i < queries.len()` by parallel_map_indexed's
            // contract.
            let (triple, side) = queries[i];
            let known = if filtered {
                snapshot.known_answers(triple, side)
            } else {
                // PANIC-OK: full-range slice of an empty array literal.
                std::borrow::Cow::Borrowed(&[][..])
            };
            engine.partial_top_k(triple, side, &known, k, range.clone(), split.inner).encode()
        });
        Response::json(
            200,
            Json::obj([
                ("model", Json::Str(entry.name().to_string())),
                ("k", Json::Num(k as f64)),
                ("filtered", Json::Bool(filtered)),
                ("shards", Json::Num(engine.num_shards() as f64)),
                ("entities", Json::Num(engine.num_entities() as f64)),
                (
                    "range",
                    Json::Arr(vec![Json::Num(range.start as f64), Json::Num(range.end as f64)]),
                ),
                ("partials", Json::Arr(partials.into_iter().map(Json::Str).collect())),
            ]),
        )
    }

    /// `POST /shard/rank` (internal): filtered-rank counters for every
    /// query of the submitted triples (two per triple, tail then head —
    /// the `/eval` query order), each restricted to this worker's entity
    /// range and returned as a wire-encoded
    /// [`kg_core::partial::PartialRankCounts`]. Summing the partials
    /// across a fleet whose ranges tile the entity space reproduces the
    /// single-node full-ranking counters bit for bit — the distributed
    /// building block for exact (non-sampled) evaluation.
    fn shard_rank(&self, request: &Json, entry: &Arc<ModelEntry>) -> Response {
        let triples = match parse_triples(request, entry, MAX_TRIPLES_PER_REQUEST) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let filtered = match request.get("filtered") {
            None => true,
            Some(v) => match v.as_bool() {
                Some(b) => b,
                None => return Response::error(400, "'filtered' must be a boolean"),
            },
        };
        let engine = entry.engine();
        let range = entry.shard_range();
        let snapshot = entry.live().snapshot();
        let queries = kg_eval::ranker::queries_of(&triples);
        let split = kg_core::parallel::two_level_split(queries.len(), entry.threads());
        let partials = kg_core::parallel::parallel_map_indexed(queries.len(), split.outer, |i| {
            // PANIC-OK: `i < queries.len()` by parallel_map_indexed's
            // contract.
            let (triple, side) = queries[i];
            let known = if filtered {
                snapshot.known_answers(triple, side)
            } else {
                // PANIC-OK: full-range slice of an empty array literal.
                std::borrow::Cow::Borrowed(&[][..])
            };
            engine.partial_rank_counts(triple, side, &known, range.clone(), split.inner).encode()
        });
        Response::json(
            200,
            Json::obj([
                ("model", Json::Str(entry.name().to_string())),
                ("filtered", Json::Bool(filtered)),
                ("entities", Json::Num(engine.num_entities() as f64)),
                (
                    "range",
                    Json::Arr(vec![Json::Num(range.start as f64), Json::Num(range.end as f64)]),
                ),
                ("partials", Json::Arr(partials.into_iter().map(Json::Str).collect())),
            ]),
        )
    }

    /// `POST /admin/models`: hot-reload a model snapshot.
    ///
    /// Body: `{"name": "m", "path": "/path/to/model.kgev"}` (plus
    /// `"token"` when [`crate::registry::RegistryConfig::admin_token`] is
    /// configured, and optionally `"precision": "f32"|"f16"|"int8"` to
    /// override the serving precision the registry would otherwise
    /// resolve). The snapshot is loaded off the registry locks, then the
    /// entry is flipped atomically; in-flight requests finish on the `Arc`
    /// they hold. An existing entry keeps its filter index and recommender
    /// artifacts, so the snapshot must match its entity/relation counts.
    fn admin_models(&self, registry: &Arc<ModelRegistry>, body: &str) -> Response {
        if body.len() > MAX_BODY_BYTES {
            return Response::error(413, "request body too large");
        }
        let parsed = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, format!("invalid JSON: {e}")),
        };
        if let Some(expected) = registry.admin_token() {
            if parsed.get("token").and_then(Json::as_str) != Some(expected) {
                return Response::error(403, "missing or invalid admin token");
            }
        }
        let Some(name) = parsed.get("name").and_then(Json::as_str) else {
            return Response::error(400, "missing string field 'name'");
        };
        let Some(path) = parsed.get("path").and_then(Json::as_str) else {
            return Response::error(400, "missing string field 'path'");
        };
        // Optional explicit serving precision; overrides the registry
        // default and the snapshot's own hint. Invalid values are rejected
        // rather than silently falling back to f32.
        let precision = match parsed.get("precision") {
            None => None,
            Some(v) => match v.as_str().and_then(kg_models::Precision::parse) {
                Some(p) => Some(p),
                None => {
                    return Response::error(400, "'precision' must be one of f32|f16|int8");
                }
            },
        };
        let replaced = registry.get(name).is_some();
        match registry.reload_snapshot_with(name, path, precision) {
            Ok(entry) => Response::json(
                200,
                Json::obj([
                    ("model", Json::Str(name.to_string())),
                    ("status", Json::Str(if replaced { "replaced" } else { "loaded" }.into())),
                    ("entities", Json::Num(entry.model().num_entities() as f64)),
                    ("relations", Json::Num(entry.model().num_relations() as f64)),
                    ("shards", Json::Num(entry.engine().num_shards() as f64)),
                    ("precision", Json::Str(entry.engine().precision().name().to_string())),
                ]),
            ),
            // Shape-mismatch rejections carry actionable detail; raw I/O
            // errors are collapsed so the endpoint cannot be used to probe
            // the filesystem.
            Err(e @ kg_core::KgError::InvalidInput(_)) => {
                Response::error(422, format!("snapshot load failed: {e}"))
            }
            Err(_) => Response::error(422, "snapshot load failed: unreadable or malformed file"),
        }
    }

    fn eval(&self, request: &Json, entry: &Arc<ModelEntry>) -> Response {
        let triples = match parse_triples(request, entry, MAX_TRIPLES_PER_REQUEST) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let strategy = match request.get("strategy").map(|v| v.as_str()) {
            None => SamplingStrategy::Random,
            Some(Some("random")) => SamplingStrategy::Random,
            Some(Some("static")) => SamplingStrategy::Static,
            Some(Some("probabilistic")) => SamplingStrategy::Probabilistic,
            Some(other) => {
                return Response::error(
                    400,
                    format!(
                        "'strategy' must be one of random|static|probabilistic, got '{}'",
                        other.unwrap_or("<non-string>")
                    ),
                )
            }
        };
        let Some(n_s) = request.get("n_s").map_or(Some(100), |v| v.as_usize()) else {
            return Response::error(400, "'n_s' must be a non-negative integer");
        };
        let Some(seed) = request.get("seed").map_or(Some(0), |v| v.as_u64()) else {
            return Response::error(400, "'seed' must be a non-negative integer");
        };
        let tie = match request.get("tie").map(|v| v.as_str()) {
            None => TieBreak::Mean,
            Some(Some("mean")) => TieBreak::Mean,
            Some(Some("optimistic")) => TieBreak::Optimistic,
            Some(Some("pessimistic")) => TieBreak::Pessimistic,
            Some(other) => {
                return Response::error(
                    400,
                    format!(
                        "'tie' must be one of mean|optimistic|pessimistic, got '{}'",
                        other.unwrap_or("<non-string>")
                    ),
                )
            }
        };
        let include_ranks = request.get("include_ranks").and_then(Json::as_bool).unwrap_or(false);

        let key = SampleKey { strategy, n_s, seed };
        let (samples, cache_hit) = match entry.samples_for(&key) {
            Ok(s) => s,
            Err(msg) => return Response::error(400, msg),
        };
        // One snapshot for the whole request: its version stamps both the
        // response and the cached result, so a write landing mid-request
        // can never be misattributed — the cache refuses stale stores and
        // a version-stale entry is a miss.
        let snapshot = entry.live().snapshot();
        let graph_version = snapshot.version();
        let eval_key = EvalKey::new(strategy, n_s, seed, tie, &triples);
        let (result, eval_hit) = match entry.cached_eval(&eval_key, graph_version) {
            Some(cached) => (cached, true),
            None => {
                let fresh = evaluate_sampled(
                    entry.model().as_ref(),
                    &triples,
                    snapshot.as_ref(),
                    &samples,
                    tie,
                    entry.threads(),
                );
                entry.store_eval(eval_key, &fresh, &triples, graph_version);
                (fresh, false)
            }
        };
        self.metrics.observe_eval_cache(eval_hit);
        let mut fields = vec![
            ("model".to_string(), Json::Str(entry.name().to_string())),
            ("strategy".to_string(), Json::Str(strategy.name().to_lowercase())),
            ("n_s".to_string(), Json::Num(n_s as f64)),
            ("seed".to_string(), Json::Num(seed as f64)),
            ("graph_version".to_string(), Json::Num(graph_version as f64)),
            ("sample_cache".to_string(), Json::Str(if cache_hit { "hit" } else { "miss" }.into())),
            ("eval_cache".to_string(), Json::Str(if eval_hit { "hit" } else { "miss" }.into())),
            ("num_queries".to_string(), Json::Num(result.ranks.len() as f64)),
            (
                "metrics".to_string(),
                Json::obj([
                    ("mrr", Json::Num(result.metrics.mrr)),
                    ("hits1", Json::Num(result.metrics.hits1)),
                    ("hits3", Json::Num(result.metrics.hits3)),
                    ("hits10", Json::Num(result.metrics.hits10)),
                    ("mean_rank", Json::Num(result.metrics.mean_rank)),
                ]),
            ),
            ("seconds".to_string(), Json::Num(result.seconds)),
        ];
        if include_ranks {
            fields.push(("ranks".to_string(), Json::from_f64s(&result.ranks)));
        }
        Response::json(200, Json::Obj(fields))
    }

    /// `POST /triples`: stream a batch of inserts and/or deletes into the
    /// model's live graph. Ids are validated exactly like `/score` bodies;
    /// the response reports the new graph version and the *effective*
    /// write counts (inserting a known triple or deleting an unknown one
    /// is a no-op and doesn't bump the version).
    fn triples(
        &self,
        registry: &Arc<ModelRegistry>,
        request: &Json,
        entry: &Arc<ModelEntry>,
    ) -> Response {
        if request.get("insert").is_none() && request.get("delete").is_none() {
            return Response::error(400, "provide at least one of 'insert' or 'delete'");
        }
        let parse_side = |field: &str| -> Result<Vec<Triple>, Response> {
            if request.get(field).is_none() {
                return Ok(Vec::new());
            }
            parse_triple_field(request, entry, field, MAX_TRIPLES_PER_REQUEST)
        };
        let insert = match parse_side("insert") {
            Ok(t) => t,
            Err(r) => return r,
        };
        let delete = match parse_side("delete") {
            Ok(t) => t,
            Err(r) => return r,
        };
        let delta = GraphDelta::new(insert, delete);
        let outcome = entry.apply_delta(&delta);
        if outcome.changed() {
            registry.notify_delta(entry.name(), &delta);
        }
        Response::json(
            200,
            Json::obj([
                ("model", Json::Str(entry.name().to_string())),
                ("version", Json::Num(outcome.version as f64)),
                ("inserted", Json::Num(outcome.inserted as f64)),
                ("deleted", Json::Num(outcome.deleted as f64)),
                ("known_triples", Json::Num(outcome.len as f64)),
            ]),
        )
    }

    /// `GET /admin/models`: read-only listing of every registered model —
    /// family, shape, shard count, live-graph version, known-triple count.
    /// Unlike the mutating POST, this needs no token: it exposes nothing a
    /// `/healthz` + `/metrics` scrape doesn't already.
    fn list_models(&self, registry: &Arc<ModelRegistry>) -> Response {
        let models: Vec<Json> = registry
            .names()
            .into_iter()
            .filter_map(|name| registry.get(&name))
            .map(|entry| {
                Json::obj([
                    ("name", Json::Str(entry.name().to_string())),
                    ("family", Json::Str(entry.model().name().to_string())),
                    ("entities", Json::Num(entry.model().num_entities() as f64)),
                    ("relations", Json::Num(entry.model().num_relations() as f64)),
                    ("dim", Json::Num(entry.model().dim() as f64)),
                    ("shards", Json::Num(entry.engine().num_shards() as f64)),
                    ("precision", Json::Str(entry.engine().precision().name().to_string())),
                    ("graph_version", Json::Num(entry.graph_version() as f64)),
                    ("known_triples", Json::Num(entry.live().snapshot().len() as f64)),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                ("kernel_isa", Json::Str(kg_models::kernels::active().name().to_string())),
                ("models", Json::Arr(models)),
            ]),
        )
    }

    /// `GET /monitor`: continuous-evaluation status for every monitored
    /// model (see [`crate::monitor`]).
    fn monitor_status(&self, registry: &Arc<ModelRegistry>) -> Response {
        let uptime = self.metrics.uptime_seconds();
        let monitors: Vec<Json> = registry
            .monitor_statuses()
            .into_iter()
            .map(|s| {
                Json::obj([
                    ("model", Json::Str(s.model)),
                    ("window_len", Json::Num(s.window_len as f64)),
                    ("evals_run", Json::Num(s.evals_run as f64)),
                    ("graph_version", Json::Num(s.graph_version as f64)),
                    (
                        "metrics",
                        Json::obj([
                            ("mrr", Json::Num(s.metrics.mrr)),
                            ("hits1", Json::Num(s.metrics.hits1)),
                            ("hits3", Json::Num(s.metrics.hits3)),
                            ("hits10", Json::Num(s.metrics.hits10)),
                            ("mean_rank", Json::Num(s.metrics.mean_rank)),
                        ]),
                    ),
                    ("baseline_mrr", Json::Num(s.baseline_mrr)),
                    ("drift_alarm", Json::Bool(s.drift_alarm)),
                    (
                        "eval_age_seconds",
                        if s.evals_run == 0 {
                            Json::Null
                        } else {
                            Json::Num((uptime - s.last_eval_uptime).max(0.0))
                        },
                    ),
                ])
            })
            .collect();
        Response::json(200, Json::obj([("monitors", Json::Arr(monitors))]))
    }
}

/// Parse the shared `/topk` request knobs: `k` (default 10) and
/// `filtered` (default true). One parser for the public endpoint and the
/// internal `/shard/topk`, so a gateway's workers reject exactly what a
/// single node rejects.
fn parse_topk_params(request: &Json) -> Result<(usize, bool), Response> {
    let k = match request.get("k").map(|v| v.as_usize()) {
        None => Some(10),
        Some(k @ Some(_)) => k,
        Some(None) => None,
    };
    let Some(k) = k else {
        return Err(Response::error(400, "'k' must be a non-negative integer"));
    };
    let filtered = match request.get("filtered") {
        None => true,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return Err(Response::error(400, "'filtered' must be a boolean")),
        },
    };
    Ok((k, filtered))
}

/// Parse `"triples": [[h, r, t], …]`, validating ids against the model.
fn parse_triples(request: &Json, entry: &ModelEntry, max: usize) -> Result<Vec<Triple>, Response> {
    parse_triple_field(request, entry, "triples", max)
}

/// Parse `"<field>": [[h, r, t], …]`, validating ids against the model —
/// one parser behind `/score`/`/eval`'s `triples` and `/triples`'
/// `insert`/`delete` arrays, so ingest rejects exactly what scoring does.
fn parse_triple_field(
    request: &Json,
    entry: &ModelEntry,
    field: &str,
    max: usize,
) -> Result<Vec<Triple>, Response> {
    let raw = request
        .get(field)
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, format!("missing array field '{field}'")))?;
    if raw.len() > max {
        return Err(Response::error(413, format!("too many triples (max {max})")));
    }
    let ne = entry.model().num_entities() as u64;
    let nr = entry.model().num_relations() as u64;
    let mut out = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let parts = item.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
            Response::error(400, format!("{field}[{i}] must be a [head, relation, tail] array"))
        })?;
        let ids: Vec<u64> = parts.iter().filter_map(Json::as_u64).collect();
        if ids.len() != 3 {
            return Err(Response::error(
                400,
                format!("{field}[{i}] must hold three non-negative integers"),
            ));
        }
        // PANIC-OK: `ids.len() == 3` was checked directly above.
        let (h, r, t) = (ids[0], ids[1], ids[2]);
        if h >= ne || t >= ne {
            return Err(Response::error(
                422,
                format!("{field}[{i}]: entity id out of range (|E| = {ne})"),
            ));
        }
        if r >= nr {
            return Err(Response::error(
                422,
                format!("{field}[{i}]: relation id out of range (|R| = {nr})"),
            ));
        }
        out.push(Triple::new(h as u32, r as u32, t as u32));
    }
    Ok(out)
}

/// Parse `"queries": [{"head": h, "relation": r} | {"relation": r, "tail": t}, …]`.
fn parse_topk_queries(
    request: &Json,
    entry: &ModelEntry,
) -> Result<Vec<(Triple, QuerySide)>, Response> {
    let raw = request
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "missing array field 'queries'"))?;
    if raw.len() > MAX_TOPK_QUERIES {
        return Err(Response::error(413, format!("too many queries (max {MAX_TOPK_QUERIES})")));
    }
    let ne = entry.model().num_entities() as u64;
    let nr = entry.model().num_relations() as u64;
    let mut out = Vec::with_capacity(raw.len());
    for (i, q) in raw.iter().enumerate() {
        let r = q.get("relation").and_then(Json::as_u64).ok_or_else(|| {
            Response::error(400, format!("queries[{i}]: missing integer field 'relation'"))
        })?;
        if r >= nr {
            return Err(Response::error(
                422,
                format!("queries[{i}]: relation id out of range (|R| = {nr})"),
            ));
        }
        let head = q.get("head").map(Json::as_u64);
        let tail = q.get("tail").map(Json::as_u64);
        // Validate the fixed entity's u64 value *before* the u32 cast, so
        // ids in (u32::MAX, 2^53] are rejected rather than truncated.
        let (fixed, side) = match (head, tail) {
            (Some(Some(h)), None) => (h, QuerySide::Tail),
            (None, Some(Some(t))) => (t, QuerySide::Head),
            (Some(None), _) | (_, Some(None)) => {
                return Err(Response::error(
                    400,
                    format!("queries[{i}]: 'head'/'tail' must be non-negative integers"),
                ))
            }
            (Some(_), Some(_)) => {
                return Err(Response::error(
                    400,
                    format!("queries[{i}]: give exactly one of 'head' (tail prediction) or 'tail' (head prediction)"),
                ))
            }
            (None, None) => {
                return Err(Response::error(
                    400,
                    format!("queries[{i}]: give one of 'head' or 'tail'"),
                ))
            }
        };
        if fixed >= ne {
            return Err(Response::error(
                422,
                format!("queries[{i}]: entity id out of range (|E| = {ne})"),
            ));
        }
        let triple = match side {
            QuerySide::Tail => Triple::new(fixed as u32, r as u32, 0),
            QuerySide::Head => Triple::new(0, r as u32, fixed as u32),
        };
        out.push((triple, side));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, FilterIndex};
    use kg_models::{build_model, KgcModel, ModelKind};

    fn router() -> (Router, Arc<ModelRegistry>) {
        let registry = Arc::new(ModelRegistry::new());
        let model = build_model(ModelKind::DistMult, 30, 3, 8, 7);
        let triples: Vec<Triple> =
            (0..15).map(|i| Triple::new(i % 30, i % 3, (i * 2 + 1) % 30)).collect();
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
        (Router::new(Arc::clone(&registry)), registry)
    }

    #[test]
    fn healthz_lists_models() {
        let (router, _) = router();
        let r = router.handle("GET", "/healthz", "");
        assert_eq!(r.status, 200);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("models").and_then(Json::as_array).map(<[Json]>::len), Some(1));
    }

    #[test]
    fn healthz_and_model_list_report_kernel_and_precision() {
        let (router, _) = router();
        let r = router.handle("GET", "/healthz", "");
        let v = Json::parse(&r.body).unwrap();
        let isa = v.get("kernel_isa").and_then(Json::as_str).unwrap().to_string();
        assert!(["scalar", "avx2", "neon"].contains(&isa.as_str()), "unknown isa {isa}");
        let ranges = v.get("shard_ranges").and_then(Json::as_array).unwrap();
        assert_eq!(ranges[0].get("precision").and_then(Json::as_str), Some("f32"));

        let r = router.handle("GET", "/admin/models", "");
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("kernel_isa").and_then(Json::as_str), Some(isa.as_str()));
        let models = v.get("models").and_then(Json::as_array).unwrap();
        assert_eq!(models[0].get("precision").and_then(Json::as_str), Some("f32"));

        let m = router.handle("GET", "/metrics", "");
        assert!(m.body.contains(&format!("kg_serve_kernel_info{{isa=\"{isa}\"}} 1")), "{}", m.body);
        assert!(
            m.body.contains("kg_serve_model_precision_info{model=\"m\",precision=\"f32\"} 1"),
            "{}",
            m.body
        );
    }

    #[test]
    fn admin_reload_with_precision_quantizes() {
        let (router, registry) = router();
        let replacement = build_model(ModelKind::DistMult, 30, 3, 8, 8);
        let dir = std::env::temp_dir().join(format!("kg-serve-prec-{}", std::process::id()));
        let path = dir.join("q.kgev");
        kg_models::io::save_model_to_path(replacement.as_ref(), ModelKind::DistMult, &path)
            .unwrap();
        let body = format!(r#"{{"name":"m","path":"{}","precision":"int8"}}"#, path.display());
        let r = router.handle("POST", "/admin/models", &body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("precision").and_then(Json::as_str), Some("int8"));
        assert_eq!(registry.get("m").unwrap().engine().precision(), kg_models::Precision::Int8);
        let m = router.handle("GET", "/metrics", "");
        assert!(
            m.body.contains("kg_serve_model_precision_info{model=\"m\",precision=\"int8\"} 1"),
            "{}",
            m.body
        );
        // Unknown precision values are rejected, not defaulted.
        let bad = format!(r#"{{"name":"m","path":"{}","precision":"int4"}}"#, path.display());
        assert_eq!(router.handle("POST", "/admin/models", &bad).status, 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn score_roundtrip_matches_direct_calls() {
        let (router, registry) = router();
        let r = router.handle("POST", "/score", r#"{"model":"m","triples":[[0,1,2],[5,2,7]]}"#);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        let scores = v.get("scores").and_then(Json::as_array).unwrap();
        let model = registry.get("m").unwrap();
        let expect0 = model.model().score(EntityId(0), kg_core::RelationId(1), EntityId(2));
        assert_eq!(scores[0].as_f64().unwrap() as f32, expect0);
        assert_eq!(v.get("count").and_then(Json::as_usize), Some(2));
    }

    #[test]
    fn score_validates_ids_and_shape() {
        let (router, _) = router();
        for (body, status) in [
            (r#"{"model":"m"}"#, 400),
            (r#"{"model":"m","triples":[[0,1]]}"#, 400),
            (r#"{"model":"m","triples":[[0,1,99]]}"#, 422),
            (r#"{"model":"m","triples":[[0,9,1]]}"#, 422),
            (r#"{"model":"nope","triples":[[0,1,2]]}"#, 404),
            ("not json", 400),
        ] {
            let r = router.handle("POST", "/score", body);
            assert_eq!(r.status, status, "body {body} → {}", r.body);
        }
    }

    #[test]
    fn topk_returns_sorted_filtered_results() {
        let (router, registry) = router();
        let body =
            r#"{"model":"m","queries":[{"head":0,"relation":1},{"relation":1,"tail":3}],"k":5}"#;
        let r = router.handle("POST", "/topk", body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let model = registry.get("m").unwrap();
        for (qi, (triple, side)) in
            [(Triple::new(0, 1, 0), QuerySide::Tail), (Triple::new(0, 1, 3), QuerySide::Head)]
                .iter()
                .enumerate()
        {
            let entities = results[qi].get("entities").and_then(Json::as_array).unwrap();
            let scores = results[qi].get("scores").and_then(Json::as_array).unwrap();
            assert_eq!(entities.len(), 5);
            // Scores descend.
            let s: Vec<f64> = scores.iter().filter_map(Json::as_f64).collect();
            assert!(s.windows(2).all(|w| w[0] >= w[1]), "unsorted: {s:?}");
            // Each reported score matches a direct model call.
            let mut all = vec![0.0f32; model.model().num_entities()];
            model.model().score_all(*triple, *side, &mut all);
            for (e, sc) in entities.iter().zip(&s) {
                let id = e.as_usize().unwrap();
                assert_eq!(all[id] as f64, *sc);
            }
            // Filtered: known answers excluded.
            let snapshot = model.live().snapshot();
            let known = snapshot.known_answers(*triple, *side);
            for e in entities {
                let id = EntityId(e.as_usize().unwrap() as u32);
                assert!(known.binary_search(&id).is_err(), "known answer {id:?} not removed");
            }
        }
    }

    #[test]
    fn topk_unfiltered_keeps_known_answers() {
        let (router, _) = router();
        let body = r#"{"model":"m","queries":[{"head":0,"relation":0}],"k":30,"filtered":false}"#;
        let r = router.handle("POST", "/topk", body);
        let v = Json::parse(&r.body).unwrap();
        let entities =
            v.get("results").and_then(Json::as_array).unwrap()[0].get("entities").unwrap();
        assert_eq!(entities.as_array().unwrap().len(), 30, "every entity returned");
    }

    #[test]
    fn topk_validates_queries() {
        let (router, _) = router();
        for body in [
            r#"{"model":"m","queries":[{"relation":1}]}"#,
            r#"{"model":"m","queries":[{"head":1,"tail":2,"relation":1}]}"#,
            r#"{"model":"m","queries":[{"head":1}]}"#,
            r#"{"model":"m","queries":[{"head":99,"relation":1}]}"#,
            r#"{"model":"m"}"#,
        ] {
            let r = router.handle("POST", "/topk", body);
            assert!(r.status >= 400, "{body} accepted: {}", r.body);
        }
    }

    #[test]
    fn topk_rejects_ids_beyond_u32_instead_of_truncating() {
        let (router, _) = router();
        // 2^32 would truncate to entity 0 if cast before validation.
        let r = router.handle(
            "POST",
            "/topk",
            r#"{"model":"m","queries":[{"head":4294967296,"relation":1}]}"#,
        );
        assert_eq!(r.status, 422, "{}", r.body);
        let r = router.handle(
            "POST",
            "/topk",
            r#"{"model":"m","queries":[{"relation":1,"tail":4294967296}]}"#,
        );
        assert_eq!(r.status, 422, "{}", r.body);
    }

    #[test]
    fn unknown_paths_share_one_metrics_label() {
        let (router, _) = router();
        router.handle("GET", "/scan-1", "");
        router.handle("GET", "/scan-2", "");
        let m = router.handle("GET", "/metrics", "");
        assert!(m.body.contains("kg_serve_requests_total{endpoint=\"other\"} 2"), "{}", m.body);
        assert!(!m.body.contains("/scan-1"), "per-path labels would be unbounded: {}", m.body);
    }

    #[test]
    fn eval_matches_library_bit_for_bit() {
        let (router, registry) = router();
        let body = r#"{"model":"m","triples":[[0,1,2],[5,2,7],[9,0,4]],"n_s":8,"seed":42,"include_ranks":true}"#;
        let r = router.handle("POST", "/eval", body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();

        let entry = registry.get("m").unwrap();
        let triples = [Triple::new(0, 1, 2), Triple::new(5, 2, 7), Triple::new(9, 0, 4)];
        let samples = kg_recommend::sample_candidates(
            SamplingStrategy::Random,
            entry.model().num_entities(),
            entry.model().num_relations(),
            8,
            None,
            None,
            &mut kg_core::sample::seeded_rng(42),
        );
        let snapshot = entry.live().snapshot();
        let direct = evaluate_sampled(
            entry.model().as_ref(),
            &triples,
            snapshot.as_ref(),
            &samples,
            TieBreak::Mean,
            entry.threads(),
        );
        let mrr = v.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
        assert_eq!(mrr.to_bits(), direct.metrics.mrr.to_bits(), "MRR must agree bit-for-bit");
        let ranks: Vec<f64> = v
            .get("ranks")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        assert_eq!(ranks, direct.ranks);
        assert_eq!(v.get("num_queries").and_then(Json::as_usize), Some(6));
    }

    #[test]
    fn eval_reports_cache_hits() {
        let (router, _) = router();
        let body = r#"{"model":"m","triples":[[0,1,2]],"n_s":5,"seed":1}"#;
        let first = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(first.get("sample_cache").and_then(Json::as_str), Some("miss"));
        let second = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(second.get("sample_cache").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn eval_sample_cache_survives_requests_but_not_hot_reloads() {
        // The /eval sample cache lives on the registry entry: requests
        // accumulate hits, a hot-reload flips the entry and starts cold —
        // but seeded sampling makes the reported metrics bit-identical
        // before and after (weights unchanged: we reload the same file).
        let (router, registry) = router();
        let model = registry.get("m").unwrap();
        let dir = std::env::temp_dir().join(format!("kg-serve-eval-cache-{}", std::process::id()));
        let path = dir.join("same.kgev");
        // Persist the *currently served* weights (same build args + seed
        // as the fixture) so the reload only exercises the cache
        // lifecycle, not a model change.
        let twin = build_model(ModelKind::DistMult, 30, 3, 8, 7);
        kg_models::io::save_model_to_path(twin.as_ref(), ModelKind::DistMult, &path).unwrap();
        assert_eq!(
            twin.score(EntityId(1), kg_core::RelationId(0), EntityId(2)),
            model.model().score(EntityId(1), kg_core::RelationId(0), EntityId(2)),
            "twin snapshot must carry the served weights"
        );

        let body = r#"{"model":"m","triples":[[0,1,2],[4,2,9]],"n_s":6,"seed":3}"#;
        let first = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(first.get("sample_cache").and_then(Json::as_str), Some("miss"));
        let second = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(second.get("sample_cache").and_then(Json::as_str), Some("hit"));

        let reload = format!(r#"{{"name":"m","path":"{}"}}"#, path.display());
        assert_eq!(router.handle("POST", "/admin/models", &reload).status, 200);
        let third = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(
            third.get("sample_cache").and_then(Json::as_str),
            Some("miss"),
            "the reloaded entry starts with a cold sample cache"
        );
        let fourth = Json::parse(&router.handle("POST", "/eval", body).body).unwrap();
        assert_eq!(fourth.get("sample_cache").and_then(Json::as_str), Some("hit"));
        // Identical weights + seeded samples → identical metrics through
        // the whole lifecycle.
        let mrr = |v: &Json| v.get("metrics").unwrap().get("mrr").and_then(Json::as_f64).unwrap();
        assert_eq!(mrr(&first).to_bits(), mrr(&third).to_bits());
        assert_eq!(mrr(&second).to_bits(), mrr(&fourth).to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_rejects_unsupported_strategy() {
        let (router, _) = router();
        let body = r#"{"model":"m","triples":[[0,1,2]],"strategy":"static"}"#;
        let r = router.handle("POST", "/eval", body);
        assert_eq!(r.status, 400, "{}", r.body);
        let r = router.handle(
            "POST",
            "/eval",
            r#"{"model":"m","triples":[[0,1,2]],"strategy":"nope"}"#,
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn unknown_routes_and_metrics() {
        let (router, _) = router();
        assert_eq!(router.handle("GET", "/nope", "").status, 404);
        assert_eq!(router.handle("DELETE", "/score", "").status, 405);
        router.handle("POST", "/score", r#"{"model":"m","triples":[[0,0,0]]}"#);
        let m = router.handle("GET", "/metrics", "");
        assert_eq!(m.status, 200);
        // Two hits on /score: the rejected DELETE and the successful POST.
        assert!(m.body.contains("kg_serve_requests_total{endpoint=\"/score\"} 2"), "{}", m.body);
        assert!(
            m.body.contains("kg_serve_request_errors_total{endpoint=\"/score\"} 1"),
            "{}",
            m.body
        );
        assert!(m.body.contains("kg_serve_latency_seconds"));
    }

    #[test]
    fn topk_responses_identical_for_every_shard_count() {
        // The same registry contents served under different shard configs
        // must produce byte-identical /topk responses.
        let model_for = || {
            let m = build_model(ModelKind::RotatE, 30, 3, 8, 7);
            Arc::from(m as Box<dyn KgcModel>) as Arc<dyn KgcModel>
        };
        let triples: Vec<Triple> =
            (0..15).map(|i| Triple::new(i % 30, i % 3, (i * 2 + 1) % 30)).collect();
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        let body = r#"{"model":"m","queries":[{"head":0,"relation":1},{"relation":2,"tail":3},{"head":7,"relation":0}],"k":9}"#;
        let single = r#"{"model":"m","queries":[{"head":4,"relation":1}],"k":30}"#;
        let serve_with = |shards: usize| {
            let registry = Arc::new(ModelRegistry::with_config(crate::registry::RegistryConfig {
                shards,
                ..crate::registry::RegistryConfig::default()
            }));
            registry.register("m", model_for(), Arc::clone(&filter));
            let router = Router::new(registry);
            (router.handle("POST", "/topk", body).body, router.handle("POST", "/topk", single).body)
        };
        let (base_multi, base_single) = serve_with(1);
        for shards in [2usize, 7, 30] {
            let (multi, single_r) = serve_with(shards);
            // The shard count is reported, so compare the results payload.
            let strip = |b: &str| {
                let v = Json::parse(b).unwrap();
                v.get("results").unwrap().to_string()
            };
            assert_eq!(strip(&multi), strip(&base_multi), "S={shards} multi-query diverged");
            assert_eq!(strip(&single_r), strip(&base_single), "S={shards} fan-out diverged");
        }
    }

    #[test]
    fn shard_topk_over_the_full_range_matches_public_topk() {
        // A worker with no shard role serves the full range: its partials
        // decode to exactly the public /topk results.
        let (router, _) = router();
        let body =
            r#"{"model":"m","queries":[{"head":0,"relation":1},{"relation":2,"tail":3}],"k":6}"#;
        let public = Json::parse(&router.handle("POST", "/topk", body).body).unwrap();
        let r = router.handle("POST", "/shard/topk", body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("k"), public.get("k"));
        assert_eq!(v.get("filtered"), public.get("filtered"));
        assert_eq!(v.get("shards"), public.get("shards"));
        assert_eq!(v.get("entities").and_then(Json::as_usize), Some(30));
        let range = v.get("range").and_then(Json::as_array).unwrap();
        assert_eq!(
            (range[0].as_usize(), range[1].as_usize()),
            (Some(0), Some(30)),
            "no worker role → the full range"
        );
        let partials = v.get("partials").and_then(Json::as_array).unwrap();
        let results = public.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(partials.len(), results.len());
        for (wire, want) in partials.iter().zip(results) {
            let decoded = kg_core::partial::PartialTopK::decode(wire.as_str().unwrap()).unwrap();
            let entities: Vec<f64> = decoded.entries().iter().map(|&(e, _)| e as f64).collect();
            let want_entities: Vec<f64> = want
                .get("entities")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_f64)
                .collect();
            assert_eq!(entities, want_entities, "full-range partial == public top-k");
        }
    }

    #[test]
    fn shard_workers_tile_the_entity_space_and_merge_to_the_full_result() {
        use kg_core::partial::{Partial, PartialRankCounts, PartialTopK};
        // Two worker registries over the same weights, shard 0/2 and 1/2:
        // merged /shard/topk partials equal the single-node /topk, and
        // summed /shard/rank partials equal the full filtered ranks.
        let model_for = || {
            let m = build_model(ModelKind::RotatE, 30, 3, 8, 7);
            Arc::from(m as Box<dyn KgcModel>) as Arc<dyn KgcModel>
        };
        let triples: Vec<Triple> =
            (0..15).map(|i| Triple::new(i % 30, i % 3, (i * 2 + 1) % 30)).collect();
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        let worker = |index: usize| {
            let registry = Arc::new(ModelRegistry::with_config(crate::registry::RegistryConfig {
                worker_shard: Some(crate::registry::WorkerShard { index, of: 2 }),
                ..crate::registry::RegistryConfig::default()
            }));
            registry.register("m", model_for(), Arc::clone(&filter));
            Router::new(registry)
        };
        let (w0, w1) = (worker(0), worker(1));
        let single = {
            let registry = Arc::new(ModelRegistry::new());
            registry.register("m", model_for(), Arc::clone(&filter));
            Router::new(registry)
        };

        // /shard/topk: per-worker partials merge to the public result.
        let topk_body =
            r#"{"model":"m","queries":[{"head":2,"relation":1},{"relation":0,"tail":9}],"k":8}"#;
        let full = Json::parse(&single.handle("POST", "/topk", topk_body).body).unwrap();
        let p0 = Json::parse(&w0.handle("POST", "/shard/topk", topk_body).body).unwrap();
        let p1 = Json::parse(&w1.handle("POST", "/shard/topk", topk_body).body).unwrap();
        // The two ranges tile 0..30.
        let range_of = |v: &Json| {
            let r = v.get("range").and_then(Json::as_array).unwrap();
            (r[0].as_usize().unwrap(), r[1].as_usize().unwrap())
        };
        assert_eq!(range_of(&p0), (0, 15));
        assert_eq!(range_of(&p1), (15, 30));
        let partials = |v: &Json| -> Vec<PartialTopK> {
            v.get("partials")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|w| PartialTopK::decode(w.as_str().unwrap()).unwrap())
                .collect()
        };
        let results = full.get("results").and_then(Json::as_array).unwrap();
        for ((mut a, b), want) in partials(&p0).into_iter().zip(partials(&p1)).zip(results) {
            a.merge(b);
            let got: Vec<f64> = a.into_entries().iter().map(|&(e, _)| e as f64).collect();
            let want: Vec<f64> = want
                .get("entities")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_f64)
                .collect();
            assert_eq!(got, want, "merged shard partials == single-node top-k");
        }

        // /shard/rank: summed counters reproduce the full filtered ranks.
        let rank_body = r#"{"model":"m","triples":[[2,1,5],[9,0,4],[0,2,7]]}"#;
        let r0 = Json::parse(&w0.handle("POST", "/shard/rank", rank_body).body).unwrap();
        let r1 = Json::parse(&w1.handle("POST", "/shard/rank", rank_body).body).unwrap();
        let counts = |v: &Json| -> Vec<PartialRankCounts> {
            v.get("partials")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|w| PartialRankCounts::decode(w.as_str().unwrap()).unwrap())
                .collect()
        };
        let model = model_for();
        let want = kg_eval::evaluate_full(
            model.as_ref(),
            &[Triple::new(2, 1, 5), Triple::new(9, 0, 4), Triple::new(0, 2, 7)],
            filter.as_ref(),
            TieBreak::Mean,
            1,
        );
        let merged: Vec<f64> = counts(&r0)
            .into_iter()
            .zip(counts(&r1))
            .map(|(mut a, b)| {
                a.merge(b);
                TieBreak::Mean.rank(a.higher as usize, a.ties as usize)
            })
            .collect();
        assert_eq!(merged, want.ranks, "summed shard counters == full filtered ranks");
    }

    #[test]
    fn shard_endpoints_validate_like_their_public_counterparts() {
        let (router, _) = router();
        // Same rejections as /topk.
        for body in [
            r#"{"model":"m","queries":[{"relation":1}]}"#,
            r#"{"model":"m","queries":[{"head":99,"relation":1}]}"#,
            r#"{"model":"m","queries":[{"head":1,"relation":1}],"k":"many"}"#,
            r#"{"model":"nope","queries":[{"head":1,"relation":1}]}"#,
        ] {
            let public = router.handle("POST", "/topk", body);
            let shard = router.handle("POST", "/shard/topk", body);
            assert!(shard.status >= 400, "{body} accepted: {}", shard.body);
            assert_eq!(shard.status, public.status, "{body}: statuses diverge");
            assert_eq!(shard.body, public.body, "{body}: error bodies diverge");
        }
        // /shard/rank validates triples like /score and /eval do.
        for (body, status) in [
            (r#"{"model":"m"}"#, 400),
            (r#"{"model":"m","triples":[[0,1,99]]}"#, 422),
            (r#"{"model":"m","triples":[[0,1,2]],"filtered":"yes"}"#, 400),
        ] {
            let r = router.handle("POST", "/shard/rank", body);
            assert_eq!(r.status, status, "{body} → {}", r.body);
        }
    }

    #[test]
    fn admin_reload_flips_model_and_keeps_old_arc_alive() {
        let (router, registry) = router();
        let old_entry = registry.get("m").unwrap();
        // Train-free stand-in: persist a *different* model and hot-load it.
        let replacement = build_model(ModelKind::ComplEx, 30, 3, 8, 99);
        let dir = std::env::temp_dir().join(format!("kg-serve-admin-{}", std::process::id()));
        let path = dir.join("replacement.kgev");
        kg_models::io::save_model_to_path(replacement.as_ref(), ModelKind::ComplEx, &path).unwrap();
        let body = format!(r#"{{"name":"m","path":"{}"}}"#, path.display());
        let r = router.handle("POST", "/admin/models", &body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("replaced"));
        assert_eq!(v.get("entities").and_then(Json::as_usize), Some(30));
        // The registry now serves the replacement …
        let new_entry = registry.get("m").unwrap();
        assert_eq!(new_entry.model().name(), "ComplEx");
        assert_eq!(
            new_entry.model().score(EntityId(1), kg_core::RelationId(0), EntityId(2)),
            replacement.score(EntityId(1), kg_core::RelationId(0), EntityId(2))
        );
        // … the old live graph was inherited (same allocation, version and
        // deltas included), and the old Arc still works for requests in
        // flight across the flip.
        assert!(
            Arc::ptr_eq(old_entry.live(), new_entry.live()),
            "reload must donate the existing live graph"
        );
        assert!(old_entry
            .model()
            .score(EntityId(0), kg_core::RelationId(1), EntityId(2))
            .is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admin_reload_rejects_shape_changes_and_enforces_token() {
        // Shape change: the donated filter/artifacts would be wrong.
        let (router, _) = router();
        let wrong_shape = build_model(ModelKind::DistMult, 12, 2, 8, 5);
        let dir = std::env::temp_dir().join(format!("kg-serve-admin-shape-{}", std::process::id()));
        let path = dir.join("wrong.kgev");
        kg_models::io::save_model_to_path(wrong_shape.as_ref(), ModelKind::DistMult, &path)
            .unwrap();
        let body = format!(r#"{{"name":"m","path":"{}"}}"#, path.display());
        let r = router.handle("POST", "/admin/models", &body);
        assert_eq!(r.status, 422, "{}", r.body);
        assert!(r.body.contains("shape"), "names the mismatch: {}", r.body);

        // Token-gated registry: reloads need the shared secret.
        let registry = Arc::new(ModelRegistry::with_config(crate::registry::RegistryConfig {
            admin_token: Some("sesame".into()),
            ..crate::registry::RegistryConfig::default()
        }));
        let gated = Router::new(registry);
        let ok_model = build_model(ModelKind::DistMult, 12, 2, 8, 5);
        let ok_path = dir.join("fresh.kgev");
        kg_models::io::save_model_to_path(ok_model.as_ref(), ModelKind::DistMult, &ok_path)
            .unwrap();
        let no_token = format!(r#"{{"name":"n","path":"{}"}}"#, ok_path.display());
        assert_eq!(gated.handle("POST", "/admin/models", &no_token).status, 403);
        let bad_token = format!(r#"{{"name":"n","path":"{}","token":"guess"}}"#, ok_path.display());
        assert_eq!(gated.handle("POST", "/admin/models", &bad_token).status, 403);
        let with_token =
            format!(r#"{{"name":"n","path":"{}","token":"sesame"}}"#, ok_path.display());
        let r = gated.handle("POST", "/admin/models", &with_token);
        assert_eq!(r.status, 200, "{}", r.body);
        // I/O failures are collapsed so the endpoint cannot probe paths.
        let probe = r#"{"name":"n","path":"/etc/shadow-nope","token":"sesame"}"#;
        let r = gated.handle("POST", "/admin/models", probe);
        assert_eq!(r.status, 422);
        assert!(
            r.body.contains("unreadable or malformed") && !r.body.contains("shadow"),
            "no path/IO detail leaks: {}",
            r.body
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admin_reload_validates_input() {
        let (router, _) = router();
        for (body, status) in [
            (r#"{"path":"/nope"}"#, 400),
            (r#"{"name":"m"}"#, 400),
            ("not json", 400),
            (r#"{"name":"m","path":"/nonexistent/model.kgev"}"#, 422),
        ] {
            let r = router.handle("POST", "/admin/models", body);
            assert_eq!(r.status, status, "body {body} → {}", r.body);
        }
        // A brand-new name loads with an empty filter.
        let model = build_model(ModelKind::DistMult, 12, 2, 8, 3);
        let dir = std::env::temp_dir().join(format!("kg-serve-admin-new-{}", std::process::id()));
        let path = dir.join("fresh.kgev");
        kg_models::io::save_model_to_path(model.as_ref(), ModelKind::DistMult, &path).unwrap();
        let body = format!(r#"{{"name":"fresh","path":"{}"}}"#, path.display());
        let r = router.handle("POST", "/admin/models", &body);
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("loaded"));
        let Mode::Local(registry) = &router.mode else { panic!("local router") };
        let entry = registry.get("fresh").unwrap();
        assert!(entry.live().snapshot().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
