//! Minimal JSON encoder/decoder, std-only like the rest of the workspace.
//!
//! Covers the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) with two deliberate simplifications suited to a
//! scoring service: numbers are always `f64` (integers round-trip exactly
//! up to 2^53, far beyond any entity id), and object keys keep insertion
//! order in a `Vec` — requests have a handful of keys, so linear lookup
//! beats hashing.
//!
//! Float formatting uses Rust's shortest-roundtrip `Display`, so a value
//! serialised here and parsed back is **bit-identical** — the property the
//! `/eval` endpoint relies on to agree with library-level evaluation.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Json {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // PARITY: error text only — never part of a scored response body.
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // PARITY: the guard admits only non-negative integers with
            // zero fraction below 2^53 — every such value converts exactly.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        // PARITY: exact — `as_u64` bounds v below 2^53 and every supported
        // target has 64-bit `usize`.
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an array of `f64` built from a slice.
    pub fn from_f64s(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Convenience: an array of `f32` (widened losslessly to `f64`).
    pub fn from_f32s(values: &[f32]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            // PARITY: bool Display is `true`/`false` — exact.
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // PARITY: the one deliberate float-Display site. Rust
                    // emits the shortest decimal that reparses to the same
                    // f64 bits, so encode→parse round-trips bit-exactly;
                    // asserted by json tests and the gateway parity suite.
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    // PARITY: recursive Display — every leaf is audited
                    // here (Num above is the only float case).
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    // PARITY: recursive Display — every leaf is audited
                    // here (Num above is the only float case).
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            // PARITY: char→u32 is a widening, exact conversion; `{:04x}`
            // and char Display are both exact.
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            // PARITY: char Display is the character itself — exact.
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            // PARITY: error text only; u8→char on a byte we matched.
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        // PANIC-OK: `pos <= bytes.len()` is the parser invariant (pos only
        // advances past peeked bytes), so the range slice is in bounds.
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            // PARITY: error text only.
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // PANIC-OK: `pos <= bytes.len()` parser
                                // invariant keeps the range slice in bounds.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-consume up to the next quote or backslash. Both
                    // are ASCII, so splitting there cannot cut a multi-byte
                    // sequence; the input arrived as &str, so the chunk is
                    // valid UTF-8 by construction.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    // PANIC-OK: `start <= pos <= bytes.len()` — both were
                    // cursor positions.
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        // PANIC-OK: the length check above guarantees `pos + 4 <= len`.
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // PANIC-OK: `start..pos` spans only ASCII sign/digit/dot/exponent
        // bytes just scanned, so the slice is in bounds and valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            // PARITY: error text only.
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line\n\"quote\"\\tab\t\u{1F600}\u{0007}".into());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate rejected");
    }

    #[test]
    fn f64_roundtrips_bit_for_bit() {
        let cases =
            [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 123_456_789.123_456_79, -0.0, 2f64.powi(60)];
        for &v in &cases {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} reparsed as {back}");
        }
    }

    #[test]
    fn f32_widening_roundtrips() {
        for &v in &[0.1f32, -3.75, f32::MAX, f32::MIN_POSITIVE] {
            let text = Json::Num(v as f64).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn long_strings_parse_in_bulk() {
        // The unescaped fast path must hold for large strings (the parser
        // previously re-validated the whole tail per character, O(n²)).
        let payload = "x".repeat(2_000_000) + "é\\n" + &"y".repeat(1_000_000);
        let doc = format!("{{\"s\":\"{payload}\"}}");
        let start = std::time::Instant::now();
        let v = Json::parse(&doc).unwrap();
        assert!(start.elapsed().as_secs_f64() < 2.0, "long-string parse too slow");
        let s = v.get("s").and_then(Json::as_str).unwrap();
        assert_eq!(s.len(), 2_000_000 + "é".len() + 1 + 1_000_000);
        assert!(s.contains("é\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "{\"a\":}", "[1 2]", "\"\\x\""] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn integer_accessors_validate() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn builders_compose() {
        let v = Json::obj([("scores", Json::from_f32s(&[1.0, -2.5])), ("ok", Json::Bool(true))]);
        assert_eq!(v.to_string(), r#"{"scores":[1,-2.5],"ok":true}"#);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \t\n{ \"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }
}
