//! The trained-model registry: named serving entries bundling a sharded
//! [`ScoringEngine`] (the single scoring entry point), the filter index for
//! known-true removal, optional recommender artifacts for
//! Static/Probabilistic sampling, a per-model score batcher, and an LRU
//! cache of per-relation candidate samples so repeated `/eval` calls with
//! the same `(strategy, n_s, seed)` skip the sampling pass.
//!
//! Entries swap atomically: `register` (and the `/admin/models` hot-reload
//! path, [`ModelRegistry::reload_snapshot`]) replaces the `Arc<ModelEntry>`
//! under a write lock, while in-flight requests keep scoring against the
//! `Arc` they already cloned.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use kg_core::ids::{EntityId, RelationId};
use kg_core::sample::seeded_rng;
use kg_core::{ApplyOutcome, DeltaKeys, FilterIndex, GraphDelta, LiveGraph, Triple};
use kg_eval::{EvalResult, TieBreak};
use kg_models::{KgcModel, Precision, QuantizedModel, ScoringEngine};
use kg_recommend::{
    sample_candidates, CandidateSets, SampledCandidates, SamplingStrategy, ScoreMatrix,
};

use crate::batch::{ScoreBatcher, TopKBatcher};
use crate::http_metrics::HttpMetrics;
use crate::monitor::{Monitor, MonitorConfig, MonitorStatus};

/// A bounded map with least-recently-used eviction.
///
/// Small and boring on purpose: capacity is tens of entries (one per
/// distinct sampling configuration), so the O(len) recency bookkeeping is
/// noise next to the sampling pass it saves.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, V>,
    order: Vec<K>, // front = least recent, back = most recent
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache { capacity, map: HashMap::with_capacity(capacity), order: Vec::new() }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most recently used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.touch(key);
            self.map.get(key)
        } else {
            None
        }
    }

    /// Insert `key → value`, evicting the least recently used entry when
    /// over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push(key);
        if self.map.len() > self.capacity {
            let evicted = self.order.remove(0);
            self.map.remove(&evicted);
        }
    }

    fn touch(&mut self, key: &K) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Keep only entries for which `f` returns true, preserving recency
    /// order. `f` may mutate the kept values (the version-bump walk the
    /// delta invalidation paths use).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        let map = &mut self.map;
        self.order.retain(|k| {
            let keep = map.get_mut(k).is_some_and(|v| f(k, v));
            if !keep {
                map.remove(k);
            }
            keep
        });
    }
}

/// Cache key for one sampling configuration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SampleKey {
    /// Sampling strategy.
    pub strategy: SamplingStrategy,
    /// Per-column sample size.
    pub n_s: usize,
    /// RNG seed the sample was drawn with.
    pub seed: u64,
}

/// How many distinct sampling configurations to keep per model.
pub const SAMPLE_CACHE_CAPACITY: usize = 32;

/// How many `/eval` results to keep per model.
pub const EVAL_CACHE_CAPACITY: usize = 16;

/// Cache key for one `/eval` computation: every request knob plus a
/// 128-bit fingerprint of the triple list (two independently-seeded 64-bit
/// folds — the list itself can be a million entries, far too large to key
/// on directly). The *graph version* is deliberately not part of the key:
/// validity is tracked on the cached value so a delta can re-stamp
/// untouched entries instead of orphaning them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EvalKey {
    /// Sampling strategy.
    pub strategy: SamplingStrategy,
    /// Per-column sample size.
    pub n_s: usize,
    /// RNG seed for the candidate draw.
    pub seed: u64,
    /// Tie-breaking rule.
    pub tie: TieBreak,
    /// Two-seed fingerprint of the evaluated triples, order-sensitive.
    pub fingerprint: (u64, u64),
}

impl EvalKey {
    /// Key for evaluating `triples` under the given knobs.
    pub fn new(
        strategy: SamplingStrategy,
        n_s: usize,
        seed: u64,
        tie: TieBreak,
        triples: &[Triple],
    ) -> Self {
        EvalKey {
            strategy,
            n_s,
            seed,
            tie,
            fingerprint: (fingerprint(triples, 0x51_7c_c1_b7), fingerprint(triples, 0x9e_37_79_b9)),
        }
    }
}

/// Order-sensitive 64-bit fold of a triple list (splitmix-style mixing).
fn fingerprint(triples: &[Triple], seed: u64) -> u64 {
    let mut h = seed ^ (triples.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for t in triples {
        for v in [t.head.0 as u64, t.relation.0 as u64, t.tail.0 as u64] {
            h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
        }
    }
    h
}

/// A cached `/eval` result plus what it depends on: the graph version it
/// was computed against and the sorted filter keys its queries read
/// (tail-query and head-query keys of every evaluated triple) — the
/// intersection test a delta's [`DeltaKeys`] runs to decide touched vs.
/// survivor.
struct CachedEval {
    result: EvalResult,
    version: u64,
    hr: Vec<(EntityId, RelationId)>,
    rt: Vec<(RelationId, EntityId)>,
}

/// The slice of the entity space a worker node owns in a multi-node
/// deployment: this node is shard `index` of `of` total workers.
///
/// The actual entity range is derived per model as
/// `ShardPlan::new(num_entities, of).range(index)` — the same deterministic
/// partition every consumer of [`kg_core::parallel::ShardPlan`] agrees on,
/// so a gateway that knows only `(|E|, of)` knows every worker's
/// boundaries without negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerShard {
    /// This worker's shard index (`0..of`).
    pub index: usize,
    /// Total workers the entity space is partitioned across.
    pub of: usize,
}

impl WorkerShard {
    /// The entity range this worker serves for a model with
    /// `num_entities` entities.
    pub fn range(&self, num_entities: usize) -> std::ops::Range<usize> {
        let plan = kg_core::parallel::ShardPlan::new(num_entities, self.of);
        if self.index < plan.num_shards() {
            plan.range(self.index)
        } else {
            // More workers than entities: the surplus workers own nothing.
            num_entities..num_entities
        }
    }
}

/// One servable model and everything needed to answer queries about it.
pub struct ModelEntry {
    name: String,
    engine: Arc<ScoringEngine>,
    live: Arc<LiveGraph>,
    matrix: Option<Arc<ScoreMatrix>>,
    sets: Option<Arc<CandidateSets>>,
    batcher: ScoreBatcher,
    topk_batcher: TopKBatcher,
    samples: Mutex<LruCache<SampleKey, Arc<SampledCandidates>>>,
    evals: Mutex<LruCache<EvalKey, CachedEval>>,
    threads: usize,
    worker_shard: Option<WorkerShard>,
    metrics: Arc<HttpMetrics>,
}

impl ModelEntry {
    /// The entry's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sharded scoring engine (ranking, top-k, point scores).
    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    /// The scoring model behind the engine.
    pub fn model(&self) -> &Arc<dyn KgcModel> {
        self.engine.model()
    }

    /// The live known-triple graph used for filtered ranking: snapshot it
    /// ([`LiveGraph::snapshot`]) for a consistent read, apply deltas
    /// through [`ModelEntry::apply_delta`] so dependent caches are
    /// invalidated in the same step.
    pub fn live(&self) -> &Arc<LiveGraph> {
        &self.live
    }

    /// The current graph version (0 until the first effective delta).
    pub fn graph_version(&self) -> u64 {
        self.live.version()
    }

    /// Apply a batch of triple inserts/deletes to the live graph and
    /// invalidate exactly the cached results the delta touched: `/topk`
    /// entries whose `(context, relation)` key gained or lost a known
    /// answer, and `/eval` results whose query keys intersect the delta.
    /// Untouched entries are re-stamped to the new version and keep
    /// hitting. The sample cache is *not* touched — candidate draws depend
    /// only on `(|E|, |R|, strategy, n_s, seed)`, never on the graph.
    pub fn apply_delta(&self, delta: &GraphDelta) -> ApplyOutcome {
        let outcome = self.live.apply(delta);
        if outcome.changed() {
            self.topk_batcher.invalidate(&outcome.keys, outcome.version);
            self.invalidate_evals(&outcome.keys, outcome.version);
            self.metrics.set_graph_version(&self.name, outcome.version);
            self.metrics.observe_ingest(outcome.inserted, outcome.deleted);
        }
        outcome
    }

    /// The cached `/eval` result for `key`, if one exists that is valid at
    /// graph version `version`. A version-stale entry is a **miss** (never
    /// served, left for the LRU to age out).
    pub fn cached_eval(&self, key: &EvalKey, version: u64) -> Option<EvalResult> {
        let mut cache = self.evals.lock().unwrap();
        match cache.get(key) {
            Some(c) if c.version == version => Some(c.result.clone()),
            _ => None,
        }
    }

    /// Memoise an `/eval` result computed against graph version `version`
    /// over `triples`. Refused when the live graph has already moved past
    /// `version` (versions are monotonic, so equality proves no delta
    /// landed since the computation began).
    pub fn store_eval(&self, key: EvalKey, result: &EvalResult, triples: &[Triple], version: u64) {
        let mut cache = self.evals.lock().unwrap();
        if self.live.version() != version {
            return;
        }
        let mut hr: Vec<(EntityId, RelationId)> = triples.iter().map(|t| t.hr()).collect();
        let mut rt: Vec<(RelationId, EntityId)> = triples.iter().map(|t| t.rt()).collect();
        hr.sort_unstable();
        hr.dedup();
        rt.sort_unstable();
        rt.dedup();
        cache.insert(key, CachedEval { result: result.clone(), version, hr, rt });
    }

    /// Cached `/eval` results currently held (tests and `/healthz`).
    pub fn cached_evals(&self) -> usize {
        self.evals.lock().unwrap().len()
    }

    fn invalidate_evals(&self, keys: &DeltaKeys, new_version: u64) {
        let mut cache = self.evals.lock().unwrap();
        cache.retain(|_, c| {
            let touched = keys.hr_keys().iter().any(|k| c.hr.binary_search(k).is_ok())
                || keys.rt_keys().iter().any(|k| c.rt.binary_search(k).is_ok());
            if touched {
                return false;
            }
            c.version = new_version;
            true
        });
    }

    /// The coalescing batcher for `/score` traffic.
    pub fn batcher(&self) -> &ScoreBatcher {
        &self.batcher
    }

    /// The coalescing batcher for `/topk` traffic.
    pub fn topk_batcher(&self) -> &TopKBatcher {
        &self.topk_batcher
    }

    /// Worker threads used for ranking passes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The entity range this entry's `/shard/*` endpoints evaluate: the
    /// configured [`WorkerShard`]'s slice, or the full entity space when
    /// the registry is not part of a multi-node topology.
    pub fn shard_range(&self) -> std::ops::Range<usize> {
        match self.worker_shard {
            Some(ws) => ws.range(self.engine.num_entities()),
            None => 0..self.engine.num_entities(),
        }
    }

    /// Whether `strategy` can be served (Static needs candidate sets,
    /// Probabilistic needs a score matrix).
    pub fn supports(&self, strategy: SamplingStrategy) -> bool {
        match strategy {
            SamplingStrategy::Random => true,
            SamplingStrategy::Static => self.sets.is_some(),
            SamplingStrategy::Probabilistic => self.matrix.is_some(),
        }
    }

    /// The candidate sample for `key`, drawn on miss and LRU-cached;
    /// returns `(sample, cache_hit)`.
    ///
    /// Sampling is seeded from `key.seed`, so a cache hit and a fresh draw
    /// are byte-identical — callers can treat the cache as pure memoisation.
    pub fn samples_for(&self, key: &SampleKey) -> Result<(Arc<SampledCandidates>, bool), String> {
        if !self.supports(key.strategy) {
            return Err(format!(
                "model '{}' cannot serve {} sampling (missing recommender artifacts)",
                self.name,
                key.strategy.name()
            ));
        }
        let mut cache = self.samples.lock().unwrap();
        if let Some(hit) = cache.get(key) {
            return Ok((Arc::clone(hit), true));
        }
        let mut rng = seeded_rng(key.seed);
        let drawn = sample_candidates(
            key.strategy,
            self.model().num_entities(),
            self.model().num_relations(),
            key.n_s,
            self.matrix.as_deref(),
            self.sets.as_deref(),
            &mut rng,
        );
        let drawn = Arc::new(drawn);
        cache.insert(key.clone(), Arc::clone(&drawn));
        Ok((drawn, false))
    }

    /// Cached sampling configurations (for tests and `/healthz`).
    pub fn cached_samples(&self) -> usize {
        self.samples.lock().unwrap().len()
    }
}

/// Tuning knobs shared by every entry a registry creates.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Base batching window for `/score` coalescing (the adaptive window
    /// floors here and caps at [`crate::batch::WINDOW_GROWTH_CAP`]× this).
    pub batch_window: Duration,
    /// Base batching window for `/topk` coalescing (same adaptive scheme;
    /// growth triggers at [`crate::batch::TOPK_WINDOW_GROW_QUERIES`]
    /// absorbed queries since each query is a full ranking pass).
    pub topk_batch_window: Duration,
    /// Worker threads for scoring/ranking passes.
    pub threads: usize,
    /// Entity shards per model engine (`0` = automatic: one shard per
    /// [`kg_core::parallel::DEFAULT_SHARD_TARGET`] entities).
    pub shards: usize,
    /// Shared secret required (as the `"token"` field) by mutating admin
    /// requests (`POST /admin/models`). `None` leaves the endpoint open —
    /// acceptable only for loopback/dev deployments.
    pub admin_token: Option<String>,
    /// This node's slice of the entity space in a multi-node topology.
    /// `None` (the default) serves the full range; when set, the internal
    /// `/shard/topk` and `/shard/rank` endpoints evaluate only this
    /// worker's shard of every registered model. Public endpoints
    /// (`/score`, `/eval`, …) always serve the full model — the split is
    /// in ranking work, not in model storage.
    pub worker_shard: Option<WorkerShard>,
    /// Default serving precision for snapshot loads. `None` (the default)
    /// defers to each snapshot's own precision hint — which is f32 unless
    /// the producer opted in — so quantization is never silently applied.
    /// Per-request `"precision"` on `POST /admin/models` overrides both.
    pub precision: Option<Precision>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            batch_window: Duration::from_micros(200),
            topk_batch_window: Duration::from_micros(200),
            threads: kg_core::parallel::default_threads(),
            shards: 0,
            admin_token: None,
            worker_shard: None,
            precision: None,
        }
    }
}

/// A named collection of servable models.
pub struct ModelRegistry {
    config: RegistryConfig,
    entries: RwLock<HashMap<String, Arc<ModelEntry>>>,
    monitors: Mutex<HashMap<String, Arc<Monitor>>>,
    metrics: Arc<HttpMetrics>,
}

impl ModelRegistry {
    /// Empty registry with default tuning.
    pub fn new() -> Self {
        Self::with_config(RegistryConfig::default())
    }

    /// Empty registry with explicit tuning.
    pub fn with_config(config: RegistryConfig) -> Self {
        ModelRegistry {
            config,
            entries: RwLock::new(HashMap::new()),
            monitors: Mutex::new(HashMap::new()),
            metrics: Arc::new(HttpMetrics::new()),
        }
    }

    /// The metrics registry shared by the router and every model's batcher.
    pub fn metrics(&self) -> &Arc<HttpMetrics> {
        &self.metrics
    }

    /// The admin shared secret, if one is configured.
    pub fn admin_token(&self) -> Option<&str> {
        self.config.admin_token.as_deref()
    }

    /// This node's configured slice of the entity space, if any.
    pub fn worker_shard(&self) -> Option<WorkerShard> {
        self.config.worker_shard
    }

    /// Start (or replace) the continuous-evaluation monitor for model
    /// `name`. The monitor holds only a `Weak` back-reference, so dropping
    /// the registry stops it.
    pub fn start_monitor(
        self: &Arc<Self>,
        name: &str,
        config: MonitorConfig,
    ) -> Result<Arc<Monitor>, String> {
        if self.get(name).is_none() {
            return Err(format!("unknown model '{name}'"));
        }
        let monitor = Arc::new(Monitor::spawn(Arc::downgrade(self), name.to_string(), config));
        // Bind the displaced monitor before the guard dies: its Drop joins
        // the eval thread, which must not run under the map lock.
        let displaced =
            self.monitors.lock().unwrap().insert(name.to_string(), Arc::clone(&monitor));
        drop(displaced);
        Ok(monitor)
    }

    /// Stop and drop the monitor for `name`; returns whether one existed.
    pub fn stop_monitor(&self, name: &str) -> bool {
        // Same Drop-joins-thread hazard as start_monitor: take the monitor
        // out of the map first, then let it drop with no lock held.
        let removed = self.monitors.lock().unwrap().remove(name);
        removed.is_some()
    }

    /// The running monitor for `name`, if any.
    pub fn monitor(&self, name: &str) -> Option<Arc<Monitor>> {
        self.monitors.lock().unwrap().get(name).cloned()
    }

    /// Status of every running monitor, sorted by model name.
    pub fn monitor_statuses(&self) -> Vec<MonitorStatus> {
        let monitors: Vec<Arc<Monitor>> = self.monitors.lock().unwrap().values().cloned().collect();
        let mut statuses: Vec<MonitorStatus> = monitors.iter().map(|m| m.status()).collect();
        statuses.sort_by(|a, b| a.model.cmp(&b.model));
        statuses
    }

    /// Feed a just-applied delta to the model's monitor (if one runs) so
    /// its held-out window tracks the live graph.
    pub(crate) fn notify_delta(&self, name: &str, delta: &GraphDelta) {
        // Clone the handle out before delivering: on_delta takes the
        // monitor's state lock, and an `if let` scrutinee guard would stay
        // live across the call — an undeclared registry.monitors →
        // monitor.state nesting (KL009).
        let monitor = self.monitors.lock().unwrap().get(name).cloned();
        if let Some(monitor) = monitor {
            monitor.on_delta(delta);
        }
    }

    /// Register a model under `name`, replacing any previous entry. The
    /// filter index seeds a fresh [`LiveGraph`] at version 0.
    pub fn register(
        &self,
        name: impl Into<String>,
        model: Arc<dyn KgcModel>,
        filter: Arc<FilterIndex>,
    ) -> Arc<ModelEntry> {
        self.register_with_artifacts(name, model, filter, None, None)
    }

    /// Register a model together with recommender artifacts enabling the
    /// Static / Probabilistic sampling strategies.
    pub fn register_with_artifacts(
        &self,
        name: impl Into<String>,
        model: Arc<dyn KgcModel>,
        filter: Arc<FilterIndex>,
        matrix: Option<Arc<ScoreMatrix>>,
        sets: Option<Arc<CandidateSets>>,
    ) -> Arc<ModelEntry> {
        self.register_live(name, model, Arc::new(LiveGraph::new(filter)), matrix, sets)
    }

    /// Register a model against an existing [`LiveGraph`] — the hot-reload
    /// path uses this so a reloaded entry keeps the old entry's graph (same
    /// `Arc`: deltas applied through either entry stay visible to both, and
    /// the version counter never resets).
    fn register_live(
        &self,
        name: impl Into<String>,
        model: Arc<dyn KgcModel>,
        live: Arc<LiveGraph>,
        matrix: Option<Arc<ScoreMatrix>>,
        sets: Option<Arc<CandidateSets>>,
    ) -> Arc<ModelEntry> {
        let name = name.into();
        let engine = Arc::new(ScoringEngine::new(model, self.config.shards));
        let entry = Arc::new(ModelEntry {
            name: name.clone(),
            batcher: ScoreBatcher::new(
                Arc::clone(&engine),
                name.clone(),
                self.config.batch_window,
                self.config.threads,
                Some(Arc::clone(&self.metrics)),
            ),
            topk_batcher: TopKBatcher::new(
                Arc::clone(&engine),
                Arc::clone(&live),
                name.clone(),
                self.config.topk_batch_window,
                self.config.threads,
                Some(Arc::clone(&self.metrics)),
            ),
            engine,
            live,
            matrix,
            sets,
            samples: Mutex::new(LruCache::new(SAMPLE_CACHE_CAPACITY)),
            evals: Mutex::new(LruCache::new(EVAL_CACHE_CAPACITY)),
            threads: self.config.threads,
            worker_shard: self.config.worker_shard,
            metrics: Arc::clone(&self.metrics),
        });
        self.metrics.set_graph_version(&entry.name, entry.live.version());
        self.metrics.set_model_precision(&entry.name, entry.engine.precision().name());
        self.entries.write().unwrap().insert(name, Arc::clone(&entry));
        entry
    }

    /// Load a snapshot at the precision the deployment resolves to:
    /// explicit `request` > [`RegistryConfig::precision`] > the snapshot's
    /// own hint. Quantized precisions build a [`QuantizedModel`] (entity
    /// table re-encoded at load; the file always stores f32), which fails
    /// loudly for families without a quantized scoring path.
    fn load_serving_model(
        &self,
        path: impl AsRef<std::path::Path>,
        request: Option<Precision>,
    ) -> Result<Arc<dyn KgcModel>, kg_core::KgError> {
        let snapshot = kg_models::io::read_snapshot_from_path(path)?;
        let precision = request.or(self.config.precision).unwrap_or(snapshot.precision_hint);
        if precision.is_quantized() {
            Ok(Arc::new(QuantizedModel::from_snapshot(&snapshot, precision)?))
        } else {
            let model = kg_models::io::model_from_snapshot(&snapshot)?;
            Ok(Arc::from(model as Box<dyn KgcModel>))
        }
    }

    /// Register a model from a snapshot file written by
    /// [`kg_models::io::save_model_to_path`].
    pub fn register_snapshot(
        &self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        filter: Arc<FilterIndex>,
    ) -> Result<Arc<ModelEntry>, kg_core::KgError> {
        let model = self.load_serving_model(path, None)?;
        Ok(self.register(name, model, filter))
    }

    /// Hot-reload `name` from a snapshot file (the `/admin/models` path):
    /// the snapshot is loaded *before* any lock is taken, then the registry
    /// entry is flipped atomically. An existing entry donates its filter
    /// index and recommender artifacts; a brand-new name starts with an
    /// empty filter (register the filter explicitly for filtered serving).
    /// In-flight requests holding the old `Arc<ModelEntry>` finish against
    /// the model they started with.
    ///
    /// Hot-reload swaps **weights, not graphs**: when an entry already
    /// exists, the snapshot must match its entity and relation counts —
    /// the donated filter index and sampling artifacts are indexed by
    /// those ids, and a shape change would make them silently wrong (or
    /// panic). Shape changes require a fresh `register*` call.
    pub fn reload_snapshot(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Arc<ModelEntry>, kg_core::KgError> {
        self.reload_snapshot_with(name, path, None)
    }

    /// [`ModelRegistry::reload_snapshot`] with an explicit serving
    /// precision, overriding both the registry default and the snapshot's
    /// hint (the `"precision"` field of `POST /admin/models`).
    pub fn reload_snapshot_with(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
        precision: Option<Precision>,
    ) -> Result<Arc<ModelEntry>, kg_core::KgError> {
        let model = self.load_serving_model(path, precision)?;
        let (live, matrix, sets) = match self.get(name) {
            Some(old) => {
                let (ne, nr) = (old.model().num_entities(), old.model().num_relations());
                if model.num_entities() != ne || model.num_relations() != nr {
                    return Err(kg_core::KgError::InvalidInput(format!(
                        "snapshot shape {}x{} does not match entry '{name}' ({ne}x{nr}); \
                         hot-reload swaps weights, not graphs",
                        model.num_entities(),
                        model.num_relations(),
                    )));
                }
                (Arc::clone(&old.live), old.matrix.clone(), old.sets.clone())
            }
            None => (Arc::new(LiveGraph::new(Arc::new(FilterIndex::new()))), None, None),
        };
        Ok(self.register_live(name, model, live, matrix, sets))
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.entries.read().unwrap().get(name).cloned()
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.entries.write().unwrap().remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().unwrap().is_empty()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::Triple;
    use kg_models::{build_model, ModelKind};

    fn tiny_entry(registry: &ModelRegistry) -> Arc<ModelEntry> {
        let model = build_model(ModelKind::DistMult, 20, 2, 8, 3);
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, i % 2, (i + 1) % 20)).collect();
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("tiny", Arc::from(model as Box<dyn KgcModel>), filter)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(&10)); // 1 becomes most recent
        lru.insert(3, 30); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_reinsert_updates_value_without_growth() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(1, 11);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn register_and_lookup() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        tiny_entry(&registry);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["tiny".to_string()]);
        assert!(registry.get("tiny").is_some());
        assert!(registry.get("missing").is_none());
        assert!(registry.remove("tiny"));
        assert!(!registry.remove("tiny"));
    }

    #[test]
    fn sample_cache_hits_return_identical_samples() {
        let registry = ModelRegistry::new();
        let entry = tiny_entry(&registry);
        let key = SampleKey { strategy: SamplingStrategy::Random, n_s: 5, seed: 9 };
        let (a, a_hit) = entry.samples_for(&key).unwrap();
        let (b, b_hit) = entry.samples_for(&key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        assert!(!a_hit, "first lookup is a miss");
        assert!(b_hit, "second lookup reports the hit");
        assert_eq!(entry.cached_samples(), 1);
        // A different seed is a different sample object.
        let (c, c_hit) = entry
            .samples_for(&SampleKey { strategy: SamplingStrategy::Random, n_s: 5, seed: 10 })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!c_hit);
        assert_eq!(entry.cached_samples(), 2);
    }

    #[test]
    fn sample_cache_evicts_lru_at_capacity() {
        let registry = ModelRegistry::new();
        let entry = tiny_entry(&registry);
        let key = |seed: u64| SampleKey { strategy: SamplingStrategy::Random, n_s: 4, seed };
        // Fill the cache exactly to capacity.
        for seed in 0..SAMPLE_CACHE_CAPACITY as u64 {
            let (_, hit) = entry.samples_for(&key(seed)).unwrap();
            assert!(!hit, "seed {seed} drawn fresh");
        }
        assert_eq!(entry.cached_samples(), SAMPLE_CACHE_CAPACITY);
        // Touch seed 0 so seed 1 becomes the least recently used …
        assert!(entry.samples_for(&key(0)).unwrap().1, "seed 0 still cached");
        // … then overflow: the cache stays bounded and evicts seed 1.
        let (_, hit) = entry.samples_for(&key(SAMPLE_CACHE_CAPACITY as u64)).unwrap();
        assert!(!hit);
        assert_eq!(entry.cached_samples(), SAMPLE_CACHE_CAPACITY, "capacity is a hard bound");
        assert!(entry.samples_for(&key(0)).unwrap().1, "recently-used seed 0 survived");
        let (redrawn, hit) = entry.samples_for(&key(1)).unwrap();
        assert!(!hit, "LRU seed 1 was evicted and must be redrawn");
        // The redraw is seeded, so eviction never changes what `/eval`
        // computes — only how fast.
        let fresh = sample_candidates(
            SamplingStrategy::Random,
            entry.model().num_entities(),
            entry.model().num_relations(),
            4,
            None,
            None,
            &mut seeded_rng(1),
        );
        for r in 0..entry.model().num_relations() as u32 {
            for side in kg_core::triple::QuerySide::BOTH {
                assert_eq!(
                    redrawn.for_query(kg_core::RelationId(r), side),
                    fresh.for_query(kg_core::RelationId(r), side),
                    "redraw after eviction must be byte-identical to a fresh draw"
                );
            }
        }
    }

    #[test]
    fn hot_reload_keeps_sample_semantics_but_not_the_cache() {
        // Hot-reload swaps weights, not graphs: the new entry starts with
        // an empty sample cache (the cache rides on the entry), but since
        // the shape and seed fully determine a Random draw, the samples an
        // `/eval` sees before and after the reload are identical.
        let registry = ModelRegistry::new();
        let entry = tiny_entry(&registry);
        let key = SampleKey { strategy: SamplingStrategy::Random, n_s: 6, seed: 42 };
        let (before, _) = entry.samples_for(&key).unwrap();
        assert_eq!(entry.cached_samples(), 1);

        let replacement = build_model(ModelKind::ComplEx, 20, 2, 8, 77);
        let dir =
            std::env::temp_dir().join(format!("kg-serve-reload-cache-{}", std::process::id()));
        let path = dir.join("v2.kgev");
        kg_models::io::save_model_to_path(replacement.as_ref(), ModelKind::ComplEx, &path).unwrap();
        let reloaded = registry.reload_snapshot("tiny", &path).unwrap();
        assert_eq!(reloaded.cached_samples(), 0, "a reloaded entry starts with no samples");
        let (after, hit) = reloaded.samples_for(&key).unwrap();
        assert!(!hit, "first post-reload lookup redraws");
        for r in 0..reloaded.model().num_relations() as u32 {
            for side in kg_core::triple::QuerySide::BOTH {
                assert_eq!(
                    before.for_query(kg_core::RelationId(r), side),
                    after.for_query(kg_core::RelationId(r), side),
                    "same shape + seed → same candidates across a reload"
                );
            }
        }
        // The old entry's cache still serves requests in flight.
        assert!(entry.samples_for(&key).unwrap().1, "old Arc keeps its cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_strategy_is_rejected() {
        let registry = ModelRegistry::new();
        let entry = tiny_entry(&registry);
        assert!(entry.supports(SamplingStrategy::Random));
        assert!(!entry.supports(SamplingStrategy::Static));
        assert!(!entry.supports(SamplingStrategy::Probabilistic));
        let err = entry
            .samples_for(&SampleKey { strategy: SamplingStrategy::Static, n_s: 5, seed: 1 })
            .unwrap_err();
        assert!(err.contains("Static"), "error names the strategy: {err}");
    }

    #[test]
    fn snapshot_precision_resolves_request_over_config_over_hint() {
        let dir = std::env::temp_dir().join(format!("kg-serve-precres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hinted.kgev");
        let model = build_model(ModelKind::ComplEx, 12, 2, 8, 5);
        // Producer recommends f16 in the snapshot header.
        let mut buf = Vec::new();
        kg_models::io::save_model_with_hint(
            model.as_ref(),
            ModelKind::ComplEx,
            kg_models::Precision::F16,
            &mut buf,
        )
        .unwrap();
        std::fs::write(&path, &buf).unwrap();
        let filter = Arc::new(FilterIndex::new());

        // No config default → the snapshot hint decides.
        let registry = ModelRegistry::new();
        let entry = registry.register_snapshot("hinted", &path, Arc::clone(&filter)).unwrap();
        assert_eq!(entry.engine().precision(), kg_models::Precision::F16);
        assert_eq!(registry.metrics().model_precision("hinted"), Some("f16"));

        // Registry default overrides the hint.
        let registry = ModelRegistry::with_config(RegistryConfig {
            precision: Some(kg_models::Precision::Int8),
            ..RegistryConfig::default()
        });
        let entry = registry.register_snapshot("cfg", &path, Arc::clone(&filter)).unwrap();
        assert_eq!(entry.engine().precision(), kg_models::Precision::Int8);

        // An explicit request overrides both, including back to exact f32.
        let entry =
            registry.reload_snapshot_with("cfg", &path, Some(kg_models::Precision::F32)).unwrap();
        assert_eq!(entry.engine().precision(), kg_models::Precision::F32);
        assert_eq!(registry.metrics().model_precision("cfg"), Some("f32"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantized_load_of_unsupported_family_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("kg-serve-precbad-{}", std::process::id()));
        let path = dir.join("tucker.kgev");
        let model = build_model(ModelKind::TuckEr, 8, 2, 8, 5);
        kg_models::io::save_model_to_path(model.as_ref(), ModelKind::TuckEr, &path).unwrap();
        let registry = ModelRegistry::with_config(RegistryConfig {
            precision: Some(kg_models::Precision::Int8),
            ..RegistryConfig::default()
        });
        let err = match registry.register_snapshot("t", &path, Arc::new(FilterIndex::new())) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("TuckER must not load quantized"),
        };
        assert!(err.contains("quantized"), "error explains the rejection: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_registration_roundtrip() {
        let model = build_model(ModelKind::ComplEx, 12, 2, 8, 5);
        let dir = std::env::temp_dir().join(format!("kg-serve-reg-{}", std::process::id()));
        let path = dir.join("m.kgev");
        kg_models::io::save_model_to_path(model.as_ref(), ModelKind::ComplEx, &path).unwrap();
        let registry = ModelRegistry::new();
        let triples = [Triple::new(0, 0, 1)];
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        let entry = registry.register_snapshot("loaded", &path, filter).unwrap();
        assert_eq!(entry.model().num_entities(), 12);
        assert_eq!(
            entry.model().score(kg_core::EntityId(3), kg_core::RelationId(1), kg_core::EntityId(7)),
            model.score(kg_core::EntityId(3), kg_core::RelationId(1), kg_core::EntityId(7)),
            "registry-loaded snapshot scores identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
