//! Request coalescing for `/score`: concurrent scoring requests against the
//! same model are merged into one flat triple list and scored in a single
//! [`parallel_map_indexed`] pass.
//!
//! Why batch at all: each HTTP request alone would spin up a scoped thread
//! team for a handful of triples; under concurrent load that is one team
//! per request fighting over cores. Coalescing amortises the fan-out across
//! every request that arrives within the batching window, which is exactly
//! the "many users, small queries" regime the ROADMAP targets.
//!
//! Leadership protocol (all under one mutex, so the ordering argument is
//! airtight): a submitter that finds no active leader becomes the leader,
//! sleeps for the window, then drains *everything* pending and scores it.
//! A submitter that finds a leader active just enqueues and waits on its
//! job's condvar. Because enqueue and drain are serialised by the same
//! mutex, a job is either drained by the current leader or observes
//! `leader_active == false` and elects itself — no job can strand.
//!
//! The batching window is **adaptive**: when a batch actually coalesced
//! (≥ 2 jobs) and absorbed at least [`WINDOW_GROW_TRIPLES`] triples, the
//! window doubles (up to [`WINDOW_GROWTH_CAP`]× the configured base —
//! deeper coalescing under load), and an idle batch that coalesced nothing
//! halves it back toward the base, keeping single-client latency tight.
//! Growth requires real coalescing so that one client sending large
//! sequential batches never ratchets up a sleep that cannot help it. The
//! current window is exported per model as `kg_serve_score_batch_window_us`
//! in `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use kg_core::parallel::parallel_map_indexed;
use kg_core::Triple;
use kg_models::ScoringEngine;

use crate::http_metrics::HttpMetrics;

/// Triples in one coalesced batch at which the window widens.
pub const WINDOW_GROW_TRIPLES: usize = 64;

/// Upper bound of the adaptive window, as a multiple of the base window.
pub const WINDOW_GROWTH_CAP: u64 = 8;

/// One request's slot: filled by whichever thread leads the batch.
struct JobSlot {
    result: Mutex<Option<Vec<f32>>>,
    ready: Condvar,
}

struct Pending {
    triples: Vec<Triple>,
    slot: Arc<JobSlot>,
}

#[derive(Default)]
struct BatchState {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// Coalesces concurrent score requests for one model.
pub struct ScoreBatcher {
    engine: Arc<ScoringEngine>,
    name: String,
    state: Mutex<BatchState>,
    base_window_us: u64,
    window_us: AtomicU64,
    threads: usize,
    batches_run: AtomicU64,
    metrics: Option<Arc<HttpMetrics>>,
}

impl ScoreBatcher {
    /// Batcher over `engine`, waiting an adaptive window (starting at
    /// `window`) for stragglers and scoring with `threads` workers. Batch
    /// sizes and the current window are recorded into `metrics` when
    /// provided — held by the batcher itself so every coalesced batch is
    /// observed no matter which submitter ends up leading it. A zero base
    /// window disables both sleeping and adaptation.
    pub fn new(
        engine: Arc<ScoringEngine>,
        name: impl Into<String>,
        window: Duration,
        threads: usize,
        metrics: Option<Arc<HttpMetrics>>,
    ) -> Self {
        let name = name.into();
        let base_window_us = window.as_micros() as u64;
        if let Some(m) = &metrics {
            m.set_score_window(&name, base_window_us);
        }
        ScoreBatcher {
            engine,
            name,
            state: Mutex::new(BatchState::default()),
            base_window_us,
            window_us: AtomicU64::new(base_window_us),
            threads: threads.max(1),
            batches_run: AtomicU64::new(0),
            metrics,
        }
    }

    /// Number of scoring passes executed so far.
    pub fn batches_run(&self) -> u64 {
        self.batches_run.load(Ordering::Relaxed)
    }

    /// The adaptive batching window currently in effect, in microseconds.
    pub fn current_window_us(&self) -> u64 {
        self.window_us.load(Ordering::Relaxed)
    }

    /// Score `triples`, coalescing with any concurrent submissions.
    ///
    /// Blocks until the batch containing this job has been scored; returns
    /// the scores in input order.
    pub fn submit(&self, triples: Vec<Triple>) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let slot = Arc::new(JobSlot { result: Mutex::new(None), ready: Condvar::new() });
        let is_leader = {
            let mut state = self.state.lock().unwrap();
            state.pending.push(Pending { triples, slot: Arc::clone(&slot) });
            if state.leader_active {
                false
            } else {
                state.leader_active = true;
                true
            }
        };

        if is_leader {
            // Give concurrent submitters a chance to join this batch.
            let window_us = self.window_us.load(Ordering::Relaxed);
            if window_us > 0 {
                std::thread::sleep(Duration::from_micros(window_us));
            }
            let batch = {
                let mut state = self.state.lock().unwrap();
                state.leader_active = false;
                std::mem::take(&mut state.pending)
            };
            self.run_batch(batch);
        }

        let mut result = slot.result.lock().unwrap();
        while result.is_none() {
            result = slot.ready.wait(result).unwrap();
        }
        result.take().unwrap()
    }

    /// Adapt the window to the batch just scored: widen under load (the
    /// next window catches more stragglers), shrink back toward the base
    /// when traffic is idle. Growth requires the batch to have actually
    /// coalesced ≥ 2 jobs — a single client's big sequential batches gain
    /// nothing from a longer sleep. No-op for zero-base batchers.
    fn adapt_window(&self, jobs: usize, triples: usize) {
        if self.base_window_us == 0 {
            return;
        }
        let cap = self.base_window_us * WINDOW_GROWTH_CAP;
        let cur = self.window_us.load(Ordering::Relaxed);
        let next = if jobs >= 2 && triples >= WINDOW_GROW_TRIPLES {
            (cur * 2).min(cap)
        } else if jobs <= 1 {
            (cur / 2).max(self.base_window_us)
        } else {
            cur
        };
        if next != cur {
            self.window_us.store(next, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.set_score_window(&self.name, next);
            }
        }
    }

    fn run_batch(&self, batch: Vec<Pending>) {
        let flat: Vec<Triple> = batch.iter().flat_map(|job| job.triples.iter().copied()).collect();
        let engine = &self.engine;
        // The single parallel pass over every triple of every coalesced job.
        let scores = parallel_map_indexed(flat.len(), self.threads, |i| engine.score_one(flat[i]));
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.observe_batch(batch.len(), flat.len());
        }
        self.adapt_window(batch.len(), flat.len());
        let mut offset = 0usize;
        for job in batch {
            let n = job.triples.len();
            let mut result = job.slot.result.lock().unwrap();
            *result = Some(scores[offset..offset + n].to_vec());
            job.slot.ready.notify_all();
            offset += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, RelationId};
    use kg_models::KgcModel;

    struct Linear {
        n: usize,
    }

    impl KgcModel for Linear {
        fn name(&self) -> &'static str {
            "Linear"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            4
        }
        fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
            h.0 as f32 * 10_000.0 + r.0 as f32 * 100.0 + t.0 as f32
        }
        fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
            for (t, o) in out.iter_mut().enumerate() {
                *o = self.score(h, r, EntityId(t as u32));
            }
        }
        fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
            for (h, o) in out.iter_mut().enumerate() {
                *o = self.score(EntityId(h as u32), r, t);
            }
        }
        fn score_tail_candidates(
            &self,
            h: EntityId,
            r: RelationId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &c) in out.iter_mut().zip(candidates) {
                *o = self.score(h, r, c);
            }
        }
        fn score_head_candidates(
            &self,
            r: RelationId,
            t: EntityId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &c) in out.iter_mut().zip(candidates) {
                *o = self.score(c, r, t);
            }
        }
    }

    fn batcher(window_us: u64) -> Arc<ScoreBatcher> {
        batcher_with(window_us, None)
    }

    fn batcher_with(window_us: u64, metrics: Option<Arc<HttpMetrics>>) -> Arc<ScoreBatcher> {
        let engine = Arc::new(ScoringEngine::new(Arc::new(Linear { n: 50 }), 1));
        Arc::new(ScoreBatcher::new(engine, "linear", Duration::from_micros(window_us), 2, metrics))
    }

    #[test]
    fn single_job_scores_in_order() {
        let b = batcher(0);
        let triples = vec![Triple::new(1, 2, 3), Triple::new(4, 0, 9)];
        let scores = b.submit(triples);
        assert_eq!(scores, vec![10_203.0, 40_009.0]);
        assert_eq!(b.batches_run(), 1);
    }

    #[test]
    fn empty_job_is_free() {
        let b = batcher(0);
        assert!(b.submit(Vec::new()).is_empty());
        assert_eq!(b.batches_run(), 0);
    }

    #[test]
    fn concurrent_jobs_coalesce_and_split_correctly() {
        let metrics = Arc::new(HttpMetrics::new());
        let b = batcher_with(3_000, Some(Arc::clone(&metrics)));
        let mut handles = Vec::new();
        for worker in 0..8u32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let triples: Vec<Triple> =
                    (0..=worker).map(|i| Triple::new(worker, i % 4, i)).collect();
                let scores = b.submit(triples.clone());
                (triples, scores)
            }));
        }
        for h in handles {
            let (triples, scores) = h.join().unwrap();
            assert_eq!(scores.len(), triples.len());
            for (t, s) in triples.iter().zip(&scores) {
                assert_eq!(
                    *s,
                    t.head.0 as f32 * 10_000.0 + t.relation.0 as f32 * 100.0 + t.tail.0 as f32,
                    "job result misaligned for {t:?}"
                );
            }
        }
        // 8 concurrent jobs, 36 triples total, in (far) fewer than 8 passes.
        assert!(b.batches_run() <= 8);
        assert!(metrics.render().contains("kg_serve_score_batch_jobs_total 8"));
    }

    #[test]
    fn sequential_jobs_never_strand() {
        let b = batcher(100);
        for i in 0..20u32 {
            let scores = b.submit(vec![Triple::new(i % 5, 0, i % 7)]);
            assert_eq!(scores.len(), 1);
        }
        assert_eq!(b.batches_run(), 20);
    }

    #[test]
    fn window_widens_under_load_and_shrinks_when_idle() {
        let metrics = Arc::new(HttpMetrics::new());
        let b = batcher_with(50, Some(Arc::clone(&metrics)));
        assert_eq!(b.current_window_us(), 50);
        // A genuinely coalesced, large batch widens the window.
        b.adapt_window(3, WINDOW_GROW_TRIPLES);
        assert_eq!(b.current_window_us(), 100);
        // Repeated load saturates at the cap.
        for _ in 0..10 {
            b.adapt_window(4, WINDOW_GROW_TRIPLES * 2);
        }
        assert_eq!(b.current_window_us(), 50 * WINDOW_GROWTH_CAP);
        // Idle uncoalesced batches decay back to the base.
        for _ in 0..10 {
            b.adapt_window(1, 1);
        }
        assert_eq!(b.current_window_us(), 50);
        // The current window is exported in the metrics text.
        assert!(
            metrics.render().contains("kg_serve_score_batch_window_us{model=\"linear\"} 50"),
            "{}",
            metrics.render()
        );
        // End to end: submitting through the real path keeps the invariants.
        b.submit(vec![Triple::new(1, 0, 1)]);
        assert_eq!(b.current_window_us(), 50);
    }

    #[test]
    fn single_client_big_batches_never_widen_the_window() {
        // One job per batch (no coalescing): a longer sleep cannot help, so
        // the window must not ratchet up no matter the triple count.
        let b = batcher_with(50, None);
        for _ in 0..5 {
            let big: Vec<Triple> = (0..200u32).map(|i| Triple::new(i % 5, 0, i % 7)).collect();
            b.submit(big);
        }
        assert_eq!(b.current_window_us(), 50);
    }

    #[test]
    fn zero_base_window_never_adapts() {
        let b = batcher(0);
        b.adapt_window(8, 10_000);
        assert_eq!(b.current_window_us(), 0, "zero window means no sleeping, ever");
        let big: Vec<Triple> = (0..200u32).map(|i| Triple::new(i % 5, 0, i % 7)).collect();
        b.submit(big);
        assert_eq!(b.current_window_us(), 0);
    }
}
