//! Request coalescing for `/score` and `/topk`: concurrent requests against
//! the same model are merged into one flat work list and executed in a
//! single parallel pass ([`ScoreBatcher`] scores triples through
//! [`parallel_map_indexed`]; [`TopKBatcher`] runs full-ranking top-k
//! queries through the two-level query × shard work plan).
//!
//! Why batch at all: each HTTP request alone would spin up a scoped thread
//! team for a handful of triples; under concurrent load that is one team
//! per request fighting over cores. Coalescing amortises the fan-out across
//! every request that arrives within the batching window, which is exactly
//! the "many users, small queries" regime the ROADMAP targets.
//!
//! Leadership protocol (all under one mutex, so the ordering argument is
//! airtight): a submitter that finds no active leader becomes the leader,
//! sleeps for the window, then drains *everything* pending and scores it.
//! A submitter that finds a leader active just enqueues and waits on its
//! job's condvar. Because enqueue and drain are serialised by the same
//! mutex, a job is either drained by the current leader or observes
//! `leader_active == false` and elects itself — no job can strand. A
//! *panicking* pass cannot strand followers either: the leader poisons
//! every drained slot before re-raising, so each waiter fails its own
//! request instead of blocking a pool worker forever.
//!
//! The batching window is **adaptive**: when a batch actually coalesced
//! (≥ 2 jobs) and absorbed at least a growth threshold of work
//! ([`WINDOW_GROW_TRIPLES`] triples for `/score`,
//! [`TOPK_WINDOW_GROW_QUERIES`] queries for `/topk`), the window doubles
//! (up to [`WINDOW_GROWTH_CAP`]× the configured base — deeper coalescing
//! under load), and an idle batch that coalesced nothing halves it back
//! toward the base, keeping single-client latency tight. Growth requires
//! real coalescing so that one client sending large sequential batches
//! never ratchets up a sleep that cannot help it. The current windows are
//! exported per model as `kg_serve_score_batch_window_us` and
//! `kg_serve_topk_batch_window_us` in `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use kg_core::ids::{EntityId, RelationId};
use kg_core::parallel::{parallel_map_indexed, two_level_split};
use kg_core::triple::QuerySide;
use kg_core::{DeltaKeys, LiveGraph, Triple};
use kg_models::ScoringEngine;

use crate::http_metrics::HttpMetrics;
use crate::registry::LruCache;

/// Triples in one coalesced batch at which the window widens.
pub const WINDOW_GROW_TRIPLES: usize = 64;

/// Upper bound of the adaptive window, as a multiple of the base window.
pub const WINDOW_GROWTH_CAP: u64 = 8;

/// What one job's wait ends with.
enum Outcome<O> {
    /// The job's slice of the batch results, in input order.
    Done(Vec<O>),
    /// The batch's execution pass panicked; the waiter must fail its own
    /// request rather than wait forever.
    Poisoned,
}

/// One request's slot: filled by whichever thread leads the batch.
struct JobSlot<O> {
    result: Mutex<Option<Outcome<O>>>,
    ready: Condvar,
}

struct Pending<I, O> {
    items: Vec<I>,
    slot: Arc<JobSlot<O>>,
}

struct CoreState<I, O> {
    pending: Vec<Pending<I, O>>,
    leader_active: bool,
}

/// The shared coalescing machinery behind [`ScoreBatcher`] and
/// [`TopKBatcher`]: leadership election, the adaptive window, flattening
/// jobs into one work list, scattering results back, and poisoning every
/// waiter when the execution pass panics (so a panic costs the coalesced
/// requests, never pool workers stuck in an eternal condvar wait).
struct BatchCore<I, O> {
    state: Mutex<CoreState<I, O>>,
    base_window_us: u64,
    window_us: AtomicU64,
    batches_run: AtomicU64,
}

impl<I: Copy, O: Clone> BatchCore<I, O> {
    fn new(window: Duration) -> Self {
        let base_window_us = window.as_micros() as u64;
        BatchCore {
            state: Mutex::new(CoreState { pending: Vec::new(), leader_active: false }),
            base_window_us,
            window_us: AtomicU64::new(base_window_us),
            batches_run: AtomicU64::new(0),
        }
    }

    fn batches_run(&self) -> u64 {
        self.batches_run.load(Ordering::Relaxed)
    }

    fn current_window_us(&self) -> u64 {
        self.window_us.load(Ordering::Relaxed)
    }

    /// Run `items` through the batcher: coalesce with concurrent
    /// submissions, execute the merged work list with `run` (exactly one
    /// output per input item), report each completed batch's `(jobs,
    /// items)` to `after` (metrics + window adaptation). Blocks until the
    /// batch containing this job has been executed; panics if the batch's
    /// `run` panicked (on the leader the original panic resumes, on
    /// followers a poisoned-batch panic is raised).
    fn submit<R, A>(&self, items: Vec<I>, run: R, after: A) -> Vec<O>
    where
        R: Fn(&[I]) -> Vec<O>,
        A: Fn(usize, usize),
    {
        if items.is_empty() {
            return Vec::new();
        }
        let slot = Arc::new(JobSlot { result: Mutex::new(None), ready: Condvar::new() });
        let is_leader = {
            let mut state = self.state.lock().unwrap();
            state.pending.push(Pending { items, slot: Arc::clone(&slot) });
            if state.leader_active {
                false
            } else {
                state.leader_active = true;
                true
            }
        };

        if is_leader {
            // Give concurrent submitters a chance to join this batch.
            let window_us = self.window_us.load(Ordering::Relaxed);
            if window_us > 0 {
                std::thread::sleep(Duration::from_micros(window_us));
            }
            let batch = {
                let mut state = self.state.lock().unwrap();
                state.leader_active = false;
                std::mem::take(&mut state.pending)
            };
            let flat: Vec<I> = batch.iter().flat_map(|job| job.items.iter().copied()).collect();
            // The execution pass runs under catch_unwind so a panicking
            // model can never leave followers waiting on slots that no
            // one will ever fill. A wrong-length result is routed through
            // the same poison path: letting it slice-panic mid-scatter
            // would strand exactly the slots not yet filled.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&flat)))
                .and_then(|outputs| {
                    if outputs.len() == flat.len() {
                        Ok(outputs)
                    } else {
                        Err(Box::new(format!(
                            "batch run returned {} outputs for {} items",
                            outputs.len(),
                            flat.len()
                        )) as Box<dyn std::any::Any + Send>)
                    }
                });
            match outcome {
                Ok(outputs) => {
                    self.batches_run.fetch_add(1, Ordering::Relaxed);
                    let mut offset = 0usize;
                    for job in &batch {
                        let n = job.items.len();
                        let mut result = job.slot.result.lock().unwrap();
                        // PANIC-OK: the Ok arm guarantees
                        // `outputs.len() == flat.len()` = sum of all job
                        // item counts, so every `offset..offset + n` is in
                        // bounds by construction.
                        *result = Some(Outcome::Done(outputs[offset..offset + n].to_vec()));
                        job.slot.ready.notify_all();
                        offset += n;
                    }
                    after(batch.len(), flat.len());
                }
                Err(payload) => {
                    for job in &batch {
                        let mut result = job.slot.result.lock().unwrap();
                        *result = Some(Outcome::Poisoned);
                        job.slot.ready.notify_all();
                    }
                    // `leader_active` was already reset before the run, so
                    // the next submission elects a fresh leader.
                    std::panic::resume_unwind(payload);
                }
            }
        }

        let mut result = slot.result.lock().unwrap();
        while result.is_none() {
            // PANIC-OK: condvar wait only errors on mutex poisoning, i.e. a
            // panic that already happened elsewhere — rethrowing it here
            // adds no new panic surface.
            result = slot.ready.wait(result).unwrap();
        }
        // PANIC-OK: the loop above exits only when the slot was filled.
        match result.take().unwrap() {
            Outcome::Done(out) => out,
            Outcome::Poisoned => {
                // PANIC-OK: deliberate panic propagation — the leader's
                // execution pass panicked and `resume_unwind` already tore
                // down that request; followers must fail too, not hang.
                panic!("coalesced batch panicked in another request's execution pass")
            }
        }
    }

    /// Adapt the window to the batch just executed: widen under load (the
    /// next window catches more stragglers), shrink back toward the base
    /// when traffic is idle. Growth requires the batch to have actually
    /// coalesced ≥ 2 jobs *and* absorbed `grow_threshold` work units — a
    /// single client's big sequential batches gain nothing from a longer
    /// sleep. `on_change` observes the new window (the metrics gauge).
    /// No-op for zero-base batchers.
    fn adapt_window(
        &self,
        jobs: usize,
        units: usize,
        grow_threshold: usize,
        on_change: impl Fn(u64),
    ) {
        if self.base_window_us == 0 {
            return;
        }
        let cap = self.base_window_us * WINDOW_GROWTH_CAP;
        let cur = self.window_us.load(Ordering::Relaxed);
        let next = if jobs >= 2 && units >= grow_threshold {
            (cur * 2).min(cap)
        } else if jobs <= 1 {
            (cur / 2).max(self.base_window_us)
        } else {
            cur
        };
        if next != cur {
            self.window_us.store(next, Ordering::Relaxed);
            on_change(next);
        }
    }
}

/// Coalesces concurrent score requests for one model.
pub struct ScoreBatcher {
    engine: Arc<ScoringEngine>,
    name: String,
    core: BatchCore<Triple, f32>,
    threads: usize,
    metrics: Option<Arc<HttpMetrics>>,
}

impl ScoreBatcher {
    /// Batcher over `engine`, waiting an adaptive window (starting at
    /// `window`) for stragglers and scoring with `threads` workers. Batch
    /// sizes and the current window are recorded into `metrics` when
    /// provided — held by the batcher itself so every coalesced batch is
    /// observed no matter which submitter ends up leading it. A zero base
    /// window disables both sleeping and adaptation.
    pub fn new(
        engine: Arc<ScoringEngine>,
        name: impl Into<String>,
        window: Duration,
        threads: usize,
        metrics: Option<Arc<HttpMetrics>>,
    ) -> Self {
        let name = name.into();
        if let Some(m) = &metrics {
            m.set_score_window(&name, window.as_micros() as u64);
        }
        ScoreBatcher {
            engine,
            name,
            core: BatchCore::new(window),
            threads: threads.max(1),
            metrics,
        }
    }

    /// Number of scoring passes executed so far.
    pub fn batches_run(&self) -> u64 {
        self.core.batches_run()
    }

    /// The adaptive batching window currently in effect, in microseconds.
    pub fn current_window_us(&self) -> u64 {
        self.core.current_window_us()
    }

    /// Score `triples`, coalescing with any concurrent submissions.
    ///
    /// Blocks until the batch containing this job has been scored; returns
    /// the scores in input order.
    pub fn submit(&self, triples: Vec<Triple>) -> Vec<f32> {
        self.core.submit(
            triples,
            // The single parallel pass over every triple of every
            // coalesced job.
            |flat| {
                // PANIC-OK: `i < flat.len()` by parallel_map_indexed's
                // contract.
                parallel_map_indexed(flat.len(), self.threads, |i| self.engine.score_one(flat[i]))
            },
            |jobs, triples| {
                if let Some(m) = &self.metrics {
                    m.observe_batch(jobs, triples);
                }
                self.adapt_window(jobs, triples);
            },
        )
    }

    fn adapt_window(&self, jobs: usize, triples: usize) {
        self.core.adapt_window(jobs, triples, WINDOW_GROW_TRIPLES, |next| {
            if let Some(m) = &self.metrics {
                m.set_score_window(&self.name, next);
            }
        });
    }
}

/// Queries in one coalesced top-k batch at which the window widens. Much
/// lower than [`WINDOW_GROW_TRIPLES`]: a top-k query is a full ranking
/// pass (`O(|E|)`), so even a handful absorbed per batch repays a longer
/// wait.
pub const TOPK_WINDOW_GROW_QUERIES: usize = 4;

/// One top-k query as the batcher executes it: parse-validated by the
/// router, with `k` and the filtered flag resolved per request (jobs with
/// different settings coalesce into one pass).
#[derive(Clone, Copy, Debug)]
pub struct TopKQuery {
    /// The query triple (the answer slot's entity id is ignored).
    pub triple: Triple,
    /// Which slot is being predicted.
    pub side: QuerySide,
    /// How many results to return.
    pub k: usize,
    /// Whether known-true answers are removed from the ranking.
    pub filtered: bool,
}

/// One result list per submitted query: `(entity, score)` pairs, best
/// first.
pub type TopKResults = Vec<Vec<(u32, f32)>>;

/// Distinct cached `(query, k, filtered)` configurations kept per model.
pub const TOPK_CACHE_CAPACITY: usize = 1024;

/// Cache key for one top-k query. The answer-slot entity id of the query
/// triple is *ignored* by ranking, so the key stores only the context
/// entity ([`QuerySide::context`]) — `{"head":3,...}` hits the same entry
/// no matter what placeholder the parser put in the tail slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TopKCacheKey {
    context: EntityId,
    relation: RelationId,
    side: QuerySide,
    k: usize,
    filtered: bool,
}

impl TopKCacheKey {
    fn of(q: &TopKQuery) -> Self {
        TopKCacheKey {
            context: q.side.context(q.triple),
            relation: q.triple.relation,
            side: q.side,
            k: q.k,
            filtered: q.filtered,
        }
    }
}

/// A cached result, valid only while the live graph still carries
/// `version` (deltas bump surviving entries; touched entries are removed).
struct CachedTopK {
    result: Vec<(u32, f32)>,
    version: u64,
}

/// Coalesces concurrent `/topk` requests for one model into a single
/// multi-query fan-out pass.
///
/// Same [`BatchCore`] leadership protocol as [`ScoreBatcher`], but the
/// merged batch is executed through the two-level work plan
/// ([`kg_core::parallel::two_level_split`]): the coalesced queries are
/// spread across worker threads, and any spare threads fan each query's
/// entity shards out via [`ScoringEngine::top_k_fanout`]. One concurrent
/// query → pure shard fan-out; `threads`+ concurrent queries → pure
/// query-parallelism; anything between gets both levels. The adaptive
/// window mirrors the `/score` batcher's (grow on real coalescing of
/// [`TOPK_WINDOW_GROW_QUERIES`]+ queries, decay when idle, capped at
/// [`WINDOW_GROWTH_CAP`]× the base) and is exported per model as
/// `kg_serve_topk_batch_window_us`.
///
/// ## Live graphs
///
/// Filtered queries resolve known answers against a snapshot of the
/// model's [`LiveGraph`], taken **once per coalesced pass** by the leader
/// — every query in a batch sees one consistent graph version. Results
/// are memoised in a version-keyed LRU ([`TOPK_CACHE_CAPACITY`] entries):
/// a hit requires the entry's graph version to equal the current one, and
/// [`TopKBatcher::invalidate`] (called on every applied delta) removes
/// exactly the filtered entries whose `(context, relation)` key the delta
/// touched while re-stamping survivors — key-granular invalidation, not a
/// flush. Unfiltered entries never depend on the graph and always
/// survive. A computed result is only inserted while the graph version
/// still equals the one observed before the pass; since versions are
/// monotonic, a result computed against any newer snapshot is refused,
/// so the cache can never serve bytes a cold server would not.
pub struct TopKBatcher {
    engine: Arc<ScoringEngine>,
    live: Arc<LiveGraph>,
    name: String,
    core: BatchCore<TopKQuery, Vec<(u32, f32)>>,
    cache: Mutex<LruCache<TopKCacheKey, CachedTopK>>,
    threads: usize,
    metrics: Option<Arc<HttpMetrics>>,
}

impl TopKBatcher {
    /// Batcher running top-k passes for `engine`, removing known answers
    /// of filtered queries via snapshots of `live`, with `threads` total
    /// workers per pass. A zero base window disables sleeping and
    /// adaptation.
    pub fn new(
        engine: Arc<ScoringEngine>,
        live: Arc<LiveGraph>,
        name: impl Into<String>,
        window: Duration,
        threads: usize,
        metrics: Option<Arc<HttpMetrics>>,
    ) -> Self {
        let name = name.into();
        if let Some(m) = &metrics {
            m.set_topk_window(&name, window.as_micros() as u64);
        }
        TopKBatcher {
            engine,
            live,
            name,
            core: BatchCore::new(window),
            cache: Mutex::new(LruCache::new(TOPK_CACHE_CAPACITY)),
            threads: threads.max(1),
            metrics,
        }
    }

    /// Number of top-k passes executed so far.
    pub fn batches_run(&self) -> u64 {
        self.core.batches_run()
    }

    /// The adaptive batching window currently in effect, in microseconds.
    pub fn current_window_us(&self) -> u64 {
        self.core.current_window_us()
    }

    /// Cached query results currently held (tests and `/healthz`).
    pub fn cached_results(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Drop every cached filtered result whose `(context, relation)` key
    /// `keys` touched, and re-stamp the survivors (and all unfiltered
    /// entries, which never depend on the graph) to `new_version` so they
    /// keep hitting. Called by the registry entry for every applied delta.
    pub fn invalidate(&self, keys: &DeltaKeys, new_version: u64) {
        let mut cache = self.cache.lock().unwrap();
        cache.retain(|key, value| {
            let touched = key.filtered
                && match key.side {
                    QuerySide::Tail => keys.touches_tail(key.context, key.relation),
                    QuerySide::Head => keys.touches_head(key.relation, key.context),
                };
            if touched {
                return false;
            }
            value.version = new_version;
            true
        });
    }

    /// Run `queries`, coalescing with any concurrent submissions; blocks
    /// until the batch containing this job has been executed. Returns one
    /// result list per query, in input order. Cached results (same query,
    /// same graph version) are answered without ranking.
    pub fn submit(&self, queries: Vec<TopKQuery>) -> TopKResults {
        if queries.is_empty() {
            return Vec::new();
        }
        let version_before = self.live.version();
        let mut results: Vec<Option<Vec<(u32, f32)>>> = vec![None; queries.len()];
        let mut misses: Vec<(usize, TopKQuery)> = Vec::new();
        {
            let mut cache = self.cache.lock().unwrap();
            for (i, q) in queries.iter().enumerate() {
                match cache.get(&TopKCacheKey::of(q)) {
                    // PANIC-OK: `i` enumerates `queries`, and `results` was
                    // sized to `queries.len()` two lines up.
                    Some(c) if c.version == version_before => results[i] = Some(c.result.clone()),
                    _ => misses.push((i, *q)),
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.observe_topk_cache(queries.len() - misses.len(), misses.len());
        }
        if !misses.is_empty() {
            let miss_queries: Vec<TopKQuery> = misses.iter().map(|&(_, q)| q).collect();
            let computed = self.run_batch(miss_queries);
            let mut cache = self.cache.lock().unwrap();
            // Monotonic-version insert guard: the leader that executed the
            // pass may have snapshotted a *newer* graph than this
            // submitter observed; in that case the current version has
            // already moved past `version_before` and the insert is
            // refused, so a stale-labelled entry can never land.
            let fresh = self.live.version() == version_before;
            for ((i, q), out) in misses.into_iter().zip(computed) {
                if fresh {
                    cache.insert(
                        TopKCacheKey::of(&q),
                        CachedTopK { result: out.clone(), version: version_before },
                    );
                }
                // PANIC-OK: every index in `misses` came from enumerating
                // `queries`, which sized `results`.
                results[i] = Some(out);
            }
        }
        // PANIC-OK: each slot was filled by the cache-hit loop or the miss
        // loop — `misses` holds exactly the indices the first loop skipped.
        results.into_iter().map(|r| r.expect("every query answered")).collect()
    }

    /// The coalescing pass itself (cache misses only).
    fn run_batch(&self, queries: Vec<TopKQuery>) -> TopKResults {
        self.core.submit(
            queries,
            // The single two-level pass over every query of every
            // coalesced job: queries across workers, spare workers into
            // shard fan-out. One snapshot serves the whole pass.
            |flat| {
                let snap = self.live.snapshot();
                let split = two_level_split(flat.len(), self.threads);
                parallel_map_indexed(flat.len(), split.outer, |i| {
                    // PANIC-OK: `i < flat.len()` by parallel_map_indexed's
                    // contract.
                    let q = flat[i];
                    let known = if q.filtered {
                        snap.known_answers(q.triple, q.side)
                    } else {
                        // PANIC-OK: full-range slice of an empty array
                        // literal — cannot be out of bounds.
                        std::borrow::Cow::Borrowed(&[][..])
                    };
                    self.engine.top_k_fanout(q.triple, q.side, &known, q.k, split.inner)
                })
            },
            |jobs, queries| {
                if let Some(m) = &self.metrics {
                    m.observe_topk_batch(jobs, queries);
                }
                self.adapt_window(jobs, queries);
            },
        )
    }

    fn adapt_window(&self, jobs: usize, queries: usize) {
        self.core.adapt_window(jobs, queries, TOPK_WINDOW_GROW_QUERIES, |next| {
            if let Some(m) = &self.metrics {
                m.set_topk_window(&self.name, next);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, RelationId};
    use kg_models::KgcModel;

    struct Linear {
        n: usize,
    }

    impl KgcModel for Linear {
        fn name(&self) -> &'static str {
            "Linear"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            4
        }
        fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
            h.0 as f32 * 10_000.0 + r.0 as f32 * 100.0 + t.0 as f32
        }
        fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
            for (t, o) in out.iter_mut().enumerate() {
                *o = self.score(h, r, EntityId(t as u32));
            }
        }
        fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
            for (h, o) in out.iter_mut().enumerate() {
                *o = self.score(EntityId(h as u32), r, t);
            }
        }
        fn score_tail_candidates(
            &self,
            h: EntityId,
            r: RelationId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &c) in out.iter_mut().zip(candidates) {
                *o = self.score(h, r, c);
            }
        }
        fn score_head_candidates(
            &self,
            r: RelationId,
            t: EntityId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &c) in out.iter_mut().zip(candidates) {
                *o = self.score(c, r, t);
            }
        }
    }

    fn batcher(window_us: u64) -> Arc<ScoreBatcher> {
        batcher_with(window_us, None)
    }

    fn batcher_with(window_us: u64, metrics: Option<Arc<HttpMetrics>>) -> Arc<ScoreBatcher> {
        let engine = Arc::new(ScoringEngine::new(Arc::new(Linear { n: 50 }), 1));
        Arc::new(ScoreBatcher::new(engine, "linear", Duration::from_micros(window_us), 2, metrics))
    }

    #[test]
    fn single_job_scores_in_order() {
        let b = batcher(0);
        let triples = vec![Triple::new(1, 2, 3), Triple::new(4, 0, 9)];
        let scores = b.submit(triples);
        assert_eq!(scores, vec![10_203.0, 40_009.0]);
        assert_eq!(b.batches_run(), 1);
    }

    #[test]
    fn empty_job_is_free() {
        let b = batcher(0);
        assert!(b.submit(Vec::new()).is_empty());
        assert_eq!(b.batches_run(), 0);
    }

    #[test]
    fn concurrent_jobs_coalesce_and_split_correctly() {
        let metrics = Arc::new(HttpMetrics::new());
        let b = batcher_with(3_000, Some(Arc::clone(&metrics)));
        let mut handles = Vec::new();
        for worker in 0..8u32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let triples: Vec<Triple> =
                    (0..=worker).map(|i| Triple::new(worker, i % 4, i)).collect();
                let scores = b.submit(triples.clone());
                (triples, scores)
            }));
        }
        for h in handles {
            let (triples, scores) = h.join().unwrap();
            assert_eq!(scores.len(), triples.len());
            for (t, s) in triples.iter().zip(&scores) {
                assert_eq!(
                    *s,
                    t.head.0 as f32 * 10_000.0 + t.relation.0 as f32 * 100.0 + t.tail.0 as f32,
                    "job result misaligned for {t:?}"
                );
            }
        }
        // 8 concurrent jobs, 36 triples total, in (far) fewer than 8 passes.
        assert!(b.batches_run() <= 8);
        assert!(metrics.render().contains("kg_serve_score_batch_jobs_total 8"));
    }

    #[test]
    fn sequential_jobs_never_strand() {
        let b = batcher(100);
        for i in 0..20u32 {
            let scores = b.submit(vec![Triple::new(i % 5, 0, i % 7)]);
            assert_eq!(scores.len(), 1);
        }
        assert_eq!(b.batches_run(), 20);
    }

    #[test]
    fn window_widens_under_load_and_shrinks_when_idle() {
        let metrics = Arc::new(HttpMetrics::new());
        let b = batcher_with(50, Some(Arc::clone(&metrics)));
        assert_eq!(b.current_window_us(), 50);
        // A genuinely coalesced, large batch widens the window.
        b.adapt_window(3, WINDOW_GROW_TRIPLES);
        assert_eq!(b.current_window_us(), 100);
        // Repeated load saturates at the cap.
        for _ in 0..10 {
            b.adapt_window(4, WINDOW_GROW_TRIPLES * 2);
        }
        assert_eq!(b.current_window_us(), 50 * WINDOW_GROWTH_CAP);
        // Idle uncoalesced batches decay back to the base.
        for _ in 0..10 {
            b.adapt_window(1, 1);
        }
        assert_eq!(b.current_window_us(), 50);
        // The current window is exported in the metrics text.
        assert!(
            metrics.render().contains("kg_serve_score_batch_window_us{model=\"linear\"} 50"),
            "{}",
            metrics.render()
        );
        // End to end: submitting through the real path keeps the invariants.
        b.submit(vec![Triple::new(1, 0, 1)]);
        assert_eq!(b.current_window_us(), 50);
    }

    #[test]
    fn single_client_big_batches_never_widen_the_window() {
        // One job per batch (no coalescing): a longer sleep cannot help, so
        // the window must not ratchet up no matter the triple count.
        let b = batcher_with(50, None);
        for _ in 0..5 {
            let big: Vec<Triple> = (0..200u32).map(|i| Triple::new(i % 5, 0, i % 7)).collect();
            b.submit(big);
        }
        assert_eq!(b.current_window_us(), 50);
    }

    #[test]
    fn zero_base_window_never_adapts() {
        let b = batcher(0);
        b.adapt_window(8, 10_000);
        assert_eq!(b.current_window_us(), 0, "zero window means no sleeping, ever");
        let big: Vec<Triple> = (0..200u32).map(|i| Triple::new(i % 5, 0, i % 7)).collect();
        b.submit(big);
        assert_eq!(b.current_window_us(), 0);
    }

    /// Delegates to [`Linear`] but panics when scoring head 13 — the
    /// poison pill for the batch-poisoning regression test.
    struct PanicOnHead13 {
        inner: Linear,
    }

    impl KgcModel for PanicOnHead13 {
        fn name(&self) -> &'static str {
            "PanicOnHead13"
        }
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn num_entities(&self) -> usize {
            self.inner.num_entities()
        }
        fn num_relations(&self) -> usize {
            self.inner.num_relations()
        }
        fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
            assert_ne!(h.0, 13, "poison triple");
            self.inner.score(h, r, t)
        }
        fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
            self.inner.score_tails(h, r, out)
        }
        fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
            self.inner.score_heads(r, t, out)
        }
        fn score_tail_candidates(
            &self,
            h: EntityId,
            r: RelationId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            self.inner.score_tail_candidates(h, r, candidates, out)
        }
        fn score_head_candidates(
            &self,
            r: RelationId,
            t: EntityId,
            candidates: &[EntityId],
            out: &mut [f32],
        ) {
            self.inner.score_head_candidates(r, t, candidates, out)
        }
    }

    #[test]
    fn a_panicking_batch_poisons_its_jobs_instead_of_stranding_them() {
        // Regression: a panic in the execution pass used to fill *no*
        // slot, leaving every coalesced follower waiting on its condvar
        // forever (one stuck pool worker + connection permit each). Now
        // the leader poisons every drained slot before re-raising, so
        // each submitter fails its own request and the batcher recovers.
        let engine =
            Arc::new(ScoringEngine::new(Arc::new(PanicOnHead13 { inner: Linear { n: 50 } }), 1));
        let b = Arc::new(ScoreBatcher::new(engine, "poison", Duration::from_millis(5), 2, None));
        let mut handles = Vec::new();
        for worker in 0..6u32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let h = if worker == 0 { 13 } else { worker % 5 };
                b.submit(vec![Triple::new(h, 0, 1)])
            }));
        }
        // Every join RETURNS — a stranded follower would hang this loop.
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        assert!(
            outcomes.iter().any(|o| o.is_err()),
            "the batch containing the poison triple must fail its submitters"
        );
        for ok in outcomes.into_iter().flatten() {
            assert_eq!(ok.len(), 1, "innocent batches still score correctly");
        }
        // A fresh submission elects a new leader and succeeds.
        assert_eq!(b.submit(vec![Triple::new(1, 2, 3)]), vec![10_203.0]);
    }

    fn topk_batcher_with(
        window_us: u64,
        metrics: Option<Arc<HttpMetrics>>,
    ) -> (Arc<TopKBatcher>, Arc<ScoringEngine>, Arc<kg_core::FilterIndex>) {
        let engine = Arc::new(ScoringEngine::new(Arc::new(Linear { n: 50 }), 5));
        let triples: Vec<Triple> = (0..20u32).map(|i| Triple::new(i % 50, i % 4, i + 5)).collect();
        let filter = Arc::new(kg_core::FilterIndex::from_slices(&[&triples]));
        let b = Arc::new(TopKBatcher::new(
            Arc::clone(&engine),
            Arc::new(LiveGraph::new(Arc::clone(&filter))),
            "linear",
            Duration::from_micros(window_us),
            4,
            metrics,
        ));
        (b, engine, filter)
    }

    #[test]
    fn topk_single_job_matches_the_engine() {
        let (b, engine, filter) = topk_batcher_with(0, None);
        let queries = vec![
            TopKQuery { triple: Triple::new(3, 1, 0), side: QuerySide::Tail, k: 7, filtered: true },
            TopKQuery {
                triple: Triple::new(0, 2, 9),
                side: QuerySide::Head,
                k: 3,
                filtered: false,
            },
        ];
        let results = b.submit(queries.clone());
        assert_eq!(results.len(), 2);
        for (q, got) in queries.iter().zip(&results) {
            let known = if q.filtered { filter.known_answers(q.triple, q.side) } else { &[][..] };
            assert_eq!(got, &engine.top_k(q.triple, q.side, known, q.k), "{q:?}");
        }
        assert_eq!(b.batches_run(), 1);
        assert!(b.submit(Vec::new()).is_empty(), "empty jobs never run a batch");
        assert_eq!(b.batches_run(), 1);
    }

    #[test]
    fn topk_concurrent_jobs_coalesce_with_mixed_k_and_filtering() {
        let metrics = Arc::new(HttpMetrics::new());
        let (b, engine, filter) = topk_batcher_with(3_000, Some(Arc::clone(&metrics)));
        let mut handles = Vec::new();
        for worker in 0..8u32 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let queries: Vec<TopKQuery> = (0..=(worker % 3))
                    .map(|i| TopKQuery {
                        triple: Triple::new(worker, (i + worker) % 4, 0),
                        side: if i % 2 == 0 { QuerySide::Tail } else { QuerySide::Head },
                        k: 1 + (worker as usize + i as usize) % 9,
                        filtered: worker % 2 == 0,
                    })
                    .collect();
                (queries.clone(), b.submit(queries))
            }));
        }
        for h in handles {
            let (queries, results) = h.join().unwrap();
            assert_eq!(results.len(), queries.len());
            for (q, got) in queries.iter().zip(&results) {
                let known =
                    if q.filtered { filter.known_answers(q.triple, q.side) } else { &[][..] };
                assert_eq!(got, &engine.top_k(q.triple, q.side, known, q.k), "{q:?}");
            }
        }
        assert!(b.batches_run() <= 8, "concurrent jobs coalesced into fewer passes");
        assert!(
            metrics.render().contains("kg_serve_topk_batch_jobs_total 8"),
            "{}",
            metrics.render()
        );
    }

    #[test]
    fn topk_cache_hits_same_version_and_misses_after_touching_delta() {
        let metrics = Arc::new(HttpMetrics::new());
        let engine = Arc::new(ScoringEngine::new(Arc::new(Linear { n: 50 }), 5));
        let triples: Vec<Triple> = (0..20u32).map(|i| Triple::new(i % 50, i % 4, i + 5)).collect();
        let filter = Arc::new(kg_core::FilterIndex::from_slices(&[&triples]));
        let live = Arc::new(LiveGraph::new(filter));
        let b = TopKBatcher::new(
            Arc::clone(&engine),
            Arc::clone(&live),
            "linear",
            Duration::ZERO,
            2,
            Some(Arc::clone(&metrics)),
        );
        let q =
            TopKQuery { triple: Triple::new(3, 1, 0), side: QuerySide::Tail, k: 5, filtered: true };
        let other =
            TopKQuery { triple: Triple::new(9, 2, 0), side: QuerySide::Tail, k: 5, filtered: true };
        let first = b.submit(vec![q, other]);
        assert_eq!(b.batches_run(), 1);
        let again = b.submit(vec![q, other]);
        assert_eq!(again, first, "cached results are byte-identical");
        assert_eq!(b.batches_run(), 1, "a full cache hit runs no ranking pass");
        let text = metrics.render();
        assert!(text.contains("kg_serve_topk_cache_hits_total 2"), "{text}");
        assert!(text.contains("kg_serve_topk_cache_misses_total 2"), "{text}");

        // A delta touching (3, r1) tails invalidates q but not `other`.
        let delta =
            kg_core::GraphDelta::new(vec![Triple::new(3, 1, 42), Triple::new(3, 1, 7)], vec![]);
        let outcome = live.apply(&delta);
        b.invalidate(&outcome.keys, outcome.version);
        assert_eq!(b.cached_results(), 1, "only the touched entry is dropped");
        let post = b.submit(vec![q, other]);
        assert_eq!(b.batches_run(), 2, "the touched query re-ranks, the survivor hits");
        assert_eq!(post[1], first[1], "untouched query survives the delta");
        assert!(
            !post[0].iter().any(|&(e, _)| e == 42),
            "re-ranked result excludes the freshly inserted tail: {:?}",
            post[0]
        );
    }

    #[test]
    fn topk_unfiltered_entries_survive_deltas() {
        let engine = Arc::new(ScoringEngine::new(Arc::new(Linear { n: 50 }), 1));
        let filter = Arc::new(kg_core::FilterIndex::from_slices(&[&[Triple::new(1, 0, 2)][..]]));
        let live = Arc::new(LiveGraph::new(filter));
        let b = TopKBatcher::new(
            Arc::clone(&engine),
            Arc::clone(&live),
            "linear",
            Duration::ZERO,
            1,
            None,
        );
        let q =
            TopKQuery { triple: Triple::new(1, 0, 0), side: QuerySide::Tail, k: 3, filtered: true };
        b.submit(vec![q]);
        assert_eq!(b.cached_results(), 1);
        // Unfiltered entries survive any delta (they never read the graph).
        let unf = TopKQuery { filtered: false, ..q };
        b.submit(vec![unf]);
        assert_eq!(b.cached_results(), 2);
        let outcome = live.apply(&kg_core::GraphDelta::new(vec![Triple::new(1, 0, 9)], vec![]));
        b.invalidate(&outcome.keys, outcome.version);
        assert_eq!(
            b.cached_results(),
            1,
            "the filtered entry was touched; the unfiltered survives"
        );
        // The unfiltered survivor still hits at the new version.
        b.submit(vec![unf]);
        assert_eq!(b.batches_run(), 2, "unfiltered entry re-stamped, no extra pass");
    }

    #[test]
    fn topk_window_adapts_like_the_score_batcher() {
        let metrics = Arc::new(HttpMetrics::new());
        let (b, _, _) = topk_batcher_with(50, Some(Arc::clone(&metrics)));
        assert_eq!(b.current_window_us(), 50);
        b.adapt_window(2, TOPK_WINDOW_GROW_QUERIES);
        assert_eq!(b.current_window_us(), 100, "coalesced batches widen the window");
        for _ in 0..10 {
            b.adapt_window(3, TOPK_WINDOW_GROW_QUERIES * 2);
        }
        assert_eq!(b.current_window_us(), 50 * WINDOW_GROWTH_CAP);
        for _ in 0..10 {
            b.adapt_window(1, 1);
        }
        assert_eq!(b.current_window_us(), 50, "idle batches decay back to the base");
        // One job per batch never widens, no matter how many queries.
        b.adapt_window(1, 100);
        assert_eq!(b.current_window_us(), 50);
        assert!(
            metrics.render().contains("kg_serve_topk_batch_window_us{model=\"linear\"} 50"),
            "{}",
            metrics.render()
        );
    }
}
