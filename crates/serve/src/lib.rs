//! # kg-serve — evaluation as a service
//!
//! The paper's point is that recommender-guided sampled evaluation is fast
//! enough to run *continuously*; this crate makes that operational: a
//! dependency-free HTTP/1.1 service exposing trained KGC models for
//! scoring, top-k prediction, and sampled evaluation, so the fast estimator
//! **is** the serving path rather than an offline batch job.
//!
//! ## Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/score`        | POST | Score a batch of `(h, r, t)` triples (coalesced across concurrent requests, adaptive window) |
//! | `/topk`         | POST | Top-k tail/head prediction with filtered known-true removal (coalesced across concurrent requests, fanned out across queries × entity shards) |
//! | `/eval`         | POST | Sampled MRR / Hits@K over submitted triples ([`kg_eval::evaluate_sampled`]), version-stamped and LRU-cached |
//! | `/triples`      | POST | Stream triple inserts/deletes into the live graph; bumps the graph version and invalidates exactly the touched cache entries |
//! | `/monitor`      | GET  | Continuous-evaluation status per model (window size, latest MRR/Hits@K, drift alarm) |
//! | `/admin/models` | POST | Hot-reload a model snapshot; the registry entry flips atomically (the live graph and its version survive) |
//! | `/admin/models` | GET  | List registered models: shape, shard count, graph version, known triples |
//! | `/healthz`      | GET  | Liveness, uptime, registered models, this worker's shard ranges (on a gateway: per-backend health) |
//! | `/metrics`      | GET  | Prometheus text: request counts, p50/p99 latency, batch sizes + windows |
//! | `/shard/topk`   | POST | **Internal** (multi-node): `/topk`'s queries over this worker's entity range, as wire-encoded [`kg_core::partial::PartialTopK`]s |
//! | `/shard/rank`   | POST | **Internal** (multi-node): filtered-rank counters over this worker's range, as wire-encoded [`kg_core::partial::PartialRankCounts`] |
//!
//! ## Request/response schemas (JSON)
//!
//! `POST /score`:
//! ```json
//! {"model": "default", "triples": [[0, 1, 2], [5, 0, 7]]}
//! → {"model": "default", "count": 2, "scores": [3.1, -0.4]}
//! ```
//!
//! `POST /topk` (give `head` for tail prediction, `tail` for head
//! prediction; `filtered` defaults to `true`, `k` to 10):
//! ```json
//! {"model": "default", "queries": [{"head": 0, "relation": 1}], "k": 3}
//! → {"model": "default", "k": 3, "filtered": true,
//!    "results": [{"entities": [7, 2, 9], "scores": [2.4, 2.2, 1.9]}]}
//! ```
//!
//! `POST /eval` (strategy `random` | `static` | `probabilistic`; seeds are
//! deterministic, the `(strategy, n_s, seed)` candidate sample is
//! LRU-cached per model, and the full result is LRU-cached keyed on every
//! knob plus a fingerprint of the triples — valid only at the
//! `graph_version` it was computed against, so a write between two
//! identical calls forces a recompute):
//! ```json
//! {"model": "default", "triples": [[0, 1, 2]], "strategy": "random",
//!  "n_s": 50, "seed": 7, "include_ranks": false}
//! → {"model": "default", "strategy": "random", "n_s": 50, "seed": 7,
//!    "graph_version": 3, "sample_cache": "miss", "eval_cache": "miss",
//!    "num_queries": 2,
//!    "metrics": {"mrr": 0.41, "hits1": 0.3, "hits3": 0.45, "hits10": 0.7,
//!                "mean_rank": 5.5}, "seconds": 0.0012}
//! ```
//!
//! `POST /triples` (streaming ingest: batch inserts and/or deletes against
//! the model's live graph; no-op writes — inserting a known triple,
//! deleting an unknown one — don't bump the version):
//! ```json
//! {"model": "default", "insert": [[0, 1, 2]], "delete": [[5, 0, 7]]}
//! → {"model": "default", "version": 4, "inserted": 1, "deleted": 1,
//!    "known_triples": 1042}
//! ```
//!
//! `GET /admin/models` / `GET /monitor` (read-only introspection; see
//! [`monitor::MonitorStatus`] for the per-monitor fields):
//! ```json
//! → {"models": [{"name": "default", "family": "ComplEx", "entities": 100,
//!               "relations": 4, "dim": 32, "shards": 1,
//!               "graph_version": 4, "known_triples": 1042}]}
//! ```
//!
//! `POST /admin/models` (hot-reload; the snapshot is loaded before any
//! registry lock is taken, then the entry flips atomically — in-flight
//! requests finish on the model they started with; an existing entry keeps
//! its live graph — same `Arc`, version counter and applied deltas
//! included — and recommender artifacts, so the snapshot must match
//! its entity/relation counts; add `"token"` when
//! [`RegistryConfig::admin_token`] is set):
//! ```json
//! {"name": "default", "path": "/models/complex-v2.kgev"}
//! → {"model": "default", "status": "replaced", "entities": 100,
//!    "relations": 4, "shards": 1}
//! ```
//!
//! Responses round-trip floats through Rust's shortest-representation
//! formatter, so `/eval` metrics agree **bit-for-bit** with calling
//! [`kg_eval::evaluate_sampled`] in-process on the same seed.
//!
//! ## Connection semantics
//!
//! Connections are persistent and multiplexed by a single readiness
//! **reactor** thread (epoll/kqueue, std-only — see [`server`] and the
//! `reactor` module): pool workers execute parsed requests only, so open
//! connections cost a file descriptor and a buffer, never a thread.
//! HTTP/1.1 defaults to keep-alive (HTTP/1.0 to close), `Connection:
//! close` is honored in both directions, and pipelined requests on one
//! socket are answered in order with byte-identical bodies to the serial
//! path. The server separates an idle timeout (between requests) from the
//! in-request read timeout, caps the requests one connection may carry,
//! and admits at most [`ServerConfig::max_connections`] connections at
//! once — beyond that the reactor answers `503` with a `Retry-After`
//! header as a buffered non-blocking write. Framing failures (duplicate
//! `Content-Length`, header section over limits, …) are rejected before
//! routing and metered under the [`HTTP_PARSE_ENDPOINT`] label.
//! [`client::Connection`] is the matching reusable client (with
//! [`client::Connection::pipeline`]).
//!
//! ## Sharding
//!
//! Every registered model is wrapped in a [`kg_models::ScoringEngine`]
//! that partitions the entity space into contiguous shards
//! ([`RegistryConfig::shards`]; `0` = automatic, one shard per
//! `kg_core::parallel::DEFAULT_SHARD_TARGET` entities). `/topk` builds one
//! bounded heap per shard and merges them deterministically, so responses
//! are bit-for-bit identical for every shard count — sharding is purely a
//! locality/scale knob, never a semantics knob.
//!
//! The thread budget is split two ways at once
//! ([`kg_core::parallel::two_level_split`]): concurrent `/topk` requests
//! coalesce in the per-model [`TopKBatcher`] and the merged queries spread
//! across worker threads, while any spare threads fan each query's entity
//! shards out — so a lone query uses the whole budget instead of one core,
//! and a saturated batch degrades gracefully to pure query-parallelism.
//!
//! ## Multi-node deployment
//!
//! The same partition scales across machines: run one worker per node
//! with [`RegistryConfig::worker_shard`] set (worker `i` of `N` owns
//! `ShardPlan::new(|E|, N).range(i)`; every worker holds the full model —
//! the split is in ranking work, not storage) and put a
//! [`Router::gateway`] in front ([`Gateway`], [`GatewayConfig`]). The
//! gateway scatters `/topk` to every worker's internal `/shard/topk`,
//! chunks `/score` and `/eval` triples across workers, and merges the
//! partial results with the same [`kg_core::partial`] code the in-process
//! shard fan-out uses — so the fleet answers **byte-identically** to a
//! single-node server (all 7 families covered in `tests/gateway_http.rs`;
//! `/eval`'s wall-clock `"seconds"` is the one field that differs, as it
//! does between any two runs anywhere). Backend failures answer `503` +
//! `Retry-After` and are counted per backend; a fleet whose shard ranges
//! do not exactly tile the entity space is refused with `502` rather than
//! silently ranking over a partial range. Per-client fairness
//! ([`ServerConfig::client_bucket_size`]) meters connection admission per
//! remote IP with `429` + `Retry-After`, so one chatty client cannot
//! drain the global budget.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use kg_core::{FilterIndex, Triple};
//! use kg_models::{build_model, KgcModel, ModelKind};
//! use kg_serve::{serve, ModelRegistry, Router, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let model = build_model(ModelKind::ComplEx, 100, 4, 32, 42);
//! let train = [Triple::new(0, 0, 1)];
//! let filter = Arc::new(FilterIndex::from_slices(&[&train]));
//! registry.register("default", Arc::from(model as Box<dyn KgcModel>), filter);
//!
//! let router = Router::new(Arc::clone(&registry));
//! let server = serve(router, &ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! // … curl -d '{"model":"default","triples":[[0,0,1]]}' http://ADDR/score
//! server.shutdown();
//! ```

// Grown, not assumed: kg-lint (KL002/KL003) audits the code that *does*
// need unsafe — here exactly one module, the `poll` syscall shim, which
// opts in with a file-level allow; everything else stays forbidden in
// effect because this deny has no other escape hatch in the crate.
#![deny(unsafe_code)]

pub mod batch;
pub mod client;
pub mod gateway;
pub mod http_metrics;
pub mod json;
pub mod monitor;
mod poll;
mod reactor;
pub mod registry;
pub mod router;
pub mod server;

pub use batch::{ScoreBatcher, TopKBatcher, TopKQuery, TopKResults};
pub use client::{ClientConfig, Connection};
pub use gateway::{Gateway, GatewayConfig};
pub use http_metrics::HttpMetrics;
pub use json::{Json, JsonError};
pub use monitor::{Monitor, MonitorConfig, MonitorStatus};
pub use registry::{
    EvalKey, LruCache, ModelEntry, ModelRegistry, RegistryConfig, SampleKey, WorkerShard,
};
pub use router::{Response, Router};
pub use server::{serve, ServerConfig, ServerHandle, HTTP_PARSE_ENDPOINT};
