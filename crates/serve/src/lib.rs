//! # kg-serve — evaluation as a service
//!
//! The paper's point is that recommender-guided sampled evaluation is fast
//! enough to run *continuously*; this crate makes that operational: a
//! dependency-free HTTP/1.1 service exposing trained KGC models for
//! scoring, top-k prediction, and sampled evaluation, so the fast estimator
//! **is** the serving path rather than an offline batch job.
//!
//! ## Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/score`   | POST | Score a batch of `(h, r, t)` triples (coalesced across concurrent requests) |
//! | `/topk`    | POST | Top-k tail/head prediction with filtered known-true removal |
//! | `/eval`    | POST | Sampled MRR / Hits@K over submitted triples ([`kg_eval::evaluate_sampled`]) |
//! | `/healthz` | GET  | Liveness, uptime, registered models |
//! | `/metrics` | GET  | Prometheus text: request counts, p50/p99 latency, batch sizes |
//!
//! ## Request/response schemas (JSON)
//!
//! `POST /score`:
//! ```json
//! {"model": "default", "triples": [[0, 1, 2], [5, 0, 7]]}
//! → {"model": "default", "count": 2, "scores": [3.1, -0.4]}
//! ```
//!
//! `POST /topk` (give `head` for tail prediction, `tail` for head
//! prediction; `filtered` defaults to `true`, `k` to 10):
//! ```json
//! {"model": "default", "queries": [{"head": 0, "relation": 1}], "k": 3}
//! → {"model": "default", "k": 3, "filtered": true,
//!    "results": [{"entities": [7, 2, 9], "scores": [2.4, 2.2, 1.9]}]}
//! ```
//!
//! `POST /eval` (strategy `random` | `static` | `probabilistic`; seeds are
//! deterministic, and the `(strategy, n_s, seed)` candidate sample is
//! LRU-cached per model):
//! ```json
//! {"model": "default", "triples": [[0, 1, 2]], "strategy": "random",
//!  "n_s": 50, "seed": 7, "include_ranks": false}
//! → {"model": "default", "strategy": "random", "n_s": 50, "seed": 7,
//!    "sample_cache": "miss", "num_queries": 2,
//!    "metrics": {"mrr": 0.41, "hits1": 0.3, "hits3": 0.45, "hits10": 0.7,
//!                "mean_rank": 5.5}, "seconds": 0.0012}
//! ```
//!
//! Responses round-trip floats through Rust's shortest-representation
//! formatter, so `/eval` metrics agree **bit-for-bit** with calling
//! [`kg_eval::evaluate_sampled`] in-process on the same seed.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use kg_core::{FilterIndex, Triple};
//! use kg_models::{build_model, KgcModel, ModelKind};
//! use kg_serve::{serve, ModelRegistry, Router, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let model = build_model(ModelKind::ComplEx, 100, 4, 32, 42);
//! let train = [Triple::new(0, 0, 1)];
//! let filter = Arc::new(FilterIndex::from_slices(&[&train]));
//! registry.register("default", Arc::from(model as Box<dyn KgcModel>), filter);
//!
//! let router = Router::new(Arc::clone(&registry));
//! let server = serve(router, &ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.addr());
//! // … curl -d '{"model":"default","triples":[[0,0,1]]}' http://ADDR/score
//! server.shutdown();
//! ```

pub mod batch;
pub mod client;
pub mod http_metrics;
pub mod json;
pub mod registry;
pub mod router;
pub mod server;

pub use batch::ScoreBatcher;
pub use http_metrics::HttpMetrics;
pub use json::{Json, JsonError};
pub use registry::{LruCache, ModelEntry, ModelRegistry, RegistryConfig, SampleKey};
pub use router::{Response, Router};
pub use server::{serve, ServerConfig, ServerHandle};
