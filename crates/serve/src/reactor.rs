//! Readiness-based serving core: one reactor thread multiplexes every
//! connection over [`crate::poll::Poller`] (epoll/kqueue, level-triggered),
//! and pool workers are busy only while a fully parsed request executes.
//!
//! The shape is the classic single-threaded event loop feeding a worker
//! pool:
//!
//! * The reactor owns the non-blocking listener, a waker pipe, and a slab
//!   of per-connection state machines. Each connection moves through
//!   `Reading → Dispatched → Writing → (Reading | Lingering)`: bytes are
//!   buffered and framed incrementally by [`Parser`], a completed request
//!   is handed to the pool, the encoded response is flushed with
//!   partial-write resumption, and a kept-alive connection goes back to
//!   `Reading` (pipelined bytes already buffered are parsed immediately,
//!   preserving in-order responses).
//! * Workers block on one shared job queue. They run the router, encode
//!   the full wire response, and post a [`Completion`] back; a one-byte
//!   write to the waker pipe lifts the reactor out of `wait`.
//! * Deadlines (idle, in-request, write, linger) live in one binary heap
//!   keyed by `(Instant, seq)` with lazy invalidation — re-arming a
//!   connection just bumps its sequence number; stale heap entries are
//!   skipped when they surface.
//!
//! Everything observable about the protocol — status codes, error bodies,
//! header order, `Keep-Alive` advertisements, `Expect: 100-continue`
//! interim responses, lingering close — is byte-identical to the previous
//! blocking implementation; the tests pinning those semantics live in
//! `server.rs` and `tests/serve_http.rs` and run unchanged.

use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http_metrics::HttpMetrics;
use crate::poll::{Interest, Poller};
use crate::router::{Response, Router, MAX_BODY_BYTES};
use crate::server::{
    reason_phrase, ClientBuckets, ConnectionBudget, ConnectionPermit, ServerConfig,
    HTTP_PARSE_ENDPOINT, MAX_HEADER_BYTES, MAX_HEADER_COUNT,
};

/// Per-`read(2)` scratch size; also bounds the linger drain chunk.
const READ_CHUNK: usize = 8 * 1024;
/// A closing connection drains at most this many unread client bytes
/// (pipelined requests past the cap, a rejected request's body) before the
/// socket is dropped — enough to avoid an RST discarding the queued
/// response, bounded so a hostile client cannot hold reactor attention.
const LINGER_DRAIN_BYTES: usize = 32 * 1024;
/// How long a lingering connection may keep its slot.
const LINGER_TIMEOUT: Duration = Duration::from_millis(100);
/// Write deadline for 429/503 rejection responses (the old rejection
/// threads used the same one-second bound as a socket write timeout).
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_secs(1);
/// Rejection responses in flight are capped; past the cap a refused
/// connection is dropped unanswered, so a rejection storm cannot grow the
/// slab without limit. Replaces the old `MAX_INFLIGHT_REJECTS` thread cap.
pub(crate) const MAX_PENDING_REJECTS: usize = 1024;

/// Poll token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poll token for the read end of the waker pipe.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Slab tokens pack `(generation << 32) | slot`, so an event for a closed
/// and reused slot never reaches the wrong connection.
fn token(slot: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(slot)
}

/// Wakes the reactor out of `Poller::wait` (workers after posting a
/// completion, `ServerHandle::shutdown` after raising the stop flag).
pub(crate) struct Waker {
    tx: UnixStream,
}

impl Waker {
    pub(crate) fn wake(&self) {
        // A full pipe means a wake-up is already pending and a broken one
        // means the reactor is gone — both are fine to ignore.
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// One framed request as the worker pool sees it.
struct Request {
    method: String,
    path: String,
    body: String,
    /// Whether the *request* permits keeping the connection open
    /// (HTTP/1.1 default, `Connection` header honored both ways).
    keep_alive: bool,
}

/// What the response tells the client about the connection's future.
enum ConnDirective {
    /// Stay open: advertise the idle timeout and how many more requests
    /// this connection may carry.
    KeepAlive { timeout_secs: u64, remaining: usize },
    /// Close after this response.
    Close,
}

/// A parsed request queued for the worker pool.
struct Job {
    slot: u32,
    gen: u32,
    request: Request,
    directive: ConnDirective,
    keep: bool,
    enqueued: Instant,
}

/// What a worker hands back to the reactor.
struct Completion {
    slot: u32,
    gen: u32,
    outcome: Outcome,
}

enum Outcome {
    /// Fully encoded wire bytes; `keep` says whether the connection
    /// returns to `Reading` after the flush or lingers to close.
    Respond { bytes: Vec<u8>, keep: bool },
    /// The handler panicked: close without a response (one connection
    /// lost, not one pool worker).
    Abort,
}

/// Encode a response exactly as the blocking server did: status line,
/// `Content-Type`, `Content-Length`, optional `Retry-After`, then the
/// connection directive.
fn encode_response(response: &Response, directive: &ConnDirective) -> Vec<u8> {
    let connection = match directive {
        ConnDirective::KeepAlive { timeout_secs, remaining } => format!(
            "Connection: keep-alive\r\nKeep-Alive: timeout={timeout_secs}, max={remaining}\r\n"
        ),
        ConnDirective::Close => "Connection: close\r\n".to_string(),
    };
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry_after}{connection}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    let mut bytes = Vec::with_capacity(head.len() + response.body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

// ---------------------------------------------------------------------------
// Incremental request parser
// ---------------------------------------------------------------------------

/// What one [`Parser::advance`] call concluded.
enum Step {
    /// Nothing decidable yet; feed more bytes (or readiness).
    NeedMore,
    /// Headers passed every framing check and the client expects a
    /// `100 Continue` before sending the body. Emitted at most once.
    Interim,
    /// A complete framed request.
    Complete(Request),
    /// Framing failure: `(status, message)` — answer it and close.
    Error(u16, &'static str),
    /// EOF (or idle expiry) before a request line: the normal end of a
    /// kept-alive connection. Close without writing anything.
    CleanClose,
    /// The peer died mid-body; no framing left to trust and usually no
    /// reader for a reply. Close silently.
    SilentClose,
}

enum LineFill {
    /// A complete line (or the EOF-flushed tail of one) sits in `line`.
    Line,
    /// Out of input mid-line.
    NeedMore,
    /// EOF at a line boundary.
    CleanEof,
    /// The header budget is exhausted.
    Over,
}

enum LineStep {
    Continue,
    Interim,
    Fail(u16, &'static str),
}

enum PState {
    RequestLine,
    Headers,
    Body,
}

/// Incremental HTTP/1.x request framer. Mirrors the old blocking
/// `read_request` decision-for-decision — same statuses, same messages,
/// same budget accounting — but consumes whatever bytes are available and
/// parks with [`Step::NeedMore`] instead of blocking on the socket.
struct Parser {
    state: PState,
    /// When the request's first byte arrived: the in-request deadline
    /// anchor, and what parse-failure latency is measured from.
    started: Option<Instant>,
    /// Remaining header-section byte budget (request line + headers,
    /// newlines included).
    budget: usize,
    /// The line being accumulated (terminator included).
    line: Vec<u8>,
    blank_lines: usize,
    method: String,
    path: String,
    http10: bool,
    content_length: Option<usize>,
    conn_close: bool,
    conn_keep_alive: bool,
    expect_continue: bool,
    interim_sent: bool,
    header_count: usize,
    body: Vec<u8>,
}

impl Parser {
    fn new() -> Parser {
        Parser {
            state: PState::RequestLine,
            started: None,
            budget: MAX_HEADER_BYTES,
            line: Vec::new(),
            blank_lines: 0,
            method: String::new(),
            path: String::new(),
            http10: false,
            content_length: None,
            conn_close: false,
            conn_keep_alive: false,
            expect_continue: false,
            interim_sent: false,
            header_count: 0,
            body: Vec::new(),
        }
    }

    /// Forget the finished request; the next byte starts a fresh one.
    fn reset(&mut self) {
        *self = Parser::new();
    }

    /// Consume from `input`; returns how many bytes were taken and what
    /// the parser concluded. `eof` means no more bytes will ever come —
    /// a partial line is then flushed as complete, exactly like the
    /// blocking reader's `read_line_limited` behaved at EOF.
    fn advance(&mut self, input: &[u8], eof: bool) -> (usize, Step) {
        let mut consumed = 0usize;
        loop {
            match self.state {
                PState::RequestLine | PState::Headers => {
                    match self.fill_line(input, &mut consumed, eof) {
                        LineFill::NeedMore => return (consumed, Step::NeedMore),
                        LineFill::Over => {
                            return (consumed, Step::Error(431, "request header section too large"))
                        }
                        LineFill::CleanEof => {
                            let step = match self.state {
                                PState::RequestLine => Step::CleanClose,
                                _ => Step::Error(400, "connection closed mid-headers"),
                            };
                            return (consumed, step);
                        }
                        LineFill::Line => {
                            let step = match self.state {
                                PState::RequestLine => self.take_request_line(),
                                _ => self.take_header_line(),
                            };
                            match step {
                                LineStep::Continue => {}
                                LineStep::Interim => return (consumed, Step::Interim),
                                LineStep::Fail(status, msg) => {
                                    return (consumed, Step::Error(status, msg))
                                }
                            }
                        }
                    }
                }
                PState::Body => {
                    let total = self.content_length.unwrap_or(0);
                    let need = total.saturating_sub(self.body.len());
                    // PANIC-OK: `consumed <= input.len()` by construction.
                    let avail = &input[consumed..];
                    let take = need.min(avail.len());
                    // PANIC-OK: `take <= avail.len()` via the `min` above.
                    self.body.extend_from_slice(&avail[..take]);
                    consumed += take;
                    if take > 0 {
                        self.started.get_or_insert_with(Instant::now);
                    }
                    if self.body.len() >= total {
                        return (consumed, self.finish_request());
                    }
                    if eof {
                        return (consumed, Step::SilentClose);
                    }
                    return (consumed, Step::NeedMore);
                }
            }
        }
    }

    /// Pull bytes into `line` until a `\n` (or EOF), charging the shared
    /// header budget per byte consumed — a line longer than the remaining
    /// budget fails before buffering without bound.
    fn fill_line(&mut self, input: &[u8], consumed: &mut usize, eof: bool) -> LineFill {
        loop {
            // PANIC-OK: `*consumed <= input.len()` by construction.
            let avail = &input[*consumed..];
            if avail.is_empty() {
                if !eof {
                    return LineFill::NeedMore;
                }
                return if self.line.is_empty() { LineFill::CleanEof } else { LineFill::Line };
            }
            let (take, done) = match avail.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (avail.len(), false),
            };
            if take > self.budget {
                return LineFill::Over;
            }
            self.budget -= take;
            // PANIC-OK: both arms above bound `take` by `avail.len()`.
            self.line.extend_from_slice(&avail[..take]);
            *consumed += take;
            self.started.get_or_insert_with(Instant::now);
            if done {
                return LineFill::Line;
            }
        }
    }

    fn take_request_line(&mut self) -> LineStep {
        let Ok(line) = std::str::from_utf8(&self.line) else {
            return LineStep::Fail(400, "request line is not valid UTF-8");
        };
        // RFC 9112 §2.2: ignore at least one CRLF before the request line
        // (hand-rolled clients often send a stray one after a body).
        if line.trim_end().is_empty() {
            self.line.clear();
            self.blank_lines += 1;
            if self.blank_lines > 2 {
                return LineStep::Fail(400, "empty request line");
            }
            return LineStep::Continue;
        }
        let mut parts = line.split_whitespace();
        let Some(method) = parts.next() else {
            return LineStep::Fail(400, "empty request line");
        };
        let Some(target) = parts.next() else {
            return LineStep::Fail(400, "missing request target");
        };
        let Some(version) = parts.next() else {
            return LineStep::Fail(400, "missing HTTP version");
        };
        if !version.starts_with("HTTP/1.") {
            return LineStep::Fail(400, "unsupported HTTP version");
        }
        let http10 = version == "HTTP/1.0";
        let method = method.to_string();
        // Ignore any query string; the API is body-driven.
        let path = target.split('?').next().unwrap_or(target).to_string();
        self.method = method;
        self.path = path;
        self.http10 = http10;
        self.line.clear();
        self.state = PState::Headers;
        LineStep::Continue
    }

    fn take_header_line(&mut self) -> LineStep {
        let Ok(header) = std::str::from_utf8(&self.line) else {
            return LineStep::Fail(400, "header is not valid UTF-8");
        };
        let header = header.trim_end();
        if header.is_empty() {
            self.line.clear();
            return self.end_of_headers();
        }
        self.header_count += 1;
        if self.header_count > MAX_HEADER_COUNT {
            return LineStep::Fail(431, "too many request headers");
        }
        // RFC 9112 §5.2: obs-fold continuation lines must be rejected (or
        // folded) — silently treating " Content-Length: 999" as an
        // unrecognized standalone header while an obs-fold-aware peer
        // folds it into the previous field's value is a framing desync.
        if header.starts_with([' ', '\t']) {
            return LineStep::Fail(400, "obsolete header line folding not supported");
        }
        if let Some((name, value)) = header.split_once(':') {
            // RFC 9112 §5.1: whitespace between the field name and the
            // colon must be rejected — an intermediary that *normalizes*
            // "Content-Length :" would frame the stream differently than
            // one that, like the match below, fails to recognize it.
            if name.ends_with([' ', '\t']) {
                return LineStep::Fail(400, "whitespace before header colon");
            }
            if name.eq_ignore_ascii_case("content-length") {
                // DIGIT-only per RFC 9110: `str::parse` would also accept
                // "+5", which a fronting intermediary may frame differently
                // — the same desync class as duplicate Content-Length.
                let value = value.trim();
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return LineStep::Fail(400, "invalid Content-Length");
                }
                let Ok(parsed) = value.parse::<usize>() else {
                    return LineStep::Fail(400, "invalid Content-Length");
                };
                // Accepting the last (or any) of several Content-Length
                // values silently would let two framings of one byte stream
                // coexist — the classic request-smuggling setup once
                // requests share a connection.
                if self.content_length.replace(parsed).is_some() {
                    return LineStep::Fail(400, "duplicate Content-Length header");
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // We implement no transfer codings at all, and RFC 9112
                // says to 501 codings we don't — silently framing a coded
                // body by Content-Length (or as empty) while a TE-aware
                // intermediary frames it by the coding is a CL.TE desync.
                return LineStep::Fail(501, "transfer encodings not supported");
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        self.conn_close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        self.conn_keep_alive = true;
                    }
                }
            } else if name.eq_ignore_ascii_case("expect") {
                // RFC 9110 §10.1.1: 100-continue is the only expectation
                // defined; anything else is answered 417.
                if value.trim().eq_ignore_ascii_case("100-continue") {
                    self.expect_continue = true;
                } else {
                    return LineStep::Fail(417, "unsupported Expect value");
                }
            }
        }
        self.line.clear();
        LineStep::Continue
    }

    fn end_of_headers(&mut self) -> LineStep {
        let content_length = self.content_length.unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return LineStep::Fail(413, "request body too large");
        }
        self.state = PState::Body;
        // Capacity is bounded: a claimed Content-Length is not trusted
        // with a 64 MiB allocation before any body byte arrives.
        self.body = Vec::with_capacity(content_length.min(READ_CHUNK));
        // The expectation is only honored once the headers passed every
        // framing check above — a rejected request gets its final status
        // without an interim 100 (the "reject early" path). HTTP/1.0 peers
        // never get a 100 (RFC 9110 §10.1.1), and a body-less request has
        // nothing to continue into.
        if self.expect_continue && !self.http10 && content_length > 0 && !self.interim_sent {
            self.interim_sent = true;
            return LineStep::Interim;
        }
        LineStep::Continue
    }

    fn finish_request(&mut self) -> Step {
        let body_bytes = std::mem::take(&mut self.body);
        let Ok(body) = String::from_utf8(body_bytes) else {
            return Step::Error(400, "body is not UTF-8");
        };
        let keep_alive = !self.conn_close && (!self.http10 || self.conn_keep_alive);
        Step::Complete(Request {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            body,
            keep_alive,
        })
    }
}

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Phase {
    /// Waiting for (or mid-way through) a framed request. Idle when
    /// `parser.started` is `None`, in-request otherwise.
    Reading,
    /// A request is at the worker pool. Read interest is off — pipelined
    /// bytes wait in the kernel buffer, preserving in-order responses.
    Dispatched,
    /// Flushing `outbuf`. `keep` decides what follows the final byte.
    Writing { keep: bool },
    /// Final response flushed and `shutdown(Write)` sent; draining unread
    /// client bytes briefly so the close sends FIN, not RST.
    Lingering,
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Holds a connection-budget slot for admitted connections; rejection
    /// responses carry `None`.
    _permit: Option<ConnectionPermit>,
    /// Whether this connection counts in the opened/active/closed gauges
    /// (admitted yes, rejections no — matching the old accounting).
    counted: bool,
    phase: Phase,
    parser: Parser,
    /// Bytes read but not yet consumed by the parser (pipelined requests
    /// accumulate here while a response is in flight).
    inbuf: Vec<u8>,
    inpos: usize,
    outbuf: Vec<u8>,
    outpos: usize,
    served: usize,
    /// `(when, seq)` of the armed deadline; heap entries with a different
    /// seq are stale.
    deadline: Option<(Instant, u64)>,
    /// Interest currently registered with the poller.
    interest: Interest,
    peer_eof: bool,
    /// Linger-drain byte count.
    drained: usize,
}

impl Conn {
    fn new(stream: TcpStream, permit: Option<ConnectionPermit>, counted: bool) -> Conn {
        Conn {
            stream,
            gen: 0,
            _permit: permit,
            counted,
            phase: Phase::Reading,
            parser: Parser::new(),
            inbuf: Vec::new(),
            inpos: 0,
            outbuf: Vec::new(),
            outpos: 0,
            served: 0,
            deadline: None,
            interest: Interest::new(false, false),
            peer_eof: false,
            drained: 0,
        }
    }
}

/// Generational slab: slot indices are reused, generations are not, so a
/// readiness event for a closed connection can never act on its successor.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl Slab {
    fn new() -> Slab {
        Slab { slots: Vec::new(), gens: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, mut conn: Conn) -> (u32, u32) {
        match self.free.pop() {
            Some(slot) => {
                let gen = self.gens.get(slot as usize).copied().unwrap_or(0);
                conn.gen = gen;
                if let Some(entry) = self.slots.get_mut(slot as usize) {
                    *entry = Some(conn);
                }
                (slot, gen)
            }
            None => {
                let slot = self.slots.len() as u32;
                conn.gen = 0;
                self.slots.push(Some(conn));
                self.gens.push(0);
                (slot, 0)
            }
        }
    }

    fn get_mut(&mut self, slot: u32) -> Option<&mut Conn> {
        self.slots.get_mut(slot as usize)?.as_mut()
    }

    fn valid(&self, slot: u32, gen: u32) -> bool {
        matches!(self.slots.get(slot as usize), Some(Some(c)) if c.gen == gen)
    }

    fn phase(&self, slot: u32) -> Option<Phase> {
        Some(self.slots.get(slot as usize)?.as_ref()?.phase)
    }

    fn remove(&mut self, slot: u32) -> Option<Conn> {
        let conn = self.slots.get_mut(slot as usize)?.take()?;
        if let Some(g) = self.gens.get_mut(slot as usize) {
            *g = g.wrapping_add(1);
        }
        self.free.push(slot);
        Some(conn)
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn occupied(&self) -> Vec<u32> {
        self.slots.iter().enumerate().filter(|(_, s)| s.is_some()).map(|(i, _)| i as u32).collect()
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

struct WorkerCtx {
    jobs: Arc<Mutex<Receiver<Job>>>,
    done: Sender<Completion>,
    router: Arc<Router>,
    metrics: Arc<HttpMetrics>,
    waker: Arc<Waker>,
    idle_timeout: Duration,
}

fn worker_loop(ctx: WorkerCtx) {
    loop {
        // PANIC-OK: queue mutex poisoning means another worker panicked
        // outside its catch_unwind — unrecoverable, and rethrowing here is
        // the only honest option.
        // HELD-OK: this mutex exists solely to serialize recv() across
        // pool workers (std mpsc receivers are !Sync); the guard dies at
        // the end of this statement, before the job runs. Blocking here IS
        // the idle state of the pool.
        let job = match ctx.jobs.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // reactor gone: drain complete
        };
        let completion = run_job(&ctx, job);
        if ctx.done.send(completion).is_err() {
            return;
        }
        ctx.waker.wake();
    }
}

fn run_job(ctx: &WorkerCtx, job: Job) -> Completion {
    let Job { slot, gen, request, directive, keep, enqueued } = job;
    let waited = enqueued.elapsed();
    if waited >= ctx.idle_timeout {
        // A request that sat queued behind busy peers longer than the idle
        // timeout is answered 408 instead of being served stale to a
        // client that has likely given up (the reactor-era analogue of the
        // old accept-queue staleness check).
        ctx.metrics.observe_request(HTTP_PARSE_ENDPOINT, waited.as_micros() as u64, 408);
        let resp = Response::error(408, "request queued longer than the idle timeout");
        let bytes = encode_response(&resp, &ConnDirective::Close);
        return Completion { slot, gen, outcome: Outcome::Respond { bytes, keep: false } };
    }
    // catch_unwind: a panicking handler (poisoned lock, model bug) must
    // cost one connection, not one pool worker.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.router.handle(&request.method, &request.path, &request.body)
    }));
    match result {
        Ok(response) => {
            let bytes = encode_response(&response, &directive);
            Completion { slot, gen, outcome: Outcome::Respond { bytes, keep } }
        }
        Err(_) => Completion { slot, gen, outcome: Outcome::Abort },
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    waker_rx: UnixStream,
    conns: Slab,
    /// Min-heap of `(when, seq, slot, gen)`; lazily invalidated.
    deadlines: BinaryHeap<std::cmp::Reverse<(Instant, u64, u32, u32)>>,
    next_seq: u64,
    rejects_live: usize,
    stopping: bool,
    metrics: Arc<HttpMetrics>,
    stop: Arc<AtomicBool>,
    buckets: Option<ClientBuckets>,
    budget: Arc<ConnectionBudget>,
    job_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests: usize,
    retry_after_secs: u64,
}

/// What [`spawn`] hands back: the reactor's join handle, the worker
/// pool's join handles, and the waker `ServerHandle::shutdown` uses to
/// interrupt `wait`.
pub(crate) type SpawnedServer = (JoinHandle<()>, Vec<JoinHandle<()>>, Arc<Waker>);

/// Start the reactor thread and its worker pool over an already-bound
/// listener.
pub(crate) fn spawn(
    listener: TcpListener,
    router: Arc<Router>,
    metrics: Arc<HttpMetrics>,
    stop: Arc<AtomicBool>,
    config: &ServerConfig,
) -> io::Result<SpawnedServer> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    let (waker_tx, waker_rx) = UnixStream::pair()?;
    waker_tx.set_nonblocking(true)?;
    waker_rx.set_nonblocking(true)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.register(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
    let waker = Arc::new(Waker { tx: waker_tx });

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let jobs = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let ctx = WorkerCtx {
                jobs: Arc::clone(&jobs),
                done: done_tx.clone(),
                router: Arc::clone(&router),
                metrics: Arc::clone(&metrics),
                waker: Arc::clone(&waker),
                idle_timeout: config.idle_timeout,
            };
            std::thread::spawn(move || worker_loop(ctx))
        })
        .collect();
    drop(done_tx); // only workers hold senders

    metrics.set_reactor_fds(2); // listener + waker
    let reactor = Reactor {
        poller,
        listener: Some(listener),
        waker_rx,
        conns: Slab::new(),
        deadlines: BinaryHeap::new(),
        next_seq: 0,
        rejects_live: 0,
        stopping: false,
        metrics,
        stop,
        buckets: ClientBuckets::new(config.client_bucket_size, config.client_bucket_refill_per_sec),
        budget: ConnectionBudget::new(config.max_connections),
        job_tx,
        done_rx,
        read_timeout: config.read_timeout,
        idle_timeout: config.idle_timeout,
        max_requests: config.max_requests_per_connection.max(1),
        retry_after_secs: config.retry_after_secs,
    };
    let handle = std::thread::spawn(move || reactor.run());
    Ok((handle, workers, waker))
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            // ORDERING: SeqCst pairs with the store in
            // `ServerHandle::shutdown` — once per tick, cost is noise.
            if !self.stopping && self.stop.load(Ordering::SeqCst) {
                self.begin_shutdown();
            }
            if self.stopping && self.conns.len() == 0 {
                break;
            }
            let timeout = self.poll_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // EBADF/EINVAL here is a reactor bug, not a transient
                // condition; tearing down is the only honest option.
                break;
            }
            self.metrics.observe_reactor_tick(events.len());
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    tok => self.conn_event(tok, ev.readable, ev.writable),
                }
            }
            self.drain_completions();
            self.fire_deadlines();
        }
        // Dropping `self` closes every remaining socket and the job
        // channel; workers observe the closed channel and exit.
    }

    /// Sleep until the earliest armed deadline (possibly stale — a stale
    /// entry just causes one early wake-up), or forever if none.
    fn poll_timeout(&self) -> Option<Duration> {
        let std::cmp::Reverse((when, _, _, _)) = self.deadlines.peek()?;
        Some(when.saturating_duration_since(Instant::now()))
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    // -- admission ---------------------------------------------------------

    fn accept_ready(&mut self) {
        if self.stopping {
            return;
        }
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, peer)) => self.admit(stream, peer),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // WouldBlock: backlog drained. Other errors (ECONNABORTED,
                // EMFILE) yield to the event loop instead of spinning.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) {
        // Accepted sockets do not inherit the listener's non-blocking flag.
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        // Per-client fairness gate first: one chatty client must not be
        // able to reach (and drain) the shared budget at all once its own
        // allowance is spent.
        if let Some(buckets) = self.buckets.as_mut() {
            if let Err(wait) = buckets.admit(peer.ip(), Instant::now()) {
                self.metrics.connection_throttled();
                self.start_reject(stream, 429, "client connection budget exhausted", wait);
                return;
            }
        }
        let Some(permit) = self.budget.try_acquire() else {
            self.metrics.connection_rejected();
            let secs = self.retry_after_secs;
            self.start_reject(stream, 503, "server at connection capacity", secs);
            return;
        };
        self.metrics.connection_opened();
        let conn = Conn::new(stream, Some(permit), true);
        if let Some(slot) = self.insert_conn(conn) {
            self.arm_deadline(slot, Instant::now() + self.idle_timeout);
        }
    }

    /// Queue a 429/503 rejection as an ordinary buffered write on a
    /// permit-less connection — no spawned thread, no blocking write.
    fn start_reject(&mut self, stream: TcpStream, status: u16, message: &str, retry_after: u64) {
        if self.rejects_live >= MAX_PENDING_REJECTS {
            // Past the cap the connection is dropped unanswered; the
            // client sees a plain close.
            return;
        }
        let response = Response::error(status, message).with_retry_after(retry_after);
        let mut conn = Conn::new(stream, None, false);
        conn.outbuf = encode_response(&response, &ConnDirective::Close);
        conn.phase = Phase::Writing { keep: false };
        if let Some(slot) = self.insert_conn(conn) {
            self.rejects_live += 1;
            self.arm_deadline(slot, Instant::now() + REJECT_WRITE_TIMEOUT);
            self.flush(slot);
            self.update_interest(slot);
        }
    }

    /// Insert and register a connection; returns its slot, or `None` if
    /// poller registration failed (the connection is dropped).
    fn insert_conn(&mut self, conn: Conn) -> Option<u32> {
        let fd = conn.stream.as_raw_fd();
        let counted = conn.counted;
        let (slot, gen) = self.conns.insert(conn);
        if self.poller.register(fd, token(slot, gen), Interest::new(false, false)).is_err() {
            drop(self.conns.remove(slot));
            if counted {
                // `connection_opened` already ran; balance the gauge.
                self.metrics.connection_closed();
            }
            return None;
        }
        self.update_gauge();
        self.update_interest(slot);
        Some(slot)
    }

    // -- readiness handling ------------------------------------------------

    fn conn_event(&mut self, tok: u64, readable: bool, writable: bool) {
        let slot = (tok & 0xFFFF_FFFF) as u32;
        let gen = (tok >> 32) as u32;
        if !self.conns.valid(slot, gen) {
            return; // stale event for a closed (possibly reused) slot
        }
        if writable {
            self.flush(slot);
        }
        if readable && self.conns.valid(slot, gen) {
            match self.conns.phase(slot) {
                Some(Phase::Reading) => self.read_and_parse(slot),
                Some(Phase::Lingering) => self.linger_drain(slot),
                // No read interest in other phases; a level-triggered
                // leftover is ignored.
                _ => {}
            }
        }
        if self.conns.valid(slot, gen) {
            self.update_interest(slot);
        }
    }

    /// Reconcile the poller's interest set with the connection's phase:
    /// read while framing or lingering, write while `outbuf` has unsent
    /// bytes (interim 100s included, whatever the phase).
    fn update_interest(&mut self, slot: u32) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let desired = Interest::new(
            matches!(conn.phase, Phase::Reading | Phase::Lingering),
            conn.outpos < conn.outbuf.len(),
        );
        if desired != conn.interest {
            let tok = token(slot, conn.gen);
            let fd = conn.stream.as_raw_fd();
            if self.poller.reregister(fd, tok, desired).is_ok() {
                conn.interest = desired;
            } else {
                self.close(slot);
            }
        }
    }

    /// Drive the parser over buffered + newly readable bytes until it
    /// blocks, completes a request, or fails.
    fn read_and_parse(&mut self, slot: u32) {
        loop {
            let read_timeout = self.read_timeout;
            let Some(conn) = self.conns.get_mut(slot) else { return };
            if !matches!(conn.phase, Phase::Reading) {
                return;
            }
            // PANIC-OK: `inpos <= inbuf.len()` by construction.
            let (consumed, step) = conn.parser.advance(&conn.inbuf[conn.inpos..], conn.peer_eof);
            conn.inpos += consumed;
            if conn.inpos >= conn.inbuf.len() {
                conn.inbuf.clear();
                conn.inpos = 0;
            }
            match step {
                Step::NeedMore => {
                    let mut chunk = [0u8; READ_CHUNK];
                    match (&conn.stream).read(&mut chunk) {
                        Ok(0) => conn.peer_eof = true,
                        // PANIC-OK: `read` returns `n <= chunk.len()`.
                        Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Park until the next readable event. Once the
                            // request has begun, the wait is bounded by the
                            // in-request deadline (arm once per request).
                            if let Some(t0) = conn.parser.started {
                                let target = t0 + read_timeout;
                                if conn.deadline.map(|(t, _)| t) != Some(target) {
                                    self.arm_deadline(slot, target);
                                }
                            }
                            return;
                        }
                        Err(_) => {
                            // The peer died mid-request; there is no
                            // framing left to trust and usually no reader
                            // for a reply.
                            self.close(slot);
                            return;
                        }
                    }
                }
                Step::Interim => {
                    conn.outbuf.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                    self.flush(slot);
                }
                Step::Complete(request) => {
                    self.dispatch(slot, request);
                    return;
                }
                Step::Error(status, msg) => {
                    self.respond_error(slot, status, msg);
                    return;
                }
                Step::CleanClose | Step::SilentClose => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Hand a framed request to the worker pool. The keep decision is
    /// taken here — before the handler runs — exactly as the blocking
    /// loop did.
    fn dispatch(&mut self, slot: u32, request: Request) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        conn.served += 1;
        if conn.served > 1 {
            self.metrics.connection_reused();
        }
        let remaining = self.max_requests.saturating_sub(conn.served);
        // ORDERING: SeqCst pairs with the store in `ServerHandle::
        // shutdown`; once per request, not per byte, so the fence cost is
        // noise.
        let keep = request.keep_alive && remaining > 0 && !self.stop.load(Ordering::SeqCst);
        let directive = if keep {
            // Floor, never round up: advertising more idle time than the
            // server grants invites writes into a closed socket
            // (sub-second configs honestly advertise `timeout=0`).
            ConnDirective::KeepAlive { timeout_secs: self.idle_timeout.as_secs(), remaining }
        } else {
            ConnDirective::Close
        };
        conn.phase = Phase::Dispatched;
        conn.parser.reset();
        conn.deadline = None;
        let gen = conn.gen;
        let job = Job { slot, gen, request, directive, keep, enqueued: Instant::now() };
        if self.job_tx.send(job).is_err() {
            self.close(slot);
        }
    }

    /// Answer an HTTP-layer framing failure and close. Counted under one
    /// synthetic endpoint label; latency counts from the request's first
    /// byte, not from when the client last went idle on the socket.
    fn respond_error(&mut self, slot: u32, status: u16, msg: &'static str) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let latency = conn.parser.started.map_or(0, |t| t.elapsed().as_micros() as u64);
        self.metrics.observe_request(HTTP_PARSE_ENDPOINT, latency, status);
        let response = Response::error(status, msg);
        // After any pending interim bytes, preserving write order.
        conn.outbuf.extend_from_slice(&encode_response(&response, &ConnDirective::Close));
        conn.phase = Phase::Writing { keep: false };
        self.arm_deadline(slot, Instant::now() + self.read_timeout);
        self.flush(slot);
    }

    /// Flush `outbuf` as far as the socket allows; on completion the
    /// phase decides what happens next.
    fn flush(&mut self, slot: u32) {
        loop {
            let Some(conn) = self.conns.get_mut(slot) else { return };
            if conn.outpos >= conn.outbuf.len() {
                conn.outbuf.clear();
                conn.outpos = 0;
                break;
            }
            // PANIC-OK: `outpos < outbuf.len()` checked above.
            match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Kernel buffer full: resume on the next writable event.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // The peer is gone; the response is undeliverable. Close
                // without lingering, like the old write-error path.
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.on_flushed(slot);
    }

    fn on_flushed(&mut self, slot: u32) {
        let phase = match self.conns.get_mut(slot) {
            Some(conn) => conn.phase,
            None => return,
        };
        match phase {
            Phase::Writing { keep: true } => {
                if self.stopping {
                    self.close(slot);
                    return;
                }
                if let Some(conn) = self.conns.get_mut(slot) {
                    conn.phase = Phase::Reading;
                    conn.deadline = None;
                }
                // Between requests the full idle budget applies again.
                self.arm_deadline(slot, Instant::now() + self.idle_timeout);
                // Pipelined bytes may already be buffered; parse them now
                // rather than waiting for new readiness.
                self.read_and_parse(slot);
            }
            Phase::Writing { keep: false } => self.start_linger(slot),
            // An interim `100 Continue` drained while the request is still
            // being framed or executed: nothing to transition.
            Phase::Reading | Phase::Dispatched | Phase::Lingering => {}
        }
    }

    /// Close a connection we wrote a final response on without destroying
    /// that response: signal EOF, then drain briefly (bounded, so a
    /// hostile client cannot hold the reactor's attention) and let the
    /// socket close with FIN instead of RST.
    fn start_linger(&mut self, slot: u32) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.phase = Phase::Lingering;
        conn.deadline = None;
        self.arm_deadline(slot, Instant::now() + LINGER_TIMEOUT);
        self.linger_drain(slot);
    }

    fn linger_drain(&mut self, slot: u32) {
        loop {
            let Some(conn) = self.conns.get_mut(slot) else { return };
            let mut sink = [0u8; READ_CHUNK];
            match (&conn.stream).read(&mut sink) {
                Ok(0) => {
                    // Peer FIN: both directions are done.
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.drained += n;
                    if conn.drained >= LINGER_DRAIN_BYTES {
                        self.close(slot);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // WouldBlock: wait for more bytes or the linger deadline.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    // -- completions and deadlines ----------------------------------------

    fn drain_completions(&mut self) {
        while let Ok(Completion { slot, gen, outcome }) = self.done_rx.try_recv() {
            if !self.conns.valid(slot, gen) {
                continue;
            }
            match outcome {
                Outcome::Abort => self.close(slot),
                Outcome::Respond { bytes, keep } => {
                    if let Some(conn) = self.conns.get_mut(slot) {
                        conn.outbuf.extend_from_slice(&bytes);
                        conn.phase = Phase::Writing { keep };
                    }
                    // Writes get their own read_timeout-sized deadline (a
                    // request is bounded by ~2x read_timeout end to end):
                    // a client that never drains responses must not hold
                    // its slot once the kernel send buffer fills.
                    self.arm_deadline(slot, Instant::now() + self.read_timeout);
                    self.flush(slot);
                    if self.conns.valid(slot, gen) {
                        self.update_interest(slot);
                    }
                }
            }
        }
    }

    fn arm_deadline(&mut self, slot: u32, at: Instant) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        self.next_seq += 1;
        conn.deadline = Some((at, self.next_seq));
        let gen = conn.gen;
        self.deadlines.push(std::cmp::Reverse((at, self.next_seq, slot, gen)));
    }

    fn fire_deadlines(&mut self) {
        let now = Instant::now();
        loop {
            let Some(&std::cmp::Reverse((when, seq, slot, gen))) = self.deadlines.peek() else {
                return;
            };
            if when > now {
                return;
            }
            self.deadlines.pop();
            if !self.conns.valid(slot, gen) {
                continue;
            }
            let armed = self.conns.get_mut(slot).and_then(|c| c.deadline).map(|(_, s)| s);
            if armed != Some(seq) {
                continue; // superseded: the connection re-armed since
            }
            self.expire(slot);
            if self.conns.valid(slot, gen) {
                self.update_interest(slot);
            }
        }
    }

    fn expire(&mut self, slot: u32) {
        let (phase, started) = match self.conns.get_mut(slot) {
            Some(conn) => {
                conn.deadline = None;
                (conn.phase, conn.parser.started)
            }
            None => return,
        };
        match phase {
            Phase::Reading => match started {
                // Idle expiry between requests: the normal end of a
                // kept-alive connection. Close without writing anything.
                None => self.close(slot),
                // The in-request deadline: neither a byte-drip nor a total
                // stall holds the connection past `read_timeout`, and both
                // surface as 408, not a silent close.
                Some(_) => self.respond_error(slot, 408, "request read timed out"),
            },
            // Dispatched connections arm no deadline; stale entry.
            Phase::Dispatched => {}
            // The peer stopped draining its response (or a reject), or a
            // linger ran its course.
            Phase::Writing { .. } | Phase::Lingering => self.close(slot),
        }
    }

    // -- teardown ----------------------------------------------------------

    fn close(&mut self, slot: u32) {
        let Some(conn) = self.conns.remove(slot) else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.counted {
            self.metrics.connection_closed();
        } else {
            self.rejects_live = self.rejects_live.saturating_sub(1);
        }
        self.update_gauge();
        // `conn` drops here: the socket closes and the admission permit
        // (if any) is released.
    }

    fn update_gauge(&self) {
        let base = 1 + usize::from(self.listener.is_some()); // waker (+ listener)
        self.metrics.set_reactor_fds((self.conns.len() + base) as u64);
    }

    fn begin_shutdown(&mut self) {
        self.stopping = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            // Dropping the listener closes it: new connects are refused.
        }
        // In-flight work (Dispatched, Writing) runs out bounded by its
        // write deadlines; idle, mid-read, and lingering connections close
        // now.
        for slot in self.conns.occupied() {
            match self.conns.phase(slot) {
                Some(Phase::Reading) | Some(Phase::Lingering) => self.close(slot),
                _ => {}
            }
        }
        self.update_gauge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(parser: &mut Parser, input: &[u8], eof: bool) -> Step {
        let mut pos = 0usize;
        loop {
            let (consumed, step) = parser.advance(&input[pos..], eof);
            pos += consumed;
            match step {
                Step::NeedMore if pos >= input.len() => return Step::NeedMore,
                Step::NeedMore => continue,
                other => return other,
            }
        }
    }

    #[test]
    fn parses_a_get_whole_and_byte_by_byte() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut whole = Parser::new();
        let Step::Complete(req) = feed(&mut whole, raw, false) else {
            panic!("whole-buffer parse must complete");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");

        let mut drip = Parser::new();
        let mut result = None;
        for (i, b) in raw.iter().enumerate() {
            match feed(&mut drip, &[*b], false) {
                Step::NeedMore => assert!(i + 1 < raw.len(), "must complete on the last byte"),
                Step::Complete(r) => result = Some(r),
                _ => panic!("unexpected parser verdict at byte {i}"),
            }
        }
        let req = result.expect("drip-fed parse must complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn body_framing_and_expect_continue() {
        let head = b"POST /score HTTP/1.1\r\nContent-Length: 4\r\nExpect: 100-continue\r\n\r\n";
        let mut parser = Parser::new();
        let Step::Interim = feed(&mut parser, head, false) else {
            panic!("expect 100-continue must surface an interim step");
        };
        // The interim is emitted at most once; the body completes the
        // request with keep-alive honored.
        let Step::Complete(req) = feed(&mut parser, b"abcd", false) else {
            panic!("body bytes must complete the request");
        };
        assert_eq!(req.body, "abcd");
        assert_eq!(req.method, "POST");
    }

    #[test]
    fn error_parity_with_the_blocking_parser() {
        let cases: &[(&[u8], u16, &str)] = &[
            (b"GET /x HTTP/2\r\n\r\n", 400, "unsupported HTTP version"),
            (b"GET\r\n\r\n", 400, "missing request target"),
            (b"GET /x\r\n\r\n", 400, "missing HTTP version"),
            (b"\r\n\r\n\r\n\r\n", 400, "empty request line"),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n",
                400,
                "duplicate Content-Length header",
            ),
            (b"GET /x HTTP/1.1\r\nContent-Length: +5\r\n\r\n", 400, "invalid Content-Length"),
            (
                b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
                "transfer encodings not supported",
            ),
            (
                b"GET /x HTTP/1.1\r\nHost: a\r\n bad: fold\r\n\r\n",
                400,
                "obsolete header line folding not supported",
            ),
            (b"GET /x HTTP/1.1\r\nHost : a\r\n\r\n", 400, "whitespace before header colon"),
            (b"GET /x HTTP/1.1\r\nExpect: tea\r\n\r\n", 417, "unsupported Expect value"),
        ];
        for (raw, want_status, want_msg) in cases {
            let mut parser = Parser::new();
            match feed(&mut parser, raw, false) {
                Step::Error(status, msg) => {
                    assert_eq!(status, *want_status, "status for {raw:?}");
                    assert_eq!(msg, *want_msg, "message for {raw:?}");
                }
                _ => panic!("{raw:?} must fail"),
            }
        }
    }

    #[test]
    fn header_budget_fails_mid_line_without_buffering() {
        let mut parser = Parser::new();
        // A single unterminated line larger than the whole header budget
        // must 431 as soon as the budget is crossed, newline or not.
        let blob = vec![b'a'; MAX_HEADER_BYTES + 1];
        match feed(&mut parser, &blob, false) {
            Step::Error(431, msg) => assert_eq!(msg, "request header section too large"),
            _ => panic!("oversized header section must 431"),
        }
    }

    #[test]
    fn eof_dispositions() {
        // EOF before any byte: clean close.
        let mut parser = Parser::new();
        assert!(matches!(parser.advance(b"", true).1, Step::CleanClose));
        // EOF after a stray CRLF only: still a clean close.
        let mut parser = Parser::new();
        assert!(matches!(feed(&mut parser, b"\r\n", false), Step::NeedMore));
        assert!(matches!(parser.advance(b"", true).1, Step::CleanClose));
        // EOF mid-headers: 400, answered before closing.
        let mut parser = Parser::new();
        assert!(matches!(feed(&mut parser, b"GET /x HTTP/1.1\r\n", false), Step::NeedMore));
        match parser.advance(b"", true).1 {
            Step::Error(400, msg) => assert_eq!(msg, "connection closed mid-headers"),
            _ => panic!("mid-headers EOF must 400"),
        }
        // EOF mid-body: silent close.
        let mut parser = Parser::new();
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\nab";
        assert!(matches!(feed(&mut parser, head, false), Step::NeedMore));
        assert!(matches!(parser.advance(b"", true).1, Step::SilentClose));
        // EOF flushes an unterminated request line, whose missing version
        // is then reported like the blocking reader did.
        let mut parser = Parser::new();
        assert!(matches!(feed(&mut parser, b"GET /x", false), Step::NeedMore));
        match parser.advance(b"", true).1 {
            Step::Error(400, msg) => assert_eq!(msg, "missing HTTP version"),
            _ => panic!("flushed partial request line must parse"),
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut parser = Parser::new();
        let (consumed, step) = parser.advance(raw, false);
        let Step::Complete(first) = step else { panic!("first request must complete") };
        assert_eq!(first.path, "/a");
        assert!(first.keep_alive);
        parser.reset();
        let Step::Complete(second) = parser.advance(&raw[consumed..], false).1 else {
            panic!("second request must complete from the leftover bytes");
        };
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive, "Connection: close honored");
    }

    #[test]
    fn slab_generations_invalidate_stale_tokens() {
        // Slot reuse bumps the generation, so a token minted for the old
        // occupant no longer validates.
        let mut slab = Slab::new();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let make = || {
            let c = TcpStream::connect(addr).expect("connect");
            let _ = listener.accept().expect("accept");
            Conn::new(c, None, false)
        };
        let (slot, gen) = slab.insert(make());
        assert!(slab.valid(slot, gen));
        assert_eq!(slab.len(), 1);
        slab.remove(slot);
        assert!(!slab.valid(slot, gen), "removed slot must invalidate");
        assert_eq!(slab.len(), 0);
        let (slot2, gen2) = slab.insert(make());
        assert_eq!(slot, slot2, "slot is reused");
        assert_ne!(gen, gen2, "generation is not");
        assert!(slab.valid(slot2, gen2));
        assert!(!slab.valid(slot, gen), "stale token stays invalid");
    }

    #[test]
    fn stale_queued_jobs_get_408_without_running_the_router() {
        use crate::registry::ModelRegistry;
        use kg_core::{FilterIndex, Triple};
        use kg_models::{build_model, KgcModel, ModelKind};
        let registry = Arc::new(ModelRegistry::new());
        let model = build_model(ModelKind::TransE, 12, 2, 8, 1);
        let triples = [Triple::new(0, 0, 1)];
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
        let metrics = Arc::clone(registry.metrics());
        let (waker_tx, _waker_rx) = UnixStream::pair().expect("pair");
        let ctx = WorkerCtx {
            jobs: Arc::new(Mutex::new(mpsc::channel::<Job>().1)),
            done: mpsc::channel::<Completion>().0,
            router: Arc::new(Router::new(registry)),
            metrics: Arc::clone(&metrics),
            waker: Arc::new(Waker { tx: waker_tx }),
            idle_timeout: Duration::from_millis(50),
        };
        let job = |enqueued: Instant| Job {
            slot: 0,
            gen: 0,
            request: Request {
                method: "GET".to_string(),
                path: "/healthz".to_string(),
                body: String::new(),
                keep_alive: true,
            },
            directive: ConnDirective::Close,
            keep: false,
            enqueued,
        };
        // A job that sat queued past the idle timeout is answered 408 at
        // pickup, counted under the synthetic parse label, and closed —
        // the router never runs for it.
        let stale = run_job(&ctx, job(Instant::now() - Duration::from_millis(200)));
        assert_eq!((stale.slot, stale.gen), (0, 0));
        let Outcome::Respond { bytes, keep } = stale.outcome else {
            panic!("stale jobs still get a response");
        };
        let text = String::from_utf8(bytes).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "got: {text}");
        assert!(text.contains("queued longer"), "names the queue wait: {text}");
        assert!(text.contains("Connection: close"), "stale responses close: {text}");
        assert!(!keep);
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 1, "counted as an HTTP-layer 408");
        // A fresh job runs the router normally under the job's directive.
        let fresh = run_job(&ctx, job(Instant::now()));
        let Outcome::Respond { bytes, .. } = fresh.outcome else {
            panic!("fresh jobs respond");
        };
        let text = String::from_utf8(bytes).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
        assert!(text.contains("\"ok\""), "the router actually ran: {text}");
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 1, "no spurious 408 for fresh jobs");
    }

    #[test]
    fn encode_response_matches_the_wire_format() {
        let resp = Response::error(503, "server at connection capacity").with_retry_after(7);
        let bytes = encode_response(&resp, &ConnDirective::Close);
        let text = String::from_utf8(bytes).expect("ascii");
        let body = "{\"error\":\"server at connection capacity\"}";
        assert_eq!(
            text,
            format!(
                "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nRetry-After: 7\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        );
        let keep = ConnDirective::KeepAlive { timeout_secs: 5, remaining: 3 };
        let ok = Response::json_ok(crate::json::Json::Str("hi".into()));
        let text = String::from_utf8(encode_response(&ok, &keep)).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: keep-alive\r\nKeep-Alive: timeout=5, max=3\r\n"));
    }
}
