//! Multi-node scatter/gather gateway: one front door over a fleet of
//! shard workers, answering **byte-identically** to a single-node server.
//!
//! ## Topology
//!
//! Every worker holds the *full* model but owns one slice of the entity
//! space ([`crate::registry::WorkerShard`]: worker `i` of `N` serves
//! `ShardPlan::new(|E|, N).range(i)` — the same deterministic partition
//! the in-process sharded engine uses, so boundaries need no
//! negotiation). The gateway holds no models at all; it scatters each
//! request across the workers over pooled keep-alive
//! [`client::Connection`]s and recombines the pieces:
//!
//! * `/topk` → every worker's internal `POST /shard/topk` evaluates the
//!   queries over its configured range and returns wire-encoded
//!   [`PartialTopK`]s; the gateway merges them with
//!   [`kg_core::partial::Partial::merge`] — the same code the in-process
//!   shard fan-out uses — and verifies the reported ranges exactly tile
//!   `0..|E|` before trusting the merge.
//! * `/score` and `/eval` decompose by *queries* rather than by entity
//!   range (each triple's score / sampled rank is independent): the
//!   triple list is split into contiguous chunks, one per worker, and the
//!   per-chunk results are concatenated in order. `/eval` metrics are
//!   refolded from the merged rank vector with the same
//!   [`kg_eval::RankingMetrics::from_ranks`] fold a single node runs, so
//!   every reported metric is bit-identical; only the wall-clock
//!   `"seconds"` field is the gateway's own (as it differs between any
//!   two runs anywhere).
//!
//! Requests the gateway cannot decompose (malformed JSON, missing
//! fields, over-limit sizes) are relayed verbatim to worker 0, and a
//! chunk-scattered request any worker rejects is **recomputed against
//! the full body** on worker 0 (whose error message then carries the
//! client's own indices, not chunk-local ones) — so even error bodies
//! are identical to a single node's.
//!
//! ## Failure semantics
//!
//! A background prober hits each worker's `/healthz` every
//! [`GatewayConfig::health_interval`]; a worker that fails a probe or a
//! live request is marked unhealthy, the failure is counted in
//! `kg_serve_gateway_backend_errors_total{backend=…}`, and requests
//! answer `503` with `Retry-After` until the prober sees the worker
//! again. There is no partial answering: a missing worker means a
//! missing entity range, and a silently range-incomplete ranking would
//! be exactly the protocol drift this design exists to prevent.
//! Scatter and merge phase latencies are exported per endpoint as
//! `kg_serve_gateway_scatter_seconds` / `kg_serve_gateway_merge_seconds`.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use kg_core::partial::{Partial, PartialTopK};
use kg_eval::RankingMetrics;

use crate::client::{ClientConfig, Connection};
use crate::http_metrics::HttpMetrics;
use crate::json::Json;
use crate::router::Response;

/// Idle connections kept per backend; beyond this, finished connections
/// are closed instead of pooled.
const POOL_MAX_IDLE: usize = 16;

/// Gateway topology and budgets.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Worker addresses, **in shard order**: `backends[i]` must be the
    /// worker configured as shard `i` of `backends.len()`
    /// ([`crate::registry::WorkerShard`]); the gateway verifies the
    /// reported ranges tile the entity space on every `/topk`.
    pub backends: Vec<String>,
    /// Connect/read budgets for every backend connection (the gateway
    /// needs both bounded: a dead backend must cost a timeout, not a
    /// hang).
    pub client: ClientConfig,
    /// How often the background prober checks each backend's `/healthz`;
    /// `Duration::ZERO` disables probing (backends are then only marked
    /// unhealthy by failing live requests, and recover on gateway
    /// restart — fine for tests, not for production).
    pub health_interval: Duration,
    /// `Retry-After` seconds advertised on 503 responses.
    pub retry_after_secs: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backends: Vec::new(),
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(2)),
                read_timeout: Some(Duration::from_secs(30)),
            },
            health_interval: Duration::from_secs(1),
            retry_after_secs: 1,
        }
    }
}

/// One backend worker: address, health flag, and a pool of keep-alive
/// connections.
struct Backend {
    addr: SocketAddr,
    label: String,
    client: ClientConfig,
    pool: Mutex<Vec<Connection>>,
    healthy: AtomicBool,
}

impl Backend {
    /// Issue one request, preferring a pooled keep-alive connection. A
    /// pooled connection may have been idle-closed by the worker since
    /// its last use; **only** that failure shape — the socket was closed
    /// before any response byte (EOF/reset/broken pipe, which fail
    /// instantly) — discards the stale connection and retries on the
    /// next (ultimately a fresh) one. Timeouts and other transport
    /// errors are *not* retried: a worker that is merely slow would
    /// otherwise have the same expensive ranking re-executed once per
    /// warm pooled connection before the caller finally saw the failure.
    fn call(&self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<(u16, String)> {
        loop {
            let pooled = self.pool.lock().unwrap().pop();
            let Some(mut conn) = pooled else { break };
            match conn.request(method, path, body) {
                Ok((status, resp)) => {
                    self.recycle(conn);
                    return Ok((status, resp));
                }
                Err(e) if is_stale_connection(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        let mut conn = Connection::open_with(self.addr, &self.client)?;
        let (status, resp) = conn.request(method, path, body)?;
        self.recycle(conn);
        Ok((status, resp))
    }

    fn recycle(&self, conn: Connection) {
        if !conn.server_closed() {
            let mut pool = self.pool.lock().unwrap();
            if pool.len() < POOL_MAX_IDLE {
                pool.push(conn);
            }
        }
    }
}

/// Whether a request failure looks like "the pooled keep-alive socket
/// had already been closed by the peer" (idle timeout, per-connection
/// request cap) — the only failure worth retrying on another connection.
fn is_stale_connection(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

struct Inner {
    backends: Vec<Backend>,
    metrics: Arc<HttpMetrics>,
    retry_after_secs: u64,
}

/// The scatter/gather front door (see the module docs). Construct with
/// [`Gateway::new`] and serve it through
/// [`crate::router::Router::gateway`].
pub struct Gateway {
    inner: Arc<Inner>,
}

impl Gateway {
    /// Gateway over `config.backends` (at least one required; addresses
    /// are resolved eagerly so a typo fails at construction, not at the
    /// first request). Spawns the health prober unless
    /// `config.health_interval` is zero; the prober exits when the
    /// gateway is dropped.
    pub fn new(config: GatewayConfig) -> std::io::Result<Gateway> {
        if config.backends.is_empty() {
            return Err(std::io::Error::other("gateway needs at least one backend"));
        }
        let mut backends = Vec::with_capacity(config.backends.len());
        for spec in &config.backends {
            let addr = spec
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other(format!("unresolvable backend {spec:?}")))?;
            backends.push(Backend {
                addr,
                label: spec.clone(),
                client: config.client.clone(),
                pool: Mutex::new(Vec::new()),
                healthy: AtomicBool::new(true),
            });
        }
        let inner = Arc::new(Inner {
            backends,
            metrics: Arc::new(HttpMetrics::new()),
            retry_after_secs: config.retry_after_secs,
        });
        if !config.health_interval.is_zero() {
            let weak = Arc::downgrade(&inner);
            let interval = config.health_interval;
            std::thread::spawn(move || probe_loop(weak, interval));
        }
        Ok(Gateway { inner })
    }

    /// The gateway's metrics registry (the server renders `/metrics` from
    /// it).
    pub fn metrics(&self) -> &Arc<HttpMetrics> {
        &self.inner.metrics
    }

    /// Number of configured backends.
    pub fn num_backends(&self) -> usize {
        self.inner.backends.len()
    }

    /// Whether every backend is currently believed healthy.
    pub fn all_healthy(&self) -> bool {
        // ORDERING: Relaxed — the health flag is advisory and publishes no
        // data; a stale read costs one misrouted request, which fails and
        // re-marks the backend itself.
        self.inner.backends.iter().all(|b| b.healthy.load(Ordering::Relaxed))
    }

    /// Gateway liveness: its own status plus per-backend health.
    pub fn healthz(&self) -> Response {
        let backends: Vec<Json> = self
            .inner
            .backends
            .iter()
            .map(|b| {
                Json::obj([
                    ("addr", Json::Str(b.label.clone())),
                    // ORDERING: Relaxed — advisory health flag, see
                    // `all_healthy`.
                    ("healthy", Json::Bool(b.healthy.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        let status = if self.all_healthy() { "ok" } else { "degraded" };
        Response::json_ok(Json::obj([
            ("status", Json::Str(status.into())),
            ("role", Json::Str("gateway".into())),
            ("uptime_seconds", Json::Num(self.inner.metrics.uptime_seconds())),
            ("backends", Json::Arr(backends)),
        ]))
    }

    /// `POST /score`: chunk the triples across workers, concatenate the
    /// per-chunk score arrays in order.
    pub fn score(&self, body: &str) -> Response {
        let started = Instant::now();
        let Some((request, triples)) = self.parse_for_chunking(body, "triples") else {
            return self.relay_to_first("/score", body);
        };
        let chunks = chunk_field(&request, "triples", &triples, self.inner.backends.len());
        let chunk_refs: Vec<Option<&str>> = chunks.iter().map(Option::as_deref).collect();
        let responses = match self.scatter("/score", &chunk_refs) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        if let Some(resp) = self.revalidate_chunk_rejection("/score", body, &responses) {
            return resp;
        }
        let scatter_us = started.elapsed().as_micros() as u64;
        let parsed = match self.parse_backend_responses(responses) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mut scores = Vec::with_capacity(triples.len());
        for (_, resp) in &parsed {
            let Some(part) = resp.get("scores").and_then(Json::as_array) else {
                return self.bad_backend("/score response missing 'scores'");
            };
            scores.extend_from_slice(part);
        }
        // PANIC-OK: scatter_gather errors out when no backend answered, so
        // `parsed` is nonempty here.
        let model = parsed[0].1.get("model").cloned().unwrap_or(Json::Null);
        let out = Response::json_ok(Json::obj([
            ("model", model),
            ("count", Json::Num(scores.len() as f64)),
            ("scores", Json::Arr(scores)),
        ]));
        self.observe("/score", started, scatter_us);
        out
    }

    /// `POST /eval`: chunk the triples across workers (forcing
    /// `include_ranks` so the pieces can be recombined), concatenate the
    /// rank vectors in order, refold the metrics with the exact
    /// single-node fold.
    pub fn eval(&self, body: &str) -> Response {
        let started = Instant::now();
        let Some((request, triples)) = self.parse_for_chunking(body, "triples") else {
            return self.relay_to_first("/eval", body);
        };
        let include_ranks = request.get("include_ranks").and_then(Json::as_bool).unwrap_or(false);
        let mut forced = request.clone();
        set_field(&mut forced, "include_ranks", Json::Bool(true));
        let chunks = chunk_field(&forced, "triples", &triples, self.inner.backends.len());
        let chunk_refs: Vec<Option<&str>> = chunks.iter().map(Option::as_deref).collect();
        let responses = match self.scatter("/eval", &chunk_refs) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        if let Some(resp) = self.revalidate_chunk_rejection("/eval", body, &responses) {
            return resp;
        }
        let scatter_us = started.elapsed().as_micros() as u64;
        let parsed = match self.parse_backend_responses(responses) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mut rank_nodes: Vec<Json> = Vec::new();
        let mut all_hit = true;
        let mut eval_all_hit = true;
        let mut graph_version: Option<u64> = None;
        for (_, resp) in &parsed {
            let Some(part) = resp.get("ranks").and_then(Json::as_array) else {
                return self.bad_backend("/eval response missing 'ranks'");
            };
            rank_nodes.extend_from_slice(part);
            all_hit &= resp.get("sample_cache").and_then(Json::as_str) == Some("hit");
            eval_all_hit &= resp.get("eval_cache").and_then(Json::as_str) == Some("hit");
            // Workers ingest live deltas independently; an evaluation
            // stitched from different graph versions would silently mix
            // two graphs, so version skew is a hard 502, not a warning.
            let Some(version) = resp.get("graph_version").and_then(Json::as_u64) else {
                return self.bad_backend("/eval response missing 'graph_version'");
            };
            match graph_version {
                None => graph_version = Some(version),
                Some(expected) if expected != version => {
                    return self.bad_backend(&format!(
                        "/eval graph versions diverge across workers ({expected} vs {version}); \
                         the fleet's live graphs are out of sync"
                    ));
                }
                Some(_) => {}
            }
        }
        let ranks: Vec<f64> = rank_nodes.iter().filter_map(Json::as_f64).collect();
        if ranks.len() != rank_nodes.len() {
            return self.bad_backend("/eval response carried non-numeric ranks");
        }
        // The exact fold a single node runs over the same rank sequence —
        // bit-identical metrics, not recomputed approximations.
        let m = RankingMetrics::from_ranks(&ranks);
        // PANIC-OK: scatter_gather errors out when no backend answered, so
        // `parsed` is nonempty here.
        let first = &parsed[0].1;
        let echo = |key: &str| first.get(key).cloned().unwrap_or(Json::Null);
        let mut fields = vec![
            ("model".to_string(), echo("model")),
            ("strategy".to_string(), echo("strategy")),
            ("n_s".to_string(), echo("n_s")),
            ("seed".to_string(), echo("seed")),
            ("graph_version".to_string(), Json::Num(graph_version.unwrap_or(0) as f64)),
            ("sample_cache".to_string(), Json::Str(if all_hit { "hit" } else { "miss" }.into())),
            ("eval_cache".to_string(), Json::Str(if eval_all_hit { "hit" } else { "miss" }.into())),
            ("num_queries".to_string(), Json::Num(ranks.len() as f64)),
            (
                "metrics".to_string(),
                Json::obj([
                    ("mrr", Json::Num(m.mrr)),
                    ("hits1", Json::Num(m.hits1)),
                    ("hits3", Json::Num(m.hits3)),
                    ("hits10", Json::Num(m.hits10)),
                    ("mean_rank", Json::Num(m.mean_rank)),
                ]),
            ),
            ("seconds".to_string(), Json::Num(started.elapsed().as_secs_f64())),
        ];
        if include_ranks {
            fields.push(("ranks".to_string(), Json::Arr(rank_nodes)));
        }
        let out = Response::json_ok(Json::Obj(fields));
        self.observe("/eval", started, scatter_us);
        out
    }

    /// `POST /topk`: ship the request verbatim to every worker's
    /// `/shard/topk`, merge the wire-encoded [`PartialTopK`]s per query,
    /// and answer in the single-node `/topk` shape.
    pub fn topk(&self, body: &str) -> Response {
        let started = Instant::now();
        // The same body goes to every worker — borrowed, not cloned (it
        // can be tens of MB).
        let bodies: Vec<Option<&str>> =
            (0..self.inner.backends.len()).map(|_| Some(body)).collect();
        let responses = match self.scatter("/shard/topk", &bodies) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let scatter_us = started.elapsed().as_micros() as u64;
        let parsed = match self.parse_backend_responses(responses) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        // The workers' ranges must exactly tile the entity space — a
        // misconfigured fleet (duplicate shard index, wrong worker count)
        // must fail loudly, never return a silently range-incomplete
        // ranking.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(parsed.len());
        let mut entities = 0usize;
        for (i, (_, resp)) in parsed.iter().enumerate() {
            let range = resp.get("range").and_then(Json::as_array);
            let (Some(start), Some(end)) = (
                range.and_then(|r| r.first()).and_then(Json::as_usize),
                range.and_then(|r| r.get(1)).and_then(Json::as_usize),
            ) else {
                return self.bad_backend("/shard/topk response missing 'range'");
            };
            let Some(n) = resp.get("entities").and_then(Json::as_usize) else {
                return self.bad_backend("/shard/topk response missing 'entities'");
            };
            // Every worker must be ranking the same entity space: ranges
            // from differently-sized models can still tile by accident,
            // which would merge scores from different models.
            if i == 0 {
                entities = n;
            } else if n != entities {
                return self.bad_backend(
                    "workers disagree on the entity count (are all backends serving the \
                     same model snapshot?)",
                );
            }
            ranges.push((start, end));
        }
        ranges.sort_unstable();
        let mut next = 0usize;
        for &(start, end) in &ranges {
            if start != next || end < start {
                return self.bad_backend(
                    "shard ranges do not tile the entity space (check each worker's \
                     worker_shard index/count against the gateway's backend list)",
                );
            }
            next = end;
        }
        if next != entities {
            return self.bad_backend("shard ranges do not cover every entity");
        }
        // Decode and merge per query, in backend order (the merge is
        // order-independent; a fixed order keeps failures deterministic).
        // PANIC-OK: scatter_gather errors out when no backend answered, so
        // `parsed` is nonempty here.
        let first = &parsed[0].1;
        let num_queries = first.get("partials").and_then(Json::as_array).map_or(0, <[Json]>::len);
        let mut merged: Vec<Option<PartialTopK>> = vec![None; num_queries];
        for (_, resp) in &parsed {
            let Some(partials) = resp.get("partials").and_then(Json::as_array) else {
                return self.bad_backend("/shard/topk response missing 'partials'");
            };
            if partials.len() != num_queries {
                return self.bad_backend("workers disagree on the query count");
            }
            for (qi, wire) in partials.iter().enumerate() {
                let decoded = wire.as_str().map(PartialTopK::decode);
                let Some(Ok(partial)) = decoded else {
                    return self.bad_backend("malformed PartialTopK on the wire");
                };
                // PANIC-OK: `qi` enumerates `partials`, whose length was
                // just checked equal to `num_queries` == `merged.len()`.
                match &mut merged[qi] {
                    Some(acc) => acc.merge(partial),
                    slot => *slot = Some(partial),
                }
            }
        }
        let results: Vec<Json> = merged
            .into_iter()
            .map(|p| {
                let top = p.map(PartialTopK::into_entries).unwrap_or_default();
                Json::obj([
                    (
                        "entities",
                        Json::Arr(top.iter().map(|&(e, _)| Json::Num(e as f64)).collect()),
                    ),
                    ("scores", Json::Arr(top.iter().map(|&(_, s)| Json::Num(s as f64)).collect())),
                ])
            })
            .collect();
        let echo = |key: &str| first.get(key).cloned().unwrap_or(Json::Null);
        let out = Response::json_ok(Json::obj([
            ("model", echo("model")),
            ("k", echo("k")),
            ("filtered", echo("filtered")),
            ("shards", echo("shards")),
            ("results", Json::Arr(results)),
        ]));
        self.observe("/topk", started, scatter_us);
        out
    }

    /// Parse a request body for query-chunked scattering; `None` means
    /// the body should be relayed verbatim instead (malformed or
    /// over-limit — worker 0 will produce the identical error a single
    /// node would).
    fn parse_for_chunking(&self, body: &str, field: &str) -> Option<(Json, Vec<Json>)> {
        if body.len() > crate::router::MAX_BODY_BYTES {
            return None;
        }
        let request = Json::parse(body).ok()?;
        let items = request.get(field)?.as_array()?.to_vec();
        if items.len() > crate::router::MAX_TRIPLES_PER_REQUEST {
            return None;
        }
        Some((request, items))
    }

    /// If any backend rejected its *chunk* of a query-scattered request,
    /// recompute against the **full** original body on worker 0 and
    /// relay that. A chunked worker's validation error carries
    /// chunk-local indices (`triples[0]` for what the client sent as
    /// `triples[2]`); worker 0's public `/score`/`/eval` evaluate the
    /// full model regardless of its shard role, so re-running the whole
    /// request there yields byte-identical bytes to a single node —
    /// error *or* success — at the cost of one extra round trip on the
    /// rejection path only.
    fn revalidate_chunk_rejection(
        &self,
        path: &str,
        body: &str,
        responses: &[Option<(u16, String)>],
    ) -> Option<Response> {
        responses
            .iter()
            .flatten()
            .any(|(status, _)| *status != 200)
            .then(|| self.relay_to_first(path, body))
    }

    /// Forward `body` unchanged to backend 0 and relay its response —
    /// the "cannot decompose" path that keeps error bodies identical to
    /// a single node's.
    fn relay_to_first(&self, path: &str, body: &str) -> Response {
        // PANIC-OK: the constructor rejects an empty backend list, so
        // backend 0 always exists.
        let backend = &self.inner.backends[0];
        // ORDERING: Relaxed — advisory health flag, see `all_healthy`.
        if !backend.healthy.load(Ordering::Relaxed) {
            return self.unavailable(&backend.label);
        }
        match backend.call("POST", path, Some(body)) {
            Ok((status, resp)) => Response::passthrough(status, resp),
            Err(_) => {
                self.mark_failed(backend);
                self.unavailable(&backend.label)
            }
        }
    }

    /// Scatter one request across the backends (`bodies[i]` is sent to
    /// backend `i`; `None` skips it). All involved backends must be
    /// healthy and answer; any failure is a 503.
    fn scatter(
        &self,
        path: &str,
        bodies: &[Option<&str>],
    ) -> Result<Vec<Option<(u16, String)>>, Response> {
        debug_assert_eq!(bodies.len(), self.inner.backends.len());
        for (backend, body) in self.inner.backends.iter().zip(bodies) {
            // ORDERING: Relaxed — advisory health flag, see `all_healthy`.
            if body.is_some() && !backend.healthy.load(Ordering::Relaxed) {
                return Err(self.unavailable(&backend.label));
            }
        }
        let results: Vec<Option<std::io::Result<(u16, String)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inner
                .backends
                .iter()
                .zip(bodies)
                .map(|(backend, body)| {
                    body.map(|body| scope.spawn(move || backend.call("POST", path, Some(body))))
                })
                .collect();
            // PANIC-OK: join() errs only if the worker panicked —
            // propagating that panic is the correct outcome, not a new one.
            handles.into_iter().map(|h| h.map(|h| h.join().expect("scatter worker"))).collect()
        });
        let mut out = Vec::with_capacity(results.len());
        let mut failed: Option<&Backend> = None;
        for (backend, result) in self.inner.backends.iter().zip(results) {
            match result {
                None => out.push(None),
                Some(Ok(resp)) => out.push(Some(resp)),
                Some(Err(_)) => {
                    self.mark_failed(backend);
                    failed.get_or_insert(backend);
                    out.push(None);
                }
            }
        }
        match failed {
            Some(backend) => Err(self.unavailable(&backend.label)),
            None => Ok(out),
        }
    }

    /// Require every received response to be 200 and parse it; the first
    /// non-200 (lowest backend index) is relayed verbatim — workers run
    /// the same validation code a single node does, so the error bytes
    /// match.
    fn parse_backend_responses(
        &self,
        responses: Vec<Option<(u16, String)>>,
    ) -> Result<Vec<(u16, Json)>, Response> {
        let mut parsed = Vec::with_capacity(responses.len());
        for resp in responses.into_iter().flatten() {
            if resp.0 != 200 {
                return Err(Response::passthrough(resp.0, resp.1));
            }
            match Json::parse(&resp.1) {
                Ok(v) => parsed.push((resp.0, v)),
                Err(_) => return Err(self.bad_backend("backend returned unparseable JSON")),
            }
        }
        if parsed.is_empty() {
            return Err(self.bad_backend("no backend produced a response"));
        }
        Ok(parsed)
    }

    fn mark_failed(&self, backend: &Backend) {
        // ORDERING: Relaxed — advisory health flag, see `all_healthy`.
        backend.healthy.store(false, Ordering::Relaxed);
        self.inner.metrics.gateway_backend_error(&backend.label);
    }

    fn unavailable(&self, backend: &str) -> Response {
        Response::error(503, format!("backend {backend} is unavailable"))
            .with_retry_after(self.inner.retry_after_secs)
    }

    fn bad_backend(&self, message: &str) -> Response {
        Response::error(502, message.to_string())
    }

    fn observe(&self, endpoint: &str, started: Instant, scatter_us: u64) {
        let total_us = started.elapsed().as_micros() as u64;
        self.inner.metrics.observe_gateway_phases(
            endpoint,
            scatter_us,
            total_us.saturating_sub(scatter_us),
        );
    }
}

/// The background health prober: marks a backend healthy again once its
/// `/healthz` answers, unhealthy (plus an error count) when it stops.
/// Holds only a weak reference — the loop exits when the gateway drops.
fn probe_loop(inner: Weak<Inner>, interval: Duration) {
    loop {
        let Some(gw) = inner.upgrade() else { return };
        for backend in &gw.backends {
            // One-shot connection, never the data pool. Since the reactor
            // rewrite an idle probe connection no longer pins a backend
            // worker (open connections are reactor slab state, not
            // threads), but the fresh connect-probe-close stays: it
            // exercises the backend's *accept and admission* path every
            // interval — a backend at its connection budget or with a
            // wedged reactor fails the probe, which a long-lived pooled
            // socket would mask.
            let probe = || -> std::io::Result<(u16, String)> {
                let mut conn = Connection::open_with(backend.addr, &backend.client)?;
                conn.get("/healthz")
            };
            match probe() {
                // ORDERING: Relaxed — advisory health flag, see
                // `all_healthy`; the swap is only for edge-triggered error
                // accounting, not synchronization.
                Ok((200, _)) => backend.healthy.store(true, Ordering::Relaxed),
                _ => {
                    // ORDERING: Relaxed — advisory flag; the swap is for
                    // edge-triggered error accounting, not synchronization.
                    let was_healthy = backend.healthy.swap(false, Ordering::Relaxed);
                    if was_healthy {
                        gw.metrics.gateway_backend_error(&backend.label);
                    }
                }
            }
        }
        drop(gw); // do not keep the gateway alive through the sleep
        std::thread::sleep(interval);
    }
}

/// Replace (or append) a top-level object field.
fn set_field(request: &mut Json, key: &str, value: Json) {
    if let Json::Obj(fields) = request {
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }
}

/// Split `items` into one contiguous chunk per involved backend
/// (`ShardPlan` balancing, so chunk boundaries are deterministic), and
/// render a per-backend request body with `field` replaced by its chunk.
/// Backends past the plan's shard count (more workers than items) get
/// `None`.
fn chunk_field(
    request: &Json,
    field: &str,
    items: &[Json],
    backends: usize,
) -> Vec<Option<String>> {
    let plan = kg_core::parallel::ShardPlan::new(items.len(), backends);
    (0..backends)
        .map(|i| {
            if i >= plan.num_shards() || (items.is_empty() && i > 0) {
                return None;
            }
            let mut piece = request.clone();
            // PANIC-OK: `ShardPlan::range(i)` partitions `0..items.len()`
            // for `i < num_shards`, checked above.
            set_field(&mut piece, field, Json::Arr(items[plan.range(i)].to_vec()));
            Some(piece.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_contiguous_and_balanced() {
        let request = Json::parse(r#"{"model":"m","triples":[1,2,3,4,5],"n_s":7}"#).unwrap();
        let items = request.get("triples").unwrap().as_array().unwrap().to_vec();
        let chunks = chunk_field(&request, "triples", &items, 2);
        assert_eq!(chunks.len(), 2);
        let a = Json::parse(chunks[0].as_ref().unwrap()).unwrap();
        let b = Json::parse(chunks[1].as_ref().unwrap()).unwrap();
        assert_eq!(a.get("triples").unwrap().to_string(), "[1,2,3]");
        assert_eq!(b.get("triples").unwrap().to_string(), "[4,5]");
        // Untouched fields survive in both pieces.
        assert_eq!(a.get("n_s").and_then(Json::as_usize), Some(7));
        assert_eq!(b.get("model").and_then(Json::as_str), Some("m"));
    }

    #[test]
    fn chunking_empty_items_involves_only_the_first_backend() {
        let request = Json::parse(r#"{"model":"m","triples":[]}"#).unwrap();
        let chunks = chunk_field(&request, "triples", &[], 3);
        assert!(chunks[0].is_some(), "someone must answer the empty request");
        assert!(chunks[1].is_none() && chunks[2].is_none());
    }

    #[test]
    fn chunking_with_more_backends_than_items_skips_the_surplus() {
        let request = Json::parse(r#"{"triples":[10,20]}"#).unwrap();
        let items = request.get("triples").unwrap().as_array().unwrap().to_vec();
        let chunks = chunk_field(&request, "triples", &items, 5);
        assert_eq!(chunks.iter().filter(|c| c.is_some()).count(), 2);
        assert!(chunks[2].is_none());
    }

    #[test]
    fn set_field_replaces_in_place_and_appends() {
        let mut v = Json::parse(r#"{"a":1,"b":2}"#).unwrap();
        set_field(&mut v, "a", Json::Num(9.0));
        set_field(&mut v, "c", Json::Bool(true));
        assert_eq!(v.to_string(), r#"{"a":9,"b":2,"c":true}"#);
    }

    #[test]
    fn gateway_requires_backends_and_resolves_addresses() {
        assert!(Gateway::new(GatewayConfig::default()).is_err(), "no backends");
        let err = Gateway::new(GatewayConfig {
            backends: vec!["not an address".into()],
            ..GatewayConfig::default()
        });
        assert!(err.is_err(), "unresolvable backend must fail at construction");
    }
}
