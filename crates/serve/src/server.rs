//! Dependency-free HTTP/1.1 server on `std::net::TcpListener`.
//!
//! One acceptor thread admits connections against a bounded budget and
//! hands them to a fixed worker pool over an `mpsc` channel; each worker
//! owns its connection for the connection's whole life and runs a
//! **request loop**: parse (request line, headers, `Content-Length` body),
//! route, respond, repeat.
//!
//! ## Connection semantics
//!
//! * HTTP/1.1 requests default to **keep-alive**; HTTP/1.0 requests default
//!   to close (opt in with `Connection: keep-alive`). A `Connection: close`
//!   request header is honored, and every response states its decision
//!   (`Connection: keep-alive` + `Keep-Alive: timeout=…, max=…`, or
//!   `Connection: close`).
//! * **Pipelined** requests on one socket are answered strictly in order:
//!   the loop reads the next request from the same `BufReader` that still
//!   holds any bytes the client sent ahead.
//! * Two read timeouts: [`ServerConfig::idle_timeout`] while waiting for
//!   a request to *begin* (expiry = normal end of a kept-alive connection,
//!   closed without fuss); once its first byte arrives, the whole request
//!   — header section and body — must land within
//!   [`ServerConfig::read_timeout`] (a deadline, so a byte-at-a-time
//!   drip-feed cannot hold a worker: `408` and close).
//! * A connection is closed after [`ServerConfig::max_requests_per_connection`]
//!   requests (the last response says `Connection: close`).
//! * **Backpressure**: at most [`ServerConfig::max_connections`] connections
//!   are admitted to the pool at once; beyond that the connection gets
//!   `503 Service Unavailable` with a `Retry-After` header and is closed.
//!   Rejections are written off the acceptor thread (bounded by
//!   [`MAX_INFLIGHT_REJECTS`]) so slow rejected clients cannot stall
//!   `accept`; past that bound excess connections are dropped unanswered.
//! * An admitted connection's **idle clock starts at admission**: one that
//!   sat queued behind busy peers longer than the idle timeout is answered
//!   `408` and closed at pickup instead of waiting unboundedly, and the
//!   queue wait is deducted from its first request's idle budget.
//! * `Expect: 100-continue` is honored: once a request's headers pass the
//!   framing checks, `100 Continue` is written before the body is read, so
//!   clients that wait for permission before sending a large `/score` body
//!   don't stall for their continue-timeout. Requests rejected on headers
//!   alone (oversize `Content-Length`, …) get the final status instead;
//!   other `Expect` values are answered `417`.
//!
//! Framing failures (malformed request line, duplicate `Content-Length`,
//! header section over [`MAX_HEADER_BYTES`]/[`MAX_HEADER_COUNT`], oversize
//! or non-UTF-8 bodies, any transfer encoding) are answered on the
//! wire and recorded under the synthetic [`HTTP_PARSE_ENDPOINT`] metrics
//! label — they never reach the router. A peer that connects and closes
//! without sending a request (health probes, the shutdown self-connect,
//! the normal end of every keep-alive connection) is a clean close, not an
//! error.
//!
//! Shutdown: flip an atomic flag, then self-connect to unblock `accept`;
//! dropping the channel sender drains the workers. Workers notice the flag
//! at the next request boundary and stop renewing keep-alive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http_metrics::HttpMetrics;
use crate::router::{Response, Router, MAX_BODY_BYTES};

/// Metrics endpoint label for requests rejected by the HTTP layer before
/// the router runs (framing/parse failures).
pub const HTTP_PARSE_ENDPOINT: &str = "http_parse";

/// Cap on the request header section (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Cap on the number of request headers.
pub const MAX_HEADER_COUNT: usize = 100;

/// 503 rejections being written concurrently; beyond this, over-budget
/// connections are dropped without a response (the acceptor never blocks
/// on a rejected client, and rejection threads stay bounded).
pub const MAX_INFLIGHT_REJECTS: usize = 64;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// In-request deadline: once the first byte of a request line arrives,
    /// the full request (headers + body) must arrive within this long —
    /// otherwise `408` and close. A deadline rather than a per-read
    /// timeout, so trickling one byte per read cannot hold a worker.
    pub read_timeout: Duration,
    /// Keep-alive idle timeout: how long a connection may sit between
    /// requests before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it.
    pub max_requests_per_connection: usize,
    /// Per-client fairness: the size of each remote IP's token bucket
    /// (its connection burst allowance). `0` disables per-client
    /// throttling. The global [`ServerConfig::max_connections`] budget is
    /// first-come-first-served, so without a bucket one chatty client
    /// opening connections in a tight loop can drain it and starve
    /// everyone else; with a bucket, each accepted connection spends one
    /// token and an empty bucket answers `429 Too Many Requests` with
    /// `Retry-After` (counted in `kg_serve_throttled_connections_total`).
    pub client_bucket_size: u32,
    /// Tokens returned to each client's bucket per second (sustained
    /// connections-per-second allowance once the burst is spent).
    pub client_bucket_refill_per_sec: f64,
    /// Concurrent connections admitted to the worker pool (in service or
    /// queued); beyond this the connection gets 503 and is closed.
    ///
    /// An open connection occupies one worker for its whole life, so
    /// connections past `workers` wait queued until a worker's current
    /// connection ends (its peer closes, goes idle past
    /// [`ServerConfig::idle_timeout`], or hits the per-connection request
    /// cap). The queue wait is bounded by the idle clock, which starts at
    /// admission: a connection picked up after more than `idle_timeout`
    /// in the queue is answered `408` and closed rather than served
    /// stale. Still, *busy* peers can hold a worker for up to
    /// `max_requests_per_connection` requests, so size this relative to
    /// `workers`: a small multiple absorbs bursts of short-lived
    /// connections; latency-sensitive deployments that prefer a fast 503
    /// over a queue wait should keep it at or near `workers`.
    pub max_connections: usize,
    /// `Retry-After` seconds advertised on 503 rejections.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = kg_core::parallel::default_threads();
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            read_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
            client_bucket_size: 0,
            client_bucket_refill_per_sec: 8.0,
            // Coupled to the pool: every admitted connection needs a
            // worker eventually, so the queue a connection can land in is
            // at most 3x the pool. Idle connections ahead of it recycle
            // within idle_timeout; busy ones do not (see the field docs),
            // which is why this stays a small multiple rather than a big
            // absolute number.
            max_connections: (workers * 4).max(16),
            retry_after_secs: 1,
        }
    }
}

/// A running server; dropping the handle leaves it running (detached) —
/// call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain workers, and join every thread. Workers
    /// finishing a kept-alive connection stop renewing it at the next
    /// request boundary (or its idle timeout).
    pub fn shutdown(mut self) {
        // ORDERING: SeqCst deliberately — shutdown is a once-per-process
        // cold path, and the flag must be globally visible before the
        // wake-up connection below races the acceptor's next load.
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-client token buckets keyed by remote IP — the fairness gate in
/// front of the global connection budget. Owned by the acceptor thread
/// alone (no locking): each accepted connection spends one token from its
/// client's bucket, refilled continuously at the configured rate.
struct ClientBuckets {
    size: f64,
    refill_per_sec: f64,
    buckets: std::collections::HashMap<std::net::IpAddr, (f64, Instant)>,
}

/// Distinct client IPs tracked before full buckets are pruned (bounds the
/// map against address-diverse scanners; a full bucket carries no state
/// worth keeping).
const MAX_TRACKED_CLIENTS: usize = 4096;

impl ClientBuckets {
    fn new(size: u32, refill_per_sec: f64) -> Option<Self> {
        (size > 0).then(|| ClientBuckets {
            size: f64::from(size),
            refill_per_sec: refill_per_sec.max(0.0),
            buckets: std::collections::HashMap::new(),
        })
    }

    /// Spend one token for `ip`; `Ok(())` admits, `Err(retry_secs)`
    /// throttles with a suggested wait until a token is available.
    fn admit(&mut self, ip: std::net::IpAddr, now: Instant) -> Result<(), u64> {
        if self.buckets.len() >= MAX_TRACKED_CLIENTS && !self.buckets.contains_key(&ip) {
            self.prune(now);
        }
        let (tokens, last) = self.buckets.entry(ip).or_insert((self.size, now));
        let refilled = (*tokens
            + now.saturating_duration_since(*last).as_secs_f64() * self.refill_per_sec)
            .min(self.size);
        *last = now;
        if refilled >= 1.0 {
            *tokens = refilled - 1.0;
            Ok(())
        } else {
            *tokens = refilled;
            let wait = if self.refill_per_sec > 0.0 {
                ((1.0 - refilled) / self.refill_per_sec).ceil() as u64
            } else {
                // Refill disabled: the burst is a hard cap for the
                // connection's lifetime; advertise a nominal second.
                1
            };
            Err(wait.max(1))
        }
    }

    /// Drop clients whose buckets have refilled to full — they are
    /// indistinguishable from never-seen clients.
    fn prune(&mut self, now: Instant) {
        let (size, rate) = (self.size, self.refill_per_sec);
        self.buckets.retain(|_, (tokens, last)| {
            *tokens + now.saturating_duration_since(*last).as_secs_f64() * rate < size
        });
        // Address-diverse flood: every bucket is mid-refill. Clear rather
        // than grow without bound — forgetting a throttle is cheaper than
        // an unbounded map.
        if self.buckets.len() >= MAX_TRACKED_CLIENTS {
            self.buckets.clear();
        }
    }
}

/// Counting semaphore for connection admission; a permit is held from
/// accept until the worker finishes the connection.
struct ConnectionBudget {
    available: AtomicUsize,
}

impl ConnectionBudget {
    fn new(permits: usize) -> Arc<Self> {
        Arc::new(ConnectionBudget { available: AtomicUsize::new(permits.max(1)) })
    }

    fn try_acquire(self: &Arc<Self>) -> Option<ConnectionPermit> {
        self.available
            // ORDERING: AcqRel on success pairs with the Release half of
            // the drop's fetch_add — acquiring a permit happens-after the
            // release that freed it, so permit-guarded state hands off
            // cleanly.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .ok()
            .map(|_| ConnectionPermit { budget: Arc::clone(self) })
    }
}

struct ConnectionPermit {
    budget: Arc<ConnectionBudget>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        // ORDERING: AcqRel — the Release half publishes this connection's
        // teardown to the next `try_acquire`; see above.
        self.budget.available.fetch_add(1, Ordering::AcqRel);
    }
}

/// Decrements the active-connections gauge on drop, so a panicking
/// request handler cannot leave `kg_serve_connections_active` inflated.
struct ActiveConnectionGuard(Arc<HttpMetrics>);

impl Drop for ActiveConnectionGuard {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

/// Per-connection knobs the workers need (a `ServerConfig` subset).
#[derive(Clone)]
struct ConnTuning {
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests_per_connection: usize,
}

/// Bind and start serving `router` in background threads.
pub fn serve(router: Router, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::clone(router.metrics());
    let router = Arc::new(router);
    // Each admitted connection carries its admission instant: the idle
    // clock starts when the acceptor queues the connection, not when a
    // worker finally picks it up, so time spent queued behind busy peers
    // counts against the idle timeout.
    let (tx, rx) = mpsc::channel::<(TcpStream, ConnectionPermit, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let tuning = ConnTuning {
        read_timeout: config.read_timeout,
        idle_timeout: config.idle_timeout,
        max_requests_per_connection: config.max_requests_per_connection.max(1),
    };

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let router = Arc::clone(&router);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let tuning = tuning.clone();
            std::thread::spawn(move || loop {
                // PANIC-OK: channel mutex poisoning means another worker
                // panicked outside its catch_unwind — unrecoverable, and
                // rethrowing here is the only honest option.
                // HELD-OK: this mutex exists solely to serialize recv()
                // across pool workers (std mpsc receivers are !Sync); the
                // guard dies at the end of this statement, before the
                // accepted connection is handled. Blocking here IS the
                // idle state of the pool.
                let (stream, _permit, admitted) = match rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return, // sender dropped: shutdown
                };
                metrics.connection_opened();
                let gauge = ActiveConnectionGuard(Arc::clone(&metrics));
                // catch_unwind: a panicking handler (poisoned lock, model
                // bug) must cost one connection, not one pool worker.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, &router, &metrics, &tuning, &stop, admitted);
                }));
                drop(gauge);
                // `_permit` drops here, releasing the connection budget.
            })
        })
        .collect();

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        let budget = ConnectionBudget::new(config.max_connections);
        let retry_after_secs = config.retry_after_secs;
        let mut client_buckets =
            ClientBuckets::new(config.client_bucket_size, config.client_bucket_refill_per_sec);
        std::thread::spawn(move || {
            let inflight_rejects = Arc::new(AtomicUsize::new(0));
            // Turn a connection away off-thread: a rejected client that
            // won't read (or close) must not stall accept. The in-flight
            // bound keeps a rejection storm from spawning without limit —
            // past it, drop the connection unanswered.
            let reject = |s: TcpStream, status: u16, message: &'static str, retry_after: u64| {
                let admitted = inflight_rejects
                    // ORDERING: AcqRel pairs with the decrement below — an
                    // admit happens-after the completion of the rejection
                    // slot it reuses, bounding live reject threads at the
                    // cap.
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < MAX_INFLIGHT_REJECTS).then_some(n + 1)
                    })
                    .is_ok();
                if admitted {
                    let inflight = Arc::clone(&inflight_rejects);
                    std::thread::spawn(move || {
                        let _ = reject_connection(s, status, message, retry_after);
                        // ORDERING: AcqRel — the Release half publishes
                        // this slot's completion to the next fetch_update.
                        inflight.fetch_sub(1, Ordering::AcqRel);
                    });
                }
            };
            for stream in listener.incoming() {
                // ORDERING: SeqCst pairs with the store in `shutdown` —
                // cold per-connection check, clarity over cycles.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(s) = stream else { continue };
                // Per-client fairness gate first: one chatty client must
                // not be able to reach (and drain) the shared budget at
                // all once its own allowance is spent.
                if let Some(buckets) = &mut client_buckets {
                    if let Ok(peer) = s.peer_addr() {
                        if let Err(wait) = buckets.admit(peer.ip(), Instant::now()) {
                            metrics.connection_throttled();
                            reject(s, 429, "client connection budget exhausted", wait);
                            continue;
                        }
                    }
                }
                match budget.try_acquire() {
                    Some(permit) => {
                        if tx.send((s, permit, Instant::now())).is_err() {
                            break;
                        }
                    }
                    None => {
                        metrics.connection_rejected();
                        reject(s, 503, "server at connection capacity", retry_after_secs);
                    }
                }
            }
            // tx drops here; workers drain and exit.
        })
    };

    Ok(ServerHandle { addr, stop, acceptor: Some(acceptor), workers })
}

/// Turn away a connection the admission gates refused: `503` (global
/// budget) or `429` (per-client bucket), both with `Retry-After`. Runs on
/// a short-lived rejection thread (never the acceptor), bounded by a
/// write timeout and a capped lingering drain.
fn reject_connection(
    mut stream: TcpStream,
    status: u16,
    message: &str,
    retry_after_secs: u64,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    stream.set_nodelay(true)?;
    let body = format!(r#"{{"error":"{message}"}}"#);
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n",
        reason_phrase(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    linger_close(&stream);
    Ok(())
}

/// Serve every request a connection carries, in arrival order. `admitted`
/// is when the acceptor queued the connection: its idle clock starts
/// there, so a connection that sat in the handoff queue behind busy peers
/// longer than the idle timeout is answered with `408` and closed instead
/// of waiting unboundedly (and then being served stale to a client that
/// has likely given up).
fn handle_connection(
    stream: TcpStream,
    router: &Router,
    metrics: &HttpMetrics,
    tuning: &ConnTuning,
    stop: &AtomicBool,
    admitted: Instant,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    let queued = admitted.elapsed();
    if queued >= tuning.idle_timeout {
        metrics.observe_request(HTTP_PARSE_ENDPOINT, queued.as_micros() as u64, 408);
        let resp = Response::error(408, "connection queued longer than the idle timeout");
        write_response(reader.get_mut(), &resp, ConnDirective::Close, tuning.read_timeout)?;
        linger_close(reader.get_ref());
        return Ok(());
    }
    // What is left of the idle budget bounds the wait for the first
    // request; later requests get the full timeout again.
    let mut idle_budget = tuning.idle_timeout - queued;
    let mut served = 0usize;
    loop {
        // Between requests the generous idle timeout applies; read_request
        // arms the in-request deadline once bytes arrive. Skip the
        // setsockopt when the next (pipelined) request is already buffered
        // — nothing will wait on the socket with the idle timeout armed.
        if reader.buffer().is_empty() {
            reader.get_ref().set_read_timeout(Some(idle_budget))?;
        }
        let mut started: Option<Instant> = None;
        let request = match read_request(&mut reader, tuning.read_timeout, &mut started) {
            Ok(Some(r)) => r,
            // EOF or idle expiry before a request line: the normal end of a
            // kept-alive connection. Close without writing anything.
            Ok(None) => return Ok(()),
            // The peer died (or stalled) mid-request; there is no framing
            // left to trust and usually no reader for a reply.
            Err(ParseError::Io(e)) => return Err(e),
            Err(ParseError::Bad(status, msg)) => {
                // Count HTTP-layer rejections the router never sees, under
                // one synthetic endpoint label. Latency counts from the
                // request's first byte, not from when the client last went
                // idle on the kept-alive socket.
                metrics.observe_request(
                    HTTP_PARSE_ENDPOINT,
                    started.map_or(0, |t| t.elapsed().as_micros() as u64),
                    status,
                );
                // A framing error poisons the byte stream; always close.
                let resp = Response::error(status, msg);
                write_response(reader.get_mut(), &resp, ConnDirective::Close, tuning.read_timeout)?;
                linger_close(reader.get_ref());
                return Ok(());
            }
        };
        served += 1;
        idle_budget = tuning.idle_timeout;
        if served > 1 {
            metrics.connection_reused();
        }
        let remaining = tuning.max_requests_per_connection.saturating_sub(served);
        // ORDERING: SeqCst pairs with the store in `shutdown`; once per
        // request, not per byte, so the fence cost is noise.
        let keep = request.keep_alive && remaining > 0 && !stop.load(Ordering::SeqCst);
        let response = router.handle(&request.method, &request.path, &request.body);
        let directive = if keep {
            ConnDirective::KeepAlive {
                // Floor, never round up: advertising more idle time than
                // the server grants invites writes into a closed socket
                // (sub-second configs honestly advertise `timeout=0`).
                timeout_secs: tuning.idle_timeout.as_secs(),
                remaining,
            }
        } else {
            ConnDirective::Close
        };
        // Writes get their own read_timeout-sized deadline (a request is
        // bounded by ~2x read_timeout end to end): a client that sends
        // requests but never drains responses must not pin a worker (and
        // its connection permit) once the kernel send buffer fills.
        write_response(reader.get_mut(), &response, directive, tuning.read_timeout)?;
        if !keep {
            linger_close(reader.get_ref());
            return Ok(());
        }
    }
}

/// Close a connection we wrote a final response on without destroying that
/// response: the client may have bytes in flight we never read (a rejected
/// request's body, pipelined requests past the per-connection cap), and
/// closing with unread data pending makes the kernel send RST, which can
/// discard the queued response. Signal EOF, then drain briefly (bounded,
/// so a hostile client cannot hold the thread) and let the socket close
/// with FIN.
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut stream = stream;
    for _ in 0..8 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
    /// Whether the *request* permits keeping the connection open
    /// (HTTP/1.1 default, `Connection` header honored both ways).
    keep_alive: bool,
}

enum ParseError {
    Io(std::io::Error),
    /// `(status, message)` — 400 for malformed requests, 408 for requests
    /// that outlive the in-request deadline, 413 for oversize bodies, 417
    /// for unsupported expectations, 431 for an oversize header section,
    /// 501 for unsupported transfer encodings.
    Bad(u16, &'static str),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Arm the socket's per-read timeout with what is left of the in-request
/// deadline, or fail with 408 if it has already passed. Once a request's
/// first byte has arrived (`started` is `Some`), every read on the
/// connection is bounded by the *remaining* deadline — so neither a
/// byte-drip (many short reads) nor a total stall (one long read) can
/// hold a worker past `read_timeout`, and both surface as 408, not a
/// silent close.
fn arm_deadline(
    reader: &BufReader<TcpStream>,
    started: Option<Instant>,
    read_timeout: Duration,
) -> Result<(), ParseError> {
    if let Some(t0) = started {
        let elapsed = t0.elapsed();
        if elapsed >= read_timeout {
            return Err(ParseError::Bad(408, "request read timed out"));
        }
        reader.get_ref().set_read_timeout(Some(read_timeout - elapsed))?;
    }
    Ok(())
}

/// Read one `\n`-terminated line into `buf`, charging `budget`; returns the
/// bytes appended (0 = EOF before any byte). Unlike `read_line`, a line
/// longer than the remaining header budget fails with 431 instead of
/// buffering without bound. Arms `started` (the request's in-request
/// deadline) at the first byte and enforces it on every read.
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    budget: &mut usize,
    started: &mut Option<Instant>,
    read_timeout: Duration,
) -> Result<usize, ParseError> {
    let start = buf.len();
    loop {
        // Only (re-)arm the socket timeout when fill_buf may actually hit
        // the socket — buffered pipelined bytes are served without paying
        // a setsockopt per header line.
        if reader.buffer().is_empty() {
            arm_deadline(reader, *started, read_timeout)?;
        }
        let available = match reader.fill_buf() {
            Ok(a) => a,
            // A timeout after the request began means the deadline (not
            // the between-requests idle timeout) expired mid-read.
            Err(e) if is_timeout(&e) && started.is_some() => {
                return Err(ParseError::Bad(408, "request read timed out"))
            }
            Err(e) => return Err(e.into()),
        };
        if available.is_empty() {
            return Ok(buf.len() - start); // EOF
        }
        started.get_or_insert_with(Instant::now);
        let (take, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        if take > *budget {
            return Err(ParseError::Bad(431, "request header section too large"));
        }
        *budget -= take;
        // PANIC-OK: both arms above bound `take` by `available.len()`.
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if done {
            return Ok(buf.len() - start);
        }
    }
}

/// Read one framed request off the connection. `Ok(None)` means the peer
/// is done with the connection (EOF or idle-timeout expiry before a
/// request line) — a clean close, not an error. `started` reports when the
/// request's first byte arrived (the in-request deadline anchor, and what
/// parse-failure latency is measured from).
fn read_request(
    reader: &mut BufReader<TcpStream>,
    read_timeout: Duration,
    started: &mut Option<Instant>,
) -> Result<Option<Request>, ParseError> {
    let mut budget = MAX_HEADER_BYTES;
    let mut raw = Vec::new();
    let mut blank_lines = 0usize;
    let line = loop {
        raw.clear();
        match read_line_limited(reader, &mut raw, &mut budget, started, read_timeout) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(ParseError::Io(e)) if raw.is_empty() && is_timeout(&e) => return Ok(None),
            Err(e) => return Err(e),
        }
        let line = std::str::from_utf8(&raw)
            .map_err(|_| ParseError::Bad(400, "request line is not valid UTF-8"))?;
        // RFC 9112 §2.2: ignore at least one CRLF before the request line
        // (hand-rolled clients often send a stray one after a body).
        if !line.trim_end().is_empty() {
            break line.to_string();
        }
        blank_lines += 1;
        if blank_lines > 2 {
            return Err(ParseError::Bad(400, "empty request line"));
        }
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Bad(400, "empty request line"))?.to_string();
    let target = parts.next().ok_or(ParseError::Bad(400, "missing request target"))?;
    let version = parts.next().ok_or(ParseError::Bad(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(400, "unsupported HTTP version"));
    }
    let http10 = version == "HTTP/1.0";
    // Ignore any query string; the API is body-driven.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    let mut conn_close = false;
    let mut conn_keep_alive = false;
    let mut expect_continue = false;
    let mut header_count = 0usize;
    loop {
        raw.clear();
        let n = read_line_limited(reader, &mut raw, &mut budget, started, read_timeout)?;
        if n == 0 {
            return Err(ParseError::Bad(400, "connection closed mid-headers"));
        }
        let header = std::str::from_utf8(&raw)
            .map_err(|_| ParseError::Bad(400, "header is not valid UTF-8"))?
            .trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(ParseError::Bad(431, "too many request headers"));
        }
        // RFC 9112 §5.2: obs-fold continuation lines must be rejected (or
        // folded) — silently treating " Content-Length: 999" as an
        // unrecognized standalone header while an obs-fold-aware peer
        // folds it into the previous field's value is a framing desync.
        if header.starts_with([' ', '\t']) {
            return Err(ParseError::Bad(400, "obsolete header line folding not supported"));
        }
        if let Some((name, value)) = header.split_once(':') {
            // RFC 9112 §5.1: whitespace between the field name and the
            // colon must be rejected — an intermediary that *normalizes*
            // "Content-Length :" would frame the stream differently than
            // one that, like the match below, fails to recognize it.
            if name.ends_with([' ', '\t']) {
                return Err(ParseError::Bad(400, "whitespace before header colon"));
            }
            if name.eq_ignore_ascii_case("content-length") {
                // DIGIT-only per RFC 9110: `str::parse` would also accept
                // "+5", which a fronting intermediary may frame differently
                // — the same desync class as duplicate Content-Length.
                let value = value.trim();
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ParseError::Bad(400, "invalid Content-Length"));
                }
                let parsed =
                    value.parse().map_err(|_| ParseError::Bad(400, "invalid Content-Length"))?;
                // Accepting the last (or any) of several Content-Length
                // values silently would let two framings of one byte stream
                // coexist — the classic request-smuggling setup once
                // requests share a connection.
                if content_length.replace(parsed).is_some() {
                    return Err(ParseError::Bad(400, "duplicate Content-Length header"));
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // We implement no transfer codings at all, and RFC 9112
                // says to 501 codings we don't — silently framing a coded
                // body by Content-Length (or as empty) while a TE-aware
                // intermediary frames it by the coding is a CL.TE desync.
                return Err(ParseError::Bad(501, "transfer encodings not supported"));
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        conn_close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        conn_keep_alive = true;
                    }
                }
            } else if name.eq_ignore_ascii_case("expect") {
                // RFC 9110 §10.1.1: 100-continue is the only expectation
                // defined; anything else is answered 417.
                if value.trim().eq_ignore_ascii_case("100-continue") {
                    expect_continue = true;
                } else {
                    return Err(ParseError::Bad(417, "unsupported Expect value"));
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::Bad(413, "request body too large"));
    }
    // The expectation is only honored once the headers passed every
    // framing check above — a rejected request gets its final status
    // without an interim 100 (the "reject early" path). HTTP/1.0 peers
    // never get a 100 (RFC 9110 §10.1.1), and a body-less request has
    // nothing to continue into. The write shares the request's in-flight
    // deadline (like every other server write) so a client that stops
    // draining its socket cannot pin the worker on the interim response.
    if expect_continue && !http10 && content_length > 0 {
        let deadline = started.unwrap_or_else(Instant::now) + read_timeout;
        write_all_deadline(reader.get_mut(), b"HTTP/1.1 100 Continue\r\n\r\n", deadline)?;
        reader.get_mut().flush()?;
    }
    // Chunked `read` loop instead of `read_exact`, so the in-request
    // deadline also bounds a drip-fed (or stalled) body.
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if reader.buffer().is_empty() {
            arm_deadline(reader, *started, read_timeout)?;
        }
        // PANIC-OK: the loop condition keeps `filled < content_length`
        // == `body.len()`.
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ParseError::Io(std::io::ErrorKind::UnexpectedEof.into())),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Err(ParseError::Bad(408, "request read timed out")),
            Err(e) => return Err(e.into()),
        }
    }
    let body = String::from_utf8(body).map_err(|_| ParseError::Bad(400, "body is not UTF-8"))?;
    let keep_alive = !conn_close && (!http10 || conn_keep_alive);
    Ok(Some(Request { method, path, body, keep_alive }))
}

/// What the response tells the client about the connection's future.
enum ConnDirective {
    /// Stay open: advertise the idle timeout and how many more requests
    /// this connection may carry.
    KeepAlive { timeout_secs: u64, remaining: usize },
    /// Close after this response.
    Close,
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        417 => "Expectation Failed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// `write_all` under a deadline: a per-write socket timeout alone never
/// fires against a client draining a few bytes at a time (each tiny write
/// "makes progress"), so the remaining deadline is re-armed before every
/// write and expiry is an error whatever the pace.
fn write_all_deadline(
    stream: &mut TcpStream,
    mut buf: &[u8],
    deadline: Instant,
) -> std::io::Result<()> {
    while !buf.is_empty() {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::ErrorKind::TimedOut.into());
        }
        stream.set_write_timeout(Some(deadline - now))?;
        match stream.write(buf) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            // PANIC-OK: `write` returns `n <= buf.len()`.
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    directive: ConnDirective,
    write_timeout: Duration,
) -> std::io::Result<()> {
    let connection = match directive {
        ConnDirective::KeepAlive { timeout_secs, remaining } => format!(
            "Connection: keep-alive\r\nKeep-Alive: timeout={timeout_secs}, max={remaining}\r\n"
        ),
        ConnDirective::Close => "Connection: close\r\n".to_string(),
    };
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry_after}{connection}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    let deadline = Instant::now() + write_timeout;
    write_all_deadline(stream, head.as_bytes(), deadline)?;
    write_all_deadline(stream, response.body.as_bytes(), deadline)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::registry::ModelRegistry;
    use kg_core::{FilterIndex, Triple};
    use kg_models::{build_model, KgcModel, ModelKind};

    fn registry() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let model = build_model(ModelKind::TransE, 12, 2, 8, 1);
        let triples = [Triple::new(0, 0, 1), Triple::new(1, 1, 2)];
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
        registry
    }

    fn running_server_with(config: &ServerConfig) -> (ServerHandle, Arc<HttpMetrics>) {
        let registry = registry();
        let metrics = Arc::clone(registry.metrics());
        let router = Router::new(registry);
        (serve(router, config).unwrap(), metrics)
    }

    fn running_server() -> ServerHandle {
        running_server_with(&ServerConfig { workers: 2, ..Default::default() }).0
    }

    /// Send raw bytes on a fresh connection and read until the peer closes.
    fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(bytes).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = running_server();
        let (status, body) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        server.shutdown();
    }

    #[test]
    fn rejects_malformed_requests_without_dying() {
        let server = running_server();
        // Raw garbage instead of HTTP.
        let out = raw_roundtrip(server.addr(), b"GARBAGE\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        // Server still alive afterwards.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_at_the_http_layer() {
        let server = running_server();
        // Announce an oversize body without sending it; the server must
        // reject on the header alone with the API's 413, not a generic 400.
        let head =
            format!("POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let out = raw_roundtrip(server.addr(), head.as_bytes());
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_with_501() {
        let server = running_server();
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 501"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_last_wins() {
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 2, ..Default::default() });
        // Conflicting lengths: two framings of the same byte stream.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("duplicate Content-Length"), "got: {out}");
        // Even *identical* repeats are rejected: no downstream party should
        // have to guess which header framed the body.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        // Both rejections were recorded under the synthetic parse label.
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 2);
        server.shutdown();
    }

    #[test]
    fn whitespace_before_header_colon_is_rejected() {
        let server = running_server();
        // "Content-Length :" must not be silently dropped (0-byte framing)
        // while a normalizing intermediary would honor it — reject instead.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length : 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("whitespace before header colon"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn obsolete_header_folding_is_rejected() {
        let server = running_server();
        // A continuation line that a folding-aware peer would merge into
        // the previous header must not be silently dropped here.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nX-A: 1\r\n Content-Length: 999\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("folding"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn any_transfer_encoding_is_rejected_with_501() {
        let server = running_server();
        // Not just chunked: every coding we don't implement must 501, or
        // the body would be framed differently than a TE-aware peer does.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: gzip\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 501"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn leading_crlf_before_a_request_line_is_tolerated() {
        let server = running_server();
        // RFC 9112 §2.2 — a stray CRLF (hand-rolled clients emit these
        // after bodies) must not poison the next request on the stream.
        let out =
            raw_roundtrip(server.addr(), b"\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        // … but a stream of nothing-but-CRLFs is still malformed.
        let out = raw_roundtrip(server.addr(), b"\r\n\r\n\r\n\r\n\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn content_length_must_be_digits_only() {
        let server = running_server();
        // `"+5".parse::<usize>()` succeeds, but an intermediary may frame
        // the non-canonical value differently — reject like a duplicate.
        for bad in ["+5", "-1", "5 5", "0x5", ""] {
            let head = format!("POST /score HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let out = raw_roundtrip(server.addr(), head.as_bytes());
            assert!(out.starts_with("HTTP/1.1 400"), "Content-Length {bad:?} got: {out}");
        }
        server.shutdown();
    }

    #[test]
    fn header_section_limits_are_enforced_with_431() {
        let server = running_server();
        // Too many headers.
        let mut many = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT + 1) {
            many.push_str(&format!("X-Flood-{i}: 1\r\n"));
        }
        many.push_str("\r\n");
        let out = raw_roundtrip(server.addr(), many.as_bytes());
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");
        assert!(out.contains("Request Header Fields Too Large"), "reason phrase: {out}");
        // One enormous header blowing the byte budget (never buffered
        // whole: the limited reader rejects as soon as the budget is hit).
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES + 1024)
        );
        let out = raw_roundtrip(server.addr(), huge.as_bytes());
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn bare_connect_disconnect_is_a_clean_close() {
        // One worker, so the follow-up request below cannot be answered
        // until every probe before it in the queue has been processed.
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 1, ..Default::default() });
        // A peer that connects and closes without sending anything (TCP
        // health probe, shutdown self-connect) must not be counted as a
        // malformed request.
        for _ in 0..3 {
            drop(TcpStream::connect(server.addr()).unwrap());
        }
        // Follow-up request proves the workers survived; by the time it is
        // answered the probes have been processed (single queue).
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            metrics.requests_for(HTTP_PARSE_ENDPOINT),
            0,
            "clean closes must not be recorded as parse errors"
        );
        server.shutdown();
    }

    #[test]
    fn post_roundtrip_over_the_wire() {
        let server = running_server();
        let (status, body) =
            client::post_json(server.addr(), "/score", r#"{"model":"m","triples":[[0,1,2]]}"#)
                .unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"scores\""));
        server.shutdown();
    }

    #[test]
    fn keep_alive_connection_serves_sequential_requests() {
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 2, ..Default::default() });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        for i in 0..5 {
            let (status, body) = conn.get("/healthz").unwrap();
            assert_eq!(status, 200, "request {i}: {body}");
        }
        assert!(!conn.server_closed(), "server must keep the connection open");
        assert_eq!(metrics.keepalive_reuses(), 4, "requests 2..=5 are reuses");
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keep_alive() {
        let server = running_server();
        // HTTP/1.0 without Connection: keep-alive → server closes (the
        // read_to_string below returning proves the close happened).
        let out = raw_roundtrip(server.addr(), b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("Connection: close"), "1.0 defaults to close: {out}");
        // HTTP/1.1 → keep-alive advertised; close our end to finish.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 4096];
        let n = s.read(&mut buf).unwrap();
        let out = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(out.contains("Connection: keep-alive"), "1.1 defaults to keep-alive: {out}");
        assert!(out.contains("Keep-Alive: timeout="), "advertises the idle timeout: {out}");
        drop(s);
        server.shutdown();
    }

    #[test]
    fn drip_fed_requests_hit_the_in_request_deadline() {
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..Default::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // A byte every 25 ms resets any per-read socket timeout forever;
        // only the whole-request deadline can end this.
        let started = Instant::now();
        for &b in b"GET /healthz HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaa" {
            if s.write_all(&[b]).is_err() {
                break; // server already hung up on us — that's the point
            }
            std::thread::sleep(Duration::from_millis(25));
            if started.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408"), "got: {out}");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "the deadline, not the drip length, must bound the connection"
        );
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 1);
        server.shutdown();
    }

    #[test]
    fn pipeline_returns_partial_results_when_the_cap_closes_the_connection() {
        let (server, _) = running_server_with(&ServerConfig {
            workers: 1,
            max_requests_per_connection: 2,
            ..Default::default()
        });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let requests: Vec<(&str, &str, Option<&str>)> =
            (0..4).map(|_| ("GET", "/healthz", None)).collect();
        let responses = conn.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), 2, "the cap allows exactly two answered requests");
        assert!(responses.iter().all(|(status, _)| *status == 200));
        assert!(conn.server_closed(), "the second response carried Connection: close");
        server.shutdown();
    }

    #[test]
    fn queued_connections_time_out_instead_of_waiting_unboundedly() {
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(250),
            ..Default::default()
        });
        // Occupy the only worker with a kept-alive connection …
        let mut held = client::Connection::open(server.addr()).unwrap();
        held.get("/healthz").unwrap();
        // … and queue a second connection behind it with its request
        // already on the wire.
        let mut queued = TcpStream::connect(server.addr()).unwrap();
        queued.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        // Keep the worker pinned well past the idle timeout (the held
        // connection never idles out because it keeps sending requests).
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(100));
            held.get("/healthz").unwrap();
        }
        drop(held);
        // The worker frees and picks the queued connection up — which has
        // now been waiting ~400 ms, past its 250 ms idle budget: 408, not
        // a stale 200.
        queued.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        let _ = queued.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408"), "got: {out}");
        assert!(out.contains("queued longer"), "names the queue wait: {out}");
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 1);
        server.shutdown();
    }

    #[test]
    fn briefly_queued_connections_are_served_normally() {
        let (server, _) = running_server_with(&ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_secs(5),
            ..Default::default()
        });
        // Hold the worker briefly, well under the idle timeout.
        let mut held = client::Connection::open(server.addr()).unwrap();
        held.get("/healthz").unwrap();
        let mut queued = TcpStream::connect(server.addr()).unwrap();
        queued.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(held);
        let mut out = String::new();
        queued.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = queued.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200"), "brief queueing must not 408: {out}");
        server.shutdown();
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response_before_the_body() {
        let server = running_server();
        let body = r#"{"model":"m","triples":[[0,1,2]]}"#;
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let head = format!(
            "POST /score HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nExpect: 100-continue\r\nConnection: close\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        // The interim response must arrive although no body byte was sent
        // (pre-fix the server sat waiting for the body instead).
        let mut interim = Vec::new();
        let mut byte = [0u8; 1];
        while !interim.ends_with(b"\r\n\r\n") {
            s.read_exact(&mut byte).expect("100 Continue must arrive before the body is sent");
            interim.extend_from_slice(&byte);
            assert!(interim.len() < 256, "interim response unreasonably large");
        }
        let interim = String::from_utf8(interim).unwrap();
        assert!(interim.starts_with("HTTP/1.1 100 Continue\r\n"), "got: {interim}");
        // Now ship the body and read the final response.
        s.write_all(body.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("\"scores\""), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn expect_100_continue_is_rejected_early_with_the_final_status() {
        let server = running_server();
        // Oversize announcement: the server must answer 413 immediately,
        // never 100 — the client keeps its megabytes.
        let head = format!(
            "POST /score HTTP/1.1\r\nContent-Length: {}\r\nExpect: 100-continue\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let out = raw_roundtrip(server.addr(), head.as_bytes());
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        assert!(!out.contains("100 Continue"), "no interim response on rejection: {out}");
        // Unknown expectations are answered 417.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nExpect: x-make-it-fast\r\nContent-Length: 2\r\n\r\n{}",
        );
        assert!(out.starts_with("HTTP/1.1 417"), "got: {out}");
        assert!(out.contains("Expectation Failed"), "reason phrase: {out}");
        server.shutdown();
    }

    #[test]
    fn client_expect_continue_handshake_matches_plain_post() {
        let server = running_server();
        let body = r#"{"model":"m","triples":[[0,1,2],[3,0,4]]}"#;
        let (plain_status, plain_body) = client::post_json(server.addr(), "/score", body).unwrap();
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let (status, got) = conn.post_json_expect_continue("/score", body).unwrap();
        assert_eq!((status, &got), (plain_status, &plain_body), "handshake changed the response");
        // The connection stays usable for further requests afterwards.
        let (status, _) = conn.get("/healthz").unwrap();
        assert_eq!(status, 200);
        // An empty body (no 100 will come) degrades to a plain request
        // without spending the connection.
        let (status, _) = conn.post_json_expect_continue("/score", "").unwrap();
        assert_eq!(status, 400, "empty body is a routing 400, not a handshake failure");
        assert!(!conn.server_closed(), "an empty-body handshake must not spend the socket");
        // A post-100 routing failure still round-trips normally.
        let (status, rejected) =
            conn.post_json_expect_continue("/score", "not json at all").unwrap();
        assert_eq!(status, 400, "{rejected}");
        drop(conn);
        // Early rejection path: the headers alone draw the final status,
        // the interim 100 never comes, and the huge body is never sent.
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let huge = "x".repeat(MAX_BODY_BYTES + 1);
        let (status, rejected) = conn.post_json_expect_continue("/score", &huge).unwrap();
        assert_eq!(status, 413, "{rejected}");
        assert!(conn.server_closed(), "an announced-but-unsent body spends the connection");
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn chatty_clients_are_throttled_with_429_and_recover_on_refill() {
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 2,
            client_bucket_size: 3,
            client_bucket_refill_per_sec: 2.0,
            ..Default::default()
        });
        // The burst allowance admits the first three connections …
        for i in 0..3 {
            let (status, _) = client::get(server.addr(), "/healthz").unwrap();
            assert_eq!(status, 200, "burst connection {i}");
        }
        // … the fourth (opened immediately) is throttled at the door.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests"), "got: {out}");
        assert!(out.contains("Retry-After:"), "advertises a wait: {out}");
        assert!(out.contains("client connection budget"), "names the bucket: {out}");
        assert_eq!(metrics.throttled_connections(), 1);
        assert_eq!(
            metrics.rejected_connections(),
            0,
            "throttling is per-client fairness, not the global 503 budget"
        );
        // Refill restores service for the same client.
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(50));
            if let Ok((200, _)) = client::get(server.addr(), "/healthz") {
                ok = true;
                break;
            }
        }
        assert!(ok, "the bucket must refill at the configured rate");
        server.shutdown();
    }

    #[test]
    fn token_bucket_math_admits_bursts_and_meters_sustained_rates() {
        let ip: std::net::IpAddr = "10.0.0.1".parse().unwrap();
        let other: std::net::IpAddr = "10.0.0.2".parse().unwrap();
        let t0 = Instant::now();
        let mut buckets = ClientBuckets::new(2, 1.0).unwrap();
        assert!(buckets.admit(ip, t0).is_ok());
        assert!(buckets.admit(ip, t0).is_ok(), "burst of bucket-size admits");
        let wait = buckets.admit(ip, t0).unwrap_err();
        assert!(wait >= 1, "empty bucket advertises a wait");
        // A different client is unaffected — that is the fairness point.
        assert!(buckets.admit(other, t0).is_ok());
        // One second later one token has returned — for one connection.
        let t1 = t0 + Duration::from_secs(1);
        assert!(buckets.admit(ip, t1).is_ok());
        assert!(buckets.admit(ip, t1).is_err(), "refill is metered, not a reset");
        // The bucket never overfills past its size.
        let t9 = t0 + Duration::from_secs(60);
        assert!(buckets.admit(ip, t9).is_ok());
        assert!(buckets.admit(ip, t9).is_ok());
        assert!(buckets.admit(ip, t9).is_err(), "long idling caps at the burst size");
        // Size 0 disables the gate entirely.
        assert!(ClientBuckets::new(0, 1.0).is_none());
    }

    #[test]
    fn max_requests_per_connection_is_enforced() {
        let (server, _) = running_server_with(&ServerConfig {
            workers: 1,
            max_requests_per_connection: 2,
            ..Default::default()
        });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let (s1, _) = conn.get("/healthz").unwrap();
        let (s2, _) = conn.get("/healthz").unwrap();
        assert_eq!((s1, s2), (200, 200));
        assert!(conn.server_closed(), "second response must carry Connection: close");
        assert!(conn.get("/healthz").is_err(), "third request has no connection to use");
        server.shutdown();
    }
}
