//! Dependency-free HTTP/1.1 server on `std::net::TcpListener`.
//!
//! One acceptor thread hands connections to a fixed worker pool over an
//! `mpsc` channel; each worker parses the request (request line, headers,
//! `Content-Length` body), routes it, and writes the response with
//! `Connection: close` semantics. Parallelism *within* a request comes from
//! `kg_core::parallel` (the batcher and ranking passes); the pool exists so
//! slow requests don't head-of-line-block the accept loop.
//!
//! Shutdown: flip an atomic flag, then self-connect to unblock `accept`;
//! dropping the channel sender drains the workers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::router::{Response, Router, MAX_BODY_BYTES};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: kg_core::parallel::default_threads(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A running server; dropping the handle leaves it running (detached) —
/// call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind and start serving `router` in background threads.
pub fn serve(router: Router, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let router = Arc::new(router);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let router = Arc::clone(&router);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || loop {
                let stream = match rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return, // sender dropped: shutdown
                };
                let _ = handle_connection(stream, &router, read_timeout);
            })
        })
        .collect();

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // tx drops here; workers drain and exit.
        })
    };

    Ok(ServerHandle { addr, stop, acceptor: Some(acceptor), workers })
}

fn handle_connection(
    stream: TcpStream,
    router: &Router,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);

    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(ParseError::Io(e)) => return Err(e),
        Err(ParseError::Bad(status, msg)) => {
            let resp = Response {
                status,
                content_type: "application/json",
                body: format!("{{\"error\":\"{msg}\"}}"),
            };
            return write_response(reader.into_inner(), &resp);
        }
    };
    let response = router.handle(&request.method, &request.path, &request.body);
    write_response(reader.into_inner(), &response)
}

struct Request {
    method: String,
    path: String,
    body: String,
}

enum ParseError {
    Io(std::io::Error),
    /// `(status, message)` — 400 for malformed requests, 413 for oversize,
    /// 501 for unsupported transfer encodings.
    Bad(u16, &'static str),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ParseError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Bad(400, "empty request line"))?.to_string();
    let target = parts.next().ok_or(ParseError::Bad(400, "missing request target"))?;
    let version = parts.next().ok_or(ParseError::Bad(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(400, "unsupported HTTP version"));
    }
    // Ignore any query string; the API is body-driven.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(ParseError::Bad(400, "connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Bad(400, "invalid Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.to_ascii_lowercase().contains("chunked")
            {
                // We only read Content-Length-framed bodies; silently
                // treating a chunked body as empty would misdiagnose valid
                // requests as bad JSON.
                return Err(ParseError::Bad(501, "chunked transfer encoding not supported"));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::Bad(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| ParseError::Bad(400, "body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

fn write_response(mut stream: TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        501 => "Not Implemented",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::registry::ModelRegistry;
    use kg_core::{FilterIndex, Triple};
    use kg_models::{build_model, KgcModel, ModelKind};

    fn running_server() -> ServerHandle {
        let registry = Arc::new(ModelRegistry::new());
        let model = build_model(ModelKind::TransE, 12, 2, 8, 1);
        let triples = [Triple::new(0, 0, 1), Triple::new(1, 1, 2)];
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
        let router = Router::new(registry);
        serve(router, &ServerConfig { workers: 2, ..Default::default() }).unwrap()
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = running_server();
        let (status, body) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        server.shutdown();
    }

    #[test]
    fn rejects_malformed_requests_without_dying() {
        let server = running_server();
        // Raw garbage instead of HTTP.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        // Server still alive afterwards.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_at_the_http_layer() {
        let server = running_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Announce an oversize body without sending it; the server must
        // reject on the header alone with the API's 413, not a generic 400.
        let head =
            format!("POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        s.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_with_501() {
        let server = running_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 501"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn post_roundtrip_over_the_wire() {
        let server = running_server();
        let (status, body) =
            client::post_json(server.addr(), "/score", r#"{"model":"m","triples":[[0,1,2]]}"#)
                .unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"scores\""));
        server.shutdown();
    }
}
