//! Dependency-free HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Serving is split between one **reactor** thread and a fixed worker
//! pool (see [`crate::reactor`]): the reactor multiplexes every
//! connection over a readiness poller ([`crate::poll`], epoll on Linux,
//! kqueue on the BSDs/macOS), frames requests incrementally off
//! non-blocking sockets, and hands each completed request to the pool;
//! a worker is busy only while a request executes. Thousands of mostly
//! idle keep-alive connections therefore coexist with a handful of
//! workers — connection count is bounded by fds and memory, not threads.
//!
//! ## Connection semantics
//!
//! * HTTP/1.1 requests default to **keep-alive**; HTTP/1.0 requests default
//!   to close (opt in with `Connection: keep-alive`). A `Connection: close`
//!   request header is honored, and every response states its decision
//!   (`Connection: keep-alive` + `Keep-Alive: timeout=…, max=…`, or
//!   `Connection: close`).
//! * **Pipelined** requests on one socket are answered strictly in order:
//!   a connection dispatches one request at a time, and bytes the client
//!   sent ahead wait in its read buffer until the response is flushed.
//! * Two read timeouts: [`ServerConfig::idle_timeout`] while waiting for
//!   a request to *begin* (expiry = normal end of a kept-alive connection,
//!   closed without fuss); once its first byte arrives, the whole request
//!   — header section and body — must land within
//!   [`ServerConfig::read_timeout`] (a deadline, so a byte-at-a-time
//!   drip-feed cannot hold the connection open: `408` and close).
//! * A connection is closed after [`ServerConfig::max_requests_per_connection`]
//!   requests (the last response says `Connection: close`).
//! * **Backpressure**: at most [`ServerConfig::max_connections`] connections
//!   are admitted at once; beyond that the connection gets
//!   `503 Service Unavailable` with a `Retry-After` header and is closed.
//!   Rejections are ordinary buffered non-blocking writes on the reactor
//!   (no thread is spawned and `accept` never stalls behind a slow
//!   rejected client); past the reactor's pending-reject bound, excess
//!   connections are dropped unanswered.
//! * A parsed request that sits **queued at the worker pool** longer than
//!   the idle timeout is answered `408` at pickup instead of being served
//!   stale to a client that has likely given up.
//! * `Expect: 100-continue` is honored: once a request's headers pass the
//!   framing checks, `100 Continue` is written before the body is read, so
//!   clients that wait for permission before sending a large `/score` body
//!   don't stall for their continue-timeout. Requests rejected on headers
//!   alone (oversize `Content-Length`, …) get the final status instead;
//!   other `Expect` values are answered `417`.
//!
//! Framing failures (malformed request line, duplicate `Content-Length`,
//! header section over [`MAX_HEADER_BYTES`]/[`MAX_HEADER_COUNT`], oversize
//! or non-UTF-8 bodies, any transfer encoding) are answered on the
//! wire and recorded under the synthetic [`HTTP_PARSE_ENDPOINT`] metrics
//! label — they never reach the router. A peer that connects and closes
//! without sending a request (health probes, the normal end of every
//! keep-alive connection) is a clean close, not an error.
//!
//! Shutdown: flip an atomic flag, then write one byte to the reactor's
//! waker pipe; the reactor closes the listener and idle connections, lets
//! in-flight responses drain under their write deadlines, and drops the
//! job channel so the workers exit.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::reactor;
use crate::router::Router;

/// Metrics endpoint label for requests rejected by the HTTP layer before
/// the router runs (framing/parse failures).
pub const HTTP_PARSE_ENDPOINT: &str = "http_parse";

/// Cap on the request header section (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Cap on the number of request headers.
pub const MAX_HEADER_COUNT: usize = 100;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Request-executing worker threads. Sizes CPU-bound request
    /// execution only — open connections cost the reactor an fd and a
    /// buffer, never a worker.
    pub workers: usize,
    /// In-request deadline: once the first byte of a request line arrives,
    /// the full request (headers + body) must arrive within this long —
    /// otherwise `408` and close. A deadline rather than a per-read
    /// timeout, so trickling one byte per read cannot hold the connection
    /// open. Responses (and rejections) get a deadline of the same length
    /// for their writes.
    pub read_timeout: Duration,
    /// Keep-alive idle timeout: how long a connection may sit between
    /// requests before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it.
    pub max_requests_per_connection: usize,
    /// Per-client fairness: the size of each remote IP's token bucket
    /// (its connection burst allowance). `0` disables per-client
    /// throttling. The global [`ServerConfig::max_connections`] budget is
    /// first-come-first-served, so without a bucket one chatty client
    /// opening connections in a tight loop can drain it and starve
    /// everyone else; with a bucket, each accepted connection spends one
    /// token and an empty bucket answers `429 Too Many Requests` with
    /// `Retry-After` (counted in `kg_serve_throttled_connections_total`).
    pub client_bucket_size: u32,
    /// Tokens returned to each client's bucket per second (sustained
    /// connections-per-second allowance once the burst is spent).
    pub client_bucket_refill_per_sec: f64,
    /// Concurrent connections admitted by the reactor; beyond this the
    /// connection gets 503 with `Retry-After` and is closed.
    ///
    /// Independent of [`ServerConfig::workers`]: an admitted connection
    /// costs a file descriptor, a slab entry, and two small buffers — not
    /// a thread — so the default comfortably absorbs thousands of mostly
    /// idle keep-alive peers on a small pool. Size it against the
    /// process's fd limit (`ulimit -n`, leaving headroom for model files
    /// and gateway backends) and memory, not against the worker count;
    /// what bounds *concurrent execution* is `workers`, and what bounds
    /// per-request queueing is the idle-timeout staleness check at
    /// dispatch.
    pub max_connections: usize,
    /// `Retry-After` seconds advertised on 503 rejections.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: kg_core::parallel::default_threads(),
            read_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
            client_bucket_size: 0,
            client_bucket_refill_per_sec: 8.0,
            // Decoupled from the pool (connections are reactor state, not
            // worker threads); see the field docs for sizing guidance.
            max_connections: 4096,
            retry_after_secs: 1,
        }
    }
}

/// A running server; dropping the handle leaves it running (detached) —
/// call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    waker: Arc<reactor::Waker>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight responses, and join every thread.
    /// Idle kept-alive connections are closed immediately; dispatched
    /// requests finish and their responses flush under the usual write
    /// deadlines.
    pub fn shutdown(mut self) {
        // ORDERING: SeqCst deliberately — shutdown is a once-per-process
        // cold path, and the flag must be globally visible before the
        // waker byte lifts the reactor out of its poll wait.
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind and start serving `router`: one reactor thread plus
/// [`ServerConfig::workers`] request executors.
pub fn serve(router: Router, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::clone(router.metrics());
    let (reactor, workers, waker) =
        reactor::spawn(listener, Arc::new(router), metrics, Arc::clone(&stop), config)?;
    Ok(ServerHandle { addr, stop, reactor: Some(reactor), workers, waker })
}

/// Per-client token buckets keyed by remote IP — the fairness gate in
/// front of the global connection budget. Owned by the reactor thread
/// alone (no locking): each accepted connection spends one token from its
/// client's bucket, refilled continuously at the configured rate.
pub(crate) struct ClientBuckets {
    size: f64,
    refill_per_sec: f64,
    buckets: std::collections::HashMap<std::net::IpAddr, (f64, Instant)>,
}

/// Distinct client IPs tracked before full buckets are pruned (bounds the
/// map against address-diverse scanners; a full bucket carries no state
/// worth keeping).
const MAX_TRACKED_CLIENTS: usize = 4096;

impl ClientBuckets {
    pub(crate) fn new(size: u32, refill_per_sec: f64) -> Option<Self> {
        (size > 0).then(|| ClientBuckets {
            size: f64::from(size),
            refill_per_sec: refill_per_sec.max(0.0),
            buckets: std::collections::HashMap::new(),
        })
    }

    /// Spend one token for `ip`; `Ok(())` admits, `Err(retry_secs)`
    /// throttles with a suggested wait until a token is available.
    pub(crate) fn admit(&mut self, ip: std::net::IpAddr, now: Instant) -> Result<(), u64> {
        if self.buckets.len() >= MAX_TRACKED_CLIENTS && !self.buckets.contains_key(&ip) {
            self.prune(now);
        }
        let (tokens, last) = self.buckets.entry(ip).or_insert((self.size, now));
        let refilled = (*tokens
            + now.saturating_duration_since(*last).as_secs_f64() * self.refill_per_sec)
            .min(self.size);
        *last = now;
        if refilled >= 1.0 {
            *tokens = refilled - 1.0;
            Ok(())
        } else {
            *tokens = refilled;
            let wait = if self.refill_per_sec > 0.0 {
                ((1.0 - refilled) / self.refill_per_sec).ceil() as u64
            } else {
                // Refill disabled: the burst is a hard cap for the
                // connection's lifetime; advertise a nominal second.
                1
            };
            Err(wait.max(1))
        }
    }

    /// Drop clients whose buckets have refilled to full — they are
    /// indistinguishable from never-seen clients.
    fn prune(&mut self, now: Instant) {
        let (size, rate) = (self.size, self.refill_per_sec);
        self.buckets.retain(|_, (tokens, last)| {
            *tokens + now.saturating_duration_since(*last).as_secs_f64() * rate < size
        });
        // Address-diverse flood: every bucket is mid-refill. Clear rather
        // than grow without bound — forgetting a throttle is cheaper than
        // an unbounded map.
        if self.buckets.len() >= MAX_TRACKED_CLIENTS {
            self.buckets.clear();
        }
    }
}

/// Counting semaphore for connection admission; a permit is held from
/// accept until the reactor drops the connection.
pub(crate) struct ConnectionBudget {
    available: AtomicUsize,
}

impl ConnectionBudget {
    pub(crate) fn new(permits: usize) -> Arc<Self> {
        Arc::new(ConnectionBudget { available: AtomicUsize::new(permits.max(1)) })
    }

    pub(crate) fn try_acquire(self: &Arc<Self>) -> Option<ConnectionPermit> {
        self.available
            // ORDERING: AcqRel on success pairs with the Release half of
            // the drop's fetch_add — acquiring a permit happens-after the
            // release that freed it, so permit-guarded state hands off
            // cleanly.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .ok()
            .map(|_| ConnectionPermit { budget: Arc::clone(self) })
    }
}

pub(crate) struct ConnectionPermit {
    budget: Arc<ConnectionBudget>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        // ORDERING: AcqRel — the Release half publishes this connection's
        // teardown to the next `try_acquire`; see above.
        self.budget.available.fetch_add(1, Ordering::AcqRel);
    }
}

pub(crate) fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        417 => "Expectation Failed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::http_metrics::HttpMetrics;
    use crate::registry::ModelRegistry;
    use crate::router::MAX_BODY_BYTES;
    use kg_core::{FilterIndex, Triple};
    use kg_models::{build_model, KgcModel, ModelKind};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn registry() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let model = build_model(ModelKind::TransE, 12, 2, 8, 1);
        let triples = [Triple::new(0, 0, 1), Triple::new(1, 1, 2)];
        let filter = Arc::new(FilterIndex::from_slices(&[&triples]));
        registry.register("m", Arc::from(model as Box<dyn KgcModel>), filter);
        registry
    }

    fn running_server_with(config: &ServerConfig) -> (ServerHandle, Arc<HttpMetrics>) {
        let registry = registry();
        let metrics = Arc::clone(registry.metrics());
        let router = Router::new(registry);
        (serve(router, config).unwrap(), metrics)
    }

    fn running_server() -> ServerHandle {
        running_server_with(&ServerConfig { workers: 2, ..Default::default() }).0
    }

    /// Send raw bytes on a fresh connection and read until the peer closes.
    fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(bytes).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = running_server();
        let (status, body) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        server.shutdown();
    }

    #[test]
    fn rejects_malformed_requests_without_dying() {
        let server = running_server();
        // Raw garbage instead of HTTP.
        let out = raw_roundtrip(server.addr(), b"GARBAGE\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        // Server still alive afterwards.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_at_the_http_layer() {
        let server = running_server();
        // Announce an oversize body without sending it; the server must
        // reject on the header alone with the API's 413, not a generic 400.
        let head =
            format!("POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let out = raw_roundtrip(server.addr(), head.as_bytes());
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_with_501() {
        let server = running_server();
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 501"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_last_wins() {
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 2, ..Default::default() });
        // Conflicting lengths: two framings of the same byte stream.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 3\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("duplicate Content-Length"), "got: {out}");
        // Even *identical* repeats are rejected: no downstream party should
        // have to guess which header framed the body.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        // Both rejections were recorded under the synthetic parse label.
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 2);
        server.shutdown();
    }

    #[test]
    fn whitespace_before_header_colon_is_rejected() {
        let server = running_server();
        // "Content-Length :" must not be silently dropped (0-byte framing)
        // while a normalizing intermediary would honor it — reject instead.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nContent-Length : 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("whitespace before header colon"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn obsolete_header_folding_is_rejected() {
        let server = running_server();
        // A continuation line that a folding-aware peer would merge into
        // the previous header must not be silently dropped here.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nX-A: 1\r\n Content-Length: 999\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        assert!(out.contains("folding"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn any_transfer_encoding_is_rejected_with_501() {
        let server = running_server();
        // Not just chunked: every coding we don't implement must 501, or
        // the body would be framed differently than a TE-aware peer does.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nTransfer-Encoding: gzip\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 501"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn leading_crlf_before_a_request_line_is_tolerated() {
        let server = running_server();
        // RFC 9112 §2.2 — a stray CRLF (hand-rolled clients emit these
        // after bodies) must not poison the next request on the stream.
        let out =
            raw_roundtrip(server.addr(), b"\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        // … but a stream of nothing-but-CRLFs is still malformed.
        let out = raw_roundtrip(server.addr(), b"\r\n\r\n\r\n\r\n\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn content_length_must_be_digits_only() {
        let server = running_server();
        // `"+5".parse::<usize>()` succeeds, but an intermediary may frame
        // the non-canonical value differently — reject like a duplicate.
        for bad in ["+5", "-1", "5 5", "0x5", ""] {
            let head = format!("POST /score HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let out = raw_roundtrip(server.addr(), head.as_bytes());
            assert!(out.starts_with("HTTP/1.1 400"), "Content-Length {bad:?} got: {out}");
        }
        server.shutdown();
    }

    #[test]
    fn header_section_limits_are_enforced_with_431() {
        let server = running_server();
        // Too many headers.
        let mut many = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT + 1) {
            many.push_str(&format!("X-Flood-{i}: 1\r\n"));
        }
        many.push_str("\r\n");
        let out = raw_roundtrip(server.addr(), many.as_bytes());
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");
        assert!(out.contains("Request Header Fields Too Large"), "reason phrase: {out}");
        // One enormous header blowing the byte budget (never buffered
        // whole: the parser rejects as soon as the budget is hit).
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES + 1024)
        );
        let out = raw_roundtrip(server.addr(), huge.as_bytes());
        assert!(out.starts_with("HTTP/1.1 431"), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn bare_connect_disconnect_is_a_clean_close() {
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 1, ..Default::default() });
        // A peer that connects and closes without sending anything (TCP
        // health probe) must not be counted as a malformed request.
        for _ in 0..3 {
            drop(TcpStream::connect(server.addr()).unwrap());
        }
        // Follow-up request proves the server survived the probes.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            metrics.requests_for(HTTP_PARSE_ENDPOINT),
            0,
            "clean closes must not be recorded as parse errors"
        );
        server.shutdown();
    }

    #[test]
    fn post_roundtrip_over_the_wire() {
        let server = running_server();
        let (status, body) =
            client::post_json(server.addr(), "/score", r#"{"model":"m","triples":[[0,1,2]]}"#)
                .unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"scores\""));
        server.shutdown();
    }

    #[test]
    fn keep_alive_connection_serves_sequential_requests() {
        let (server, metrics) =
            running_server_with(&ServerConfig { workers: 2, ..Default::default() });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        for i in 0..5 {
            let (status, body) = conn.get("/healthz").unwrap();
            assert_eq!(status, 200, "request {i}: {body}");
        }
        assert!(!conn.server_closed(), "server must keep the connection open");
        assert_eq!(metrics.keepalive_reuses(), 4, "requests 2..=5 are reuses");
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keep_alive() {
        let server = running_server();
        // HTTP/1.0 without Connection: keep-alive → server closes (the
        // read_to_string below returning proves the close happened).
        let out = raw_roundtrip(server.addr(), b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("Connection: close"), "1.0 defaults to close: {out}");
        // HTTP/1.1 → keep-alive advertised; close our end to finish.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 4096];
        let n = s.read(&mut buf).unwrap();
        let out = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(out.contains("Connection: keep-alive"), "1.1 defaults to keep-alive: {out}");
        assert!(out.contains("Keep-Alive: timeout="), "advertises the idle timeout: {out}");
        drop(s);
        server.shutdown();
    }

    #[test]
    fn drip_fed_requests_hit_the_in_request_deadline() {
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..Default::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // A byte every 25 ms resets any per-read socket timeout forever;
        // only the whole-request deadline can end this.
        let started = Instant::now();
        for &b in b"GET /healthz HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaa" {
            if s.write_all(&[b]).is_err() {
                break; // server already hung up on us — that's the point
            }
            std::thread::sleep(Duration::from_millis(25));
            if started.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408"), "got: {out}");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "the deadline, not the drip length, must bound the connection"
        );
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 1);
        server.shutdown();
    }

    #[test]
    fn pipeline_returns_partial_results_when_the_cap_closes_the_connection() {
        let (server, _) = running_server_with(&ServerConfig {
            workers: 1,
            max_requests_per_connection: 2,
            ..Default::default()
        });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let requests: Vec<(&str, &str, Option<&str>)> =
            (0..4).map(|_| ("GET", "/healthz", None)).collect();
        let responses = conn.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), 2, "the cap allows exactly two answered requests");
        assert!(responses.iter().all(|(status, _)| *status == 200));
        assert!(conn.server_closed(), "the second response carried Connection: close");
        server.shutdown();
    }

    #[test]
    fn idle_connections_do_not_pin_workers() {
        // One worker, several idle keep-alive connections: under the old
        // thread-per-connection model the first idler would own the worker
        // for its whole life and everyone else would starve. The reactor
        // keeps idle connections as slab state, so a single worker serves
        // any of them — and fresh connections — the moment a request
        // actually arrives.
        let (server, _) = running_server_with(&ServerConfig { workers: 1, ..Default::default() });
        let mut idlers: Vec<client::Connection> =
            (0..3).map(|_| client::Connection::open(server.addr()).unwrap()).collect();
        for (i, conn) in idlers.iter_mut().enumerate() {
            let (status, body) = conn.get("/healthz").unwrap();
            assert_eq!(status, 200, "idler {i}: {body}");
        }
        // A brand-new connection is served while the three idlers stay
        // open and parked.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200, "a new client must not starve behind idle keep-alives");
        // The idlers are still usable afterwards.
        for (i, conn) in idlers.iter_mut().enumerate() {
            let (status, _) = conn.get("/healthz").unwrap();
            assert_eq!(status, 200, "idler {i} after interleaved traffic");
            assert!(!conn.server_closed(), "idler {i} must stay open");
        }
        server.shutdown();
    }

    #[test]
    fn requests_under_load_are_served_without_spurious_408s() {
        // A second connection's request lands while another connection is
        // active on the only worker; the dispatch-queue staleness check
        // must not misfire on this ordinary briefly-queued request. (The
        // stale-dispatch 408 itself is unit-tested in `reactor::tests`,
        // where the queue wait can be fabricated.)
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_secs(5),
            ..Default::default()
        });
        let mut held = client::Connection::open(server.addr()).unwrap();
        held.get("/healthz").unwrap();
        let mut queued = TcpStream::connect(server.addr()).unwrap();
        queued.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(held);
        let mut out = String::new();
        queued.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = queued.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200"), "brief queueing must not 408: {out}");
        assert_eq!(metrics.requests_for(HTTP_PARSE_ENDPOINT), 0);
        server.shutdown();
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response_before_the_body() {
        let server = running_server();
        let body = r#"{"model":"m","triples":[[0,1,2]]}"#;
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let head = format!(
            "POST /score HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nExpect: 100-continue\r\nConnection: close\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        // The interim response must arrive although no body byte was sent
        // (pre-fix the server sat waiting for the body instead).
        let mut interim = Vec::new();
        let mut byte = [0u8; 1];
        while !interim.ends_with(b"\r\n\r\n") {
            s.read_exact(&mut byte).expect("100 Continue must arrive before the body is sent");
            interim.extend_from_slice(&byte);
            assert!(interim.len() < 256, "interim response unreasonably large");
        }
        let interim = String::from_utf8(interim).unwrap();
        assert!(interim.starts_with("HTTP/1.1 100 Continue\r\n"), "got: {interim}");
        // Now ship the body and read the final response.
        s.write_all(body.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out}");
        assert!(out.contains("\"scores\""), "got: {out}");
        server.shutdown();
    }

    #[test]
    fn expect_100_continue_is_rejected_early_with_the_final_status() {
        let server = running_server();
        // Oversize announcement: the server must answer 413 immediately,
        // never 100 — the client keeps its megabytes.
        let head = format!(
            "POST /score HTTP/1.1\r\nContent-Length: {}\r\nExpect: 100-continue\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let out = raw_roundtrip(server.addr(), head.as_bytes());
        assert!(out.starts_with("HTTP/1.1 413"), "got: {out}");
        assert!(!out.contains("100 Continue"), "no interim response on rejection: {out}");
        // Unknown expectations are answered 417.
        let out = raw_roundtrip(
            server.addr(),
            b"POST /score HTTP/1.1\r\nExpect: x-make-it-fast\r\nContent-Length: 2\r\n\r\n{}",
        );
        assert!(out.starts_with("HTTP/1.1 417"), "got: {out}");
        assert!(out.contains("Expectation Failed"), "reason phrase: {out}");
        server.shutdown();
    }

    #[test]
    fn client_expect_continue_handshake_matches_plain_post() {
        let server = running_server();
        let body = r#"{"model":"m","triples":[[0,1,2],[3,0,4]]}"#;
        let (plain_status, plain_body) = client::post_json(server.addr(), "/score", body).unwrap();
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let (status, got) = conn.post_json_expect_continue("/score", body).unwrap();
        assert_eq!((status, &got), (plain_status, &plain_body), "handshake changed the response");
        // The connection stays usable for further requests afterwards.
        let (status, _) = conn.get("/healthz").unwrap();
        assert_eq!(status, 200);
        // An empty body (no 100 will come) degrades to a plain request
        // without spending the connection.
        let (status, _) = conn.post_json_expect_continue("/score", "").unwrap();
        assert_eq!(status, 400, "empty body is a routing 400, not a handshake failure");
        assert!(!conn.server_closed(), "an empty-body handshake must not spend the socket");
        // A post-100 routing failure still round-trips normally.
        let (status, rejected) =
            conn.post_json_expect_continue("/score", "not json at all").unwrap();
        assert_eq!(status, 400, "{rejected}");
        drop(conn);
        // Early rejection path: the headers alone draw the final status,
        // the interim 100 never comes, and the huge body is never sent.
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let huge = "x".repeat(MAX_BODY_BYTES + 1);
        let (status, rejected) = conn.post_json_expect_continue("/score", &huge).unwrap();
        assert_eq!(status, 413, "{rejected}");
        assert!(conn.server_closed(), "an announced-but-unsent body spends the connection");
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn chatty_clients_are_throttled_with_429_and_recover_on_refill() {
        let (server, metrics) = running_server_with(&ServerConfig {
            workers: 2,
            client_bucket_size: 3,
            client_bucket_refill_per_sec: 2.0,
            ..Default::default()
        });
        // The burst allowance admits the first three connections …
        for i in 0..3 {
            let (status, _) = client::get(server.addr(), "/healthz").unwrap();
            assert_eq!(status, 200, "burst connection {i}");
        }
        // … the fourth (opened immediately) is throttled at the door.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests"), "got: {out}");
        assert!(out.contains("Retry-After:"), "advertises a wait: {out}");
        assert!(out.contains("client connection budget"), "names the bucket: {out}");
        assert_eq!(metrics.throttled_connections(), 1);
        assert_eq!(
            metrics.rejected_connections(),
            0,
            "throttling is per-client fairness, not the global 503 budget"
        );
        // Refill restores service for the same client.
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(50));
            if let Ok((200, _)) = client::get(server.addr(), "/healthz") {
                ok = true;
                break;
            }
        }
        assert!(ok, "the bucket must refill at the configured rate");
        server.shutdown();
    }

    #[test]
    fn token_bucket_math_admits_bursts_and_meters_sustained_rates() {
        let ip: std::net::IpAddr = "10.0.0.1".parse().unwrap();
        let other: std::net::IpAddr = "10.0.0.2".parse().unwrap();
        let t0 = Instant::now();
        let mut buckets = ClientBuckets::new(2, 1.0).unwrap();
        assert!(buckets.admit(ip, t0).is_ok());
        assert!(buckets.admit(ip, t0).is_ok(), "burst of bucket-size admits");
        let wait = buckets.admit(ip, t0).unwrap_err();
        assert!(wait >= 1, "empty bucket advertises a wait");
        // A different client is unaffected — that is the fairness point.
        assert!(buckets.admit(other, t0).is_ok());
        // One second later one token has returned — for one connection.
        let t1 = t0 + Duration::from_secs(1);
        assert!(buckets.admit(ip, t1).is_ok());
        assert!(buckets.admit(ip, t1).is_err(), "refill is metered, not a reset");
        // The bucket never overfills past its size.
        let t9 = t0 + Duration::from_secs(60);
        assert!(buckets.admit(ip, t9).is_ok());
        assert!(buckets.admit(ip, t9).is_ok());
        assert!(buckets.admit(ip, t9).is_err(), "long idling caps at the burst size");
        // Size 0 disables the gate entirely.
        assert!(ClientBuckets::new(0, 1.0).is_none());
    }

    #[test]
    fn max_requests_per_connection_is_enforced() {
        let (server, _) = running_server_with(&ServerConfig {
            workers: 1,
            max_requests_per_connection: 2,
            ..Default::default()
        });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let (s1, _) = conn.get("/healthz").unwrap();
        let (s2, _) = conn.get("/healthz").unwrap();
        assert_eq!((s1, s2), (200, 200));
        assert!(conn.server_closed(), "second response must carry Connection: close");
        assert!(conn.get("/healthz").is_err(), "third request has no connection to use");
        server.shutdown();
    }
}
