//! Continuous evaluation: a per-model background thread that re-runs the
//! sampled filtered-ranking evaluation over a sliding window of held-out
//! triples whenever the live graph changes (and, optionally, on a timer),
//! publishing the results as Prometheus gauges and raising a drift alarm
//! when MRR falls more than a configured threshold below the first
//! (baseline) round.
//!
//! The monitor reuses the exact serving-path machinery — the entry's
//! seeded sample cache and [`kg_eval::evaluate_sampled`] over a
//! [`kg_core::LiveFilterIndex`] snapshot — so the numbers it publishes are
//! the numbers `/eval` would return for the same window and knobs: no
//! parallel "monitoring estimator" that can quietly diverge from the
//! serving estimator.
//!
//! Lifecycle: [`crate::ModelRegistry::start_monitor`] spawns the thread and
//! keeps the [`Monitor`] in a registry-side map; the thread holds only a
//! `Weak` back-reference, so dropping the registry (or
//! [`crate::ModelRegistry::stop_monitor`]) terminates it. Deltas applied
//! through `POST /triples` reach the monitor via
//! `ModelRegistry::notify_delta`, which slides the held-out window
//! (inserted triples join it, deleted triples leave it) and wakes the
//! thread.

use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::Duration;

use kg_core::{GraphDelta, Triple};
use kg_eval::{evaluate_sampled, RankingMetrics, TieBreak};
use kg_recommend::SamplingStrategy;

use crate::registry::{ModelRegistry, SampleKey};

/// Tuning for one model's continuous-evaluation loop.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Initial held-out window (typically the validation split). Inserted
    /// triples are appended, deleted triples removed, and the window is
    /// truncated from the *front* (oldest first) at `capacity`.
    pub window: Vec<Triple>,
    /// Maximum held-out triples kept (minimum 1).
    pub capacity: usize,
    /// Re-evaluate at least this often even without graph changes; `None`
    /// evaluates only on version change (plus the startup baseline round).
    pub interval: Option<Duration>,
    /// Candidate sampling strategy for the sampled evaluation.
    pub strategy: SamplingStrategy,
    /// Per-column sample size.
    pub n_s: usize,
    /// RNG seed for the candidate draw (fixed seed → run-to-run
    /// comparable numbers; the entry's sample cache makes repeats free).
    pub seed: u64,
    /// Tie-breaking rule.
    pub tie: TieBreak,
    /// Raise the drift alarm when `baseline_mrr - mrr` exceeds this.
    pub drift_threshold: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: Vec::new(),
            capacity: 1024,
            interval: None,
            strategy: SamplingStrategy::Random,
            n_s: 100,
            seed: 0,
            tie: TieBreak::Mean,
            drift_threshold: 0.05,
        }
    }
}

/// A point-in-time snapshot of one monitor, as served by `GET /monitor`.
#[derive(Clone, Debug)]
pub struct MonitorStatus {
    /// Registry name of the monitored model.
    pub model: String,
    /// Held-out triples currently in the sliding window.
    pub window_len: usize,
    /// Evaluation rounds completed since the monitor started.
    pub evals_run: u64,
    /// Graph version the latest round was computed against.
    pub graph_version: u64,
    /// Latest round's ranking metrics (zeros until the first round).
    pub metrics: RankingMetrics,
    /// MRR of the first (baseline) round.
    pub baseline_mrr: f64,
    /// Whether `baseline_mrr - mrr > drift_threshold` at the latest round.
    pub drift_alarm: bool,
    /// Server uptime (seconds) when the latest round finished; the
    /// `eval_age_seconds` gauge is current uptime minus this.
    pub last_eval_uptime: f64,
}

struct MonitorState {
    window: Vec<Triple>,
    pending: bool,
    stop: bool,
    evals_run: u64,
    graph_version: u64,
    metrics: RankingMetrics,
    baseline_mrr: Option<f64>,
    drift_alarm: bool,
    last_eval_uptime: f64,
}

struct MonitorShared {
    registry: Weak<ModelRegistry>,
    model: String,
    config: MonitorConfig,
    state: Mutex<MonitorState>,
    cond: Condvar,
}

/// Handle to one model's continuous-evaluation thread.
pub struct Monitor {
    shared: Arc<MonitorShared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Monitor {
    /// Spawn the evaluation thread. The first round runs immediately and
    /// establishes the drift baseline.
    pub(crate) fn spawn(
        registry: Weak<ModelRegistry>,
        model: String,
        config: MonitorConfig,
    ) -> Self {
        let window = config.window.clone();
        let shared = Arc::new(MonitorShared {
            registry,
            model,
            config,
            state: Mutex::new(MonitorState {
                window,
                pending: true, // baseline round
                stop: false,
                evals_run: 0,
                graph_version: 0,
                metrics: RankingMetrics::default(),
                baseline_mrr: None,
                drift_alarm: false,
                last_eval_uptime: 0.0,
            }),
            cond: Condvar::new(),
        });
        let worker = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name(format!("kg-monitor-{}", shared.model))
            .spawn(move || Monitor::run(&worker))
            // PANIC-OK: spawn fails only when the OS is out of threads at
            // model-registration time — startup configuration, not a
            // request path.
            .expect("spawn monitor thread");
        Monitor { shared, thread: Some(thread) }
    }

    fn run(shared: &Arc<MonitorShared>) {
        loop {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.stop {
                    return;
                }
                if state.pending {
                    state.pending = false;
                    break;
                }
                state = match shared.config.interval {
                    Some(interval) => {
                        // PANIC-OK: condvar wait errs only on mutex
                        // poisoning — a panic already in flight elsewhere.
                        let (guard, timeout) = shared.cond.wait_timeout(state, interval).unwrap();
                        if timeout.timed_out() {
                            let mut guard = guard;
                            if guard.stop {
                                return;
                            }
                            guard.pending = false;
                            drop(guard);
                            // Timer tick: evaluate even without a delta.
                            Monitor::evaluate(shared);
                            shared.state.lock().unwrap()
                        } else {
                            guard
                        }
                    }
                    // PANIC-OK: condvar wait errs only on mutex poisoning.
                    None => shared.cond.wait(state).unwrap(),
                };
            }
            drop(state);
            Monitor::evaluate(shared);
        }
    }

    /// One evaluation round: snapshot the live graph, rank the window with
    /// the serving-path estimator, update state, and publish gauges.
    fn evaluate(shared: &Arc<MonitorShared>) {
        let Some(registry) = shared.registry.upgrade() else { return };
        let Some(entry) = registry.get(&shared.model) else { return };
        let window: Vec<Triple> = shared.state.lock().unwrap().window.clone();
        let snapshot = entry.live().snapshot();
        let version = snapshot.version();
        let key = SampleKey {
            strategy: shared.config.strategy,
            n_s: shared.config.n_s,
            seed: shared.config.seed,
        };
        let Ok((samples, _)) = entry.samples_for(&key) else { return };
        let result = evaluate_sampled(
            entry.model().as_ref(),
            &window,
            snapshot.as_ref(),
            &samples,
            shared.config.tie,
            entry.threads(),
        );
        let uptime = registry.metrics().uptime_seconds();

        // State update and gauge publication are deliberately unnested:
        // set_monitor_stats takes the metrics-registry lock, and holding
        // monitor.state across it would create an undeclared lock-order
        // edge (KL009) against on_delta's state-only path.
        let (baseline, drift_alarm, evals_run) = {
            let mut state = shared.state.lock().unwrap();
            state.evals_run += 1;
            state.graph_version = version;
            state.metrics = result.metrics;
            let baseline = *state.baseline_mrr.get_or_insert(result.metrics.mrr);
            state.drift_alarm = baseline - result.metrics.mrr > shared.config.drift_threshold;
            state.last_eval_uptime = uptime;
            (baseline, state.drift_alarm, state.evals_run)
        };
        registry.metrics().set_monitor_stats(
            &shared.model,
            &result.metrics,
            baseline,
            drift_alarm,
            evals_run,
            uptime,
        );
    }

    /// Slide the held-out window past a just-applied delta and schedule an
    /// evaluation round: inserted triples become held-out queries, deleted
    /// triples stop being evaluated, and the window drops its oldest
    /// entries beyond capacity.
    pub fn on_delta(&self, delta: &GraphDelta) {
        let mut state = self.shared.state.lock().unwrap();
        if !delta.delete.is_empty() {
            state.window.retain(|t| !delta.delete.contains(t));
        }
        state.window.extend(delta.insert.iter().copied());
        let capacity = self.shared.config.capacity.max(1);
        if state.window.len() > capacity {
            let overflow = state.window.len() - capacity;
            state.window.drain(..overflow);
        }
        state.pending = true;
        drop(state);
        self.shared.cond.notify_all();
    }

    /// Schedule an evaluation round without a graph change (tests, admin).
    pub fn poke(&self) {
        self.shared.state.lock().unwrap().pending = true;
        self.shared.cond.notify_all();
    }

    /// Evaluation rounds completed so far.
    pub fn evals_run(&self) -> u64 {
        self.shared.state.lock().unwrap().evals_run
    }

    /// Current status snapshot.
    pub fn status(&self) -> MonitorStatus {
        let state = self.shared.state.lock().unwrap();
        MonitorStatus {
            model: self.shared.model.clone(),
            window_len: state.window.len(),
            evals_run: state.evals_run,
            graph_version: state.graph_version,
            metrics: state.metrics,
            baseline_mrr: state.baseline_mrr.unwrap_or(0.0),
            drift_alarm: state.drift_alarm,
            last_eval_uptime: state.last_eval_uptime,
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().stop = true;
        self.shared.cond.notify_all();
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}
