//! Service observability: per-endpoint request counters, latency quantiles,
//! and batch-size distributions, rendered in Prometheus text format.
//!
//! Latencies are kept as a bounded reservoir of recent microsecond samples
//! per endpoint (a ring of the last [`LATENCY_WINDOW`] observations) —
//! p50/p99 over a sliding window is what a dashboard wants, and the memory
//! bound holds under unbounded traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Samples retained per endpoint for quantile estimation.
pub const LATENCY_WINDOW: usize = 4096;

/// Bounded ring of the last [`LATENCY_WINDOW`] samples — the one
/// windowing implementation behind request latencies, batch sizes, and
/// the gateway's scatter/merge phase quantiles.
#[derive(Default)]
struct Reservoir {
    samples: Vec<u64>,
    next_slot: usize,
}

impl Reservoir {
    fn observe(&mut self, value: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(value);
        } else {
            // PANIC-OK: `next_slot` wraps modulo LATENCY_WINDOW and the
            // else-branch means `samples.len() == LATENCY_WINDOW`.
            self.samples[self.next_slot] = value;
            self.next_slot = (self.next_slot + 1) % LATENCY_WINDOW;
        }
    }

    /// A sorted copy of the held samples (for percentile extraction), or
    /// `None` when empty.
    fn sorted(&self) -> Option<Vec<u64>> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted)
    }
}

#[derive(Default)]
struct EndpointStats {
    requests: u64,
    errors: u64,
    latencies_us: Reservoir,
}

impl EndpointStats {
    fn observe(&mut self, latency_us: u64, is_error: bool) {
        self.requests += 1;
        if is_error {
            self.errors += 1;
        }
        self.latencies_us.observe(latency_us);
    }
}

#[derive(Default)]
struct BatchStats {
    batches: u64,
    jobs: u64,
    triples: u64,
    sizes: Reservoir,
}

/// Latest continuous-evaluation round for one monitored model (see
/// [`crate::monitor::Monitor`]); rendered as the `kg_serve_monitor_*`
/// series.
#[derive(Clone, Copy, Default)]
struct MonitorGauges {
    mrr: f64,
    hits1: f64,
    hits3: f64,
    hits10: f64,
    baseline_mrr: f64,
    drift_alarm: bool,
    evals: u64,
    last_eval_uptime: f64,
}

/// Thread-safe metrics registry shared by the router, the batcher, and the
/// server's connection lifecycle.
pub struct HttpMetrics {
    endpoints: Mutex<HashMap<String, EndpointStats>>,
    batches: Mutex<BatchStats>,
    /// Current adaptive `/score` batching window per model, microseconds.
    windows: Mutex<HashMap<String, u64>>,
    /// Current adaptive `/topk` batching window per model, microseconds.
    topk_windows: Mutex<HashMap<String, u64>>,
    /// Coalesced `/topk` batches executed.
    topk_batches: AtomicU64,
    /// Requests absorbed into `/topk` batches.
    topk_jobs: AtomicU64,
    /// Top-k queries executed through `/topk` batches.
    topk_queries: AtomicU64,
    /// Connections currently open (accepted by a worker, not yet closed).
    connections_active: AtomicU64,
    /// Connections ever handed to a worker.
    connections_total: AtomicU64,
    /// Requests served on an already-used (kept-alive) connection.
    keepalive_reuses: AtomicU64,
    /// Connections refused with 503 at the admission gate.
    connections_rejected: AtomicU64,
    /// Connections refused with 429 by a per-client token bucket.
    connections_throttled: AtomicU64,
    /// File descriptors registered with the reactor's poller (listener +
    /// waker + open connections).
    reactor_fds: AtomicU64,
    /// Times the reactor's poll wait returned (readiness or waker byte).
    reactor_wakeups: AtomicU64,
    /// Ready events delivered per reactor tick (sliding window).
    reactor_ready: Mutex<Reservoir>,
    /// Current live-graph version per model.
    graph_versions: Mutex<HashMap<String, u64>>,
    /// Entity-table storage precision per model ("f32"/"f16"/"int8").
    model_precisions: Mutex<HashMap<String, &'static str>>,
    /// Triples inserted into live graphs (effective writes only).
    triples_inserted: AtomicU64,
    /// Triples deleted from live graphs (effective writes only).
    triples_deleted: AtomicU64,
    /// `/topk` queries answered from the version-stamped result cache.
    topk_cache_hits: AtomicU64,
    /// `/topk` queries that missed the result cache and ran a ranking pass.
    topk_cache_misses: AtomicU64,
    /// `/eval` requests answered from the version-stamped result cache.
    eval_cache_hits: AtomicU64,
    /// `/eval` requests that missed the result cache.
    eval_cache_misses: AtomicU64,
    /// Continuous-evaluation stats per monitored model.
    monitors: Mutex<HashMap<String, MonitorGauges>>,
    /// Backend failures observed by the gateway, by backend address.
    gateway_backend_errors: Mutex<HashMap<String, u64>>,
    /// Gateway scatter-phase latency (request fan-out until the last
    /// backend answered), by endpoint.
    gateway_scatter: Mutex<HashMap<String, Reservoir>>,
    /// Gateway merge-phase latency (partial recombination + response
    /// building), by endpoint.
    gateway_merge: Mutex<HashMap<String, Reservoir>>,
    started: Instant,
}

impl Default for HttpMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpMetrics {
    /// Fresh registry; `uptime` counts from here.
    pub fn new() -> Self {
        HttpMetrics {
            endpoints: Mutex::new(HashMap::new()),
            batches: Mutex::new(BatchStats::default()),
            windows: Mutex::new(HashMap::new()),
            topk_windows: Mutex::new(HashMap::new()),
            topk_batches: AtomicU64::new(0),
            topk_jobs: AtomicU64::new(0),
            topk_queries: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            connections_throttled: AtomicU64::new(0),
            reactor_fds: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            reactor_ready: Mutex::new(Reservoir::default()),
            graph_versions: Mutex::new(HashMap::new()),
            model_precisions: Mutex::new(HashMap::new()),
            triples_inserted: AtomicU64::new(0),
            triples_deleted: AtomicU64::new(0),
            topk_cache_hits: AtomicU64::new(0),
            topk_cache_misses: AtomicU64::new(0),
            eval_cache_hits: AtomicU64::new(0),
            eval_cache_misses: AtomicU64::new(0),
            monitors: Mutex::new(HashMap::new()),
            gateway_backend_errors: Mutex::new(HashMap::new()),
            gateway_scatter: Mutex::new(HashMap::new()),
            gateway_merge: Mutex::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    /// A worker took ownership of a fresh connection.
    pub fn connection_opened(&self) {
        self.connections_active.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection ended (cleanly or not); pairs with
    /// [`HttpMetrics::connection_opened`].
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A kept-alive connection served another request (the 2nd, 3rd, …
    /// request on one socket each count once).
    pub fn connection_reused(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was refused with 503 because the budget was exhausted.
    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Connections ever handed to a worker.
    pub fn total_connections(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Requests served on reused (kept-alive) connections.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Connections refused with 503 at the admission gate.
    pub fn rejected_connections(&self) -> u64 {
        self.connections_rejected.load(Ordering::Relaxed)
    }

    /// A connection was refused with 429 because its client's token
    /// bucket was empty (per-client fairness).
    pub fn connection_throttled(&self) {
        self.connections_throttled.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections refused with 429 by the per-client token bucket.
    pub fn throttled_connections(&self) -> u64 {
        self.connections_throttled.load(Ordering::Relaxed)
    }

    /// The reactor recounted the file descriptors registered with its
    /// poller (listener + waker + open connections).
    pub fn set_reactor_fds(&self, fds: u64) {
        self.reactor_fds.store(fds, Ordering::Relaxed);
    }

    /// File descriptors currently registered with the reactor's poller.
    pub fn reactor_fds(&self) -> u64 {
        self.reactor_fds.load(Ordering::Relaxed)
    }

    /// One reactor tick: the poll wait returned with `ready` events.
    pub fn observe_reactor_tick(&self, ready: usize) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        self.reactor_ready.lock().unwrap().observe(ready as u64);
    }

    /// Times the reactor's poll wait has returned.
    pub fn reactor_wakeups(&self) -> u64 {
        self.reactor_wakeups.load(Ordering::Relaxed)
    }

    /// The gateway observed a backend failure (connect/transport error or
    /// a failed health probe).
    pub fn gateway_backend_error(&self, backend: &str) {
        *self.gateway_backend_errors.lock().unwrap().entry(backend.to_string()).or_insert(0) += 1;
    }

    /// Total backend failures the gateway observed (all backends).
    pub fn gateway_backend_errors(&self) -> u64 {
        self.gateway_backend_errors.lock().unwrap().values().sum()
    }

    /// Record one gateway request's scatter and merge phase durations.
    pub fn observe_gateway_phases(&self, endpoint: &str, scatter_us: u64, merge_us: u64) {
        self.gateway_scatter
            .lock()
            .unwrap()
            .entry(endpoint.to_string())
            .or_default()
            .observe(scatter_us);
        self.gateway_merge
            .lock()
            .unwrap()
            .entry(endpoint.to_string())
            .or_default()
            .observe(merge_us);
    }

    /// Record `model`'s current adaptive batching window (microseconds).
    pub fn set_score_window(&self, model: &str, window_us: u64) {
        self.windows.lock().unwrap().insert(model.to_string(), window_us);
    }

    /// The last recorded batching window for `model`, if any.
    pub fn score_window(&self, model: &str) -> Option<u64> {
        self.windows.lock().unwrap().get(model).copied()
    }

    /// Record `model`'s current adaptive `/topk` batching window
    /// (microseconds).
    pub fn set_topk_window(&self, model: &str, window_us: u64) {
        self.topk_windows.lock().unwrap().insert(model.to_string(), window_us);
    }

    /// The last recorded `/topk` batching window for `model`, if any.
    pub fn topk_window(&self, model: &str) -> Option<u64> {
        self.topk_windows.lock().unwrap().get(model).copied()
    }

    /// Record one coalesced top-k batch (`jobs` requests, `queries` total).
    pub fn observe_topk_batch(&self, jobs: usize, queries: usize) {
        self.topk_batches.fetch_add(1, Ordering::Relaxed);
        self.topk_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
        self.topk_queries.fetch_add(queries as u64, Ordering::Relaxed);
    }

    /// Coalesced `/topk` batches executed.
    pub fn topk_batches(&self) -> u64 {
        self.topk_batches.load(Ordering::Relaxed)
    }

    /// Requests absorbed into `/topk` batches.
    pub fn topk_jobs(&self) -> u64 {
        self.topk_jobs.load(Ordering::Relaxed)
    }

    /// Record `model`'s current live-graph version.
    pub fn set_graph_version(&self, model: &str, version: u64) {
        self.graph_versions.lock().unwrap().insert(model.to_string(), version);
    }

    /// The last recorded live-graph version for `model`, if any.
    pub fn graph_version(&self, model: &str) -> Option<u64> {
        self.graph_versions.lock().unwrap().get(model).copied()
    }

    /// Record the entity-table precision a model is served at.
    pub fn set_model_precision(&self, model: &str, precision: &'static str) {
        self.model_precisions.lock().unwrap().insert(model.to_string(), precision);
    }

    /// The recorded serving precision for `model` (tests and `/healthz`).
    pub fn model_precision(&self, model: &str) -> Option<&'static str> {
        self.model_precisions.lock().unwrap().get(model).copied()
    }

    /// Record one applied graph delta's effective writes.
    pub fn observe_ingest(&self, inserted: usize, deleted: usize) {
        self.triples_inserted.fetch_add(inserted as u64, Ordering::Relaxed);
        self.triples_deleted.fetch_add(deleted as u64, Ordering::Relaxed);
    }

    /// Record one coalesced `/topk` pass's cache outcome (`hits` queries
    /// answered from cache, `misses` ranked fresh).
    pub fn observe_topk_cache(&self, hits: usize, misses: usize) {
        self.topk_cache_hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.topk_cache_misses.fetch_add(misses as u64, Ordering::Relaxed);
    }

    /// `/topk` queries answered from the result cache.
    pub fn topk_cache_hits(&self) -> u64 {
        self.topk_cache_hits.load(Ordering::Relaxed)
    }

    /// `/topk` queries that ran a fresh ranking pass.
    pub fn topk_cache_misses(&self) -> u64 {
        self.topk_cache_misses.load(Ordering::Relaxed)
    }

    /// Record one `/eval` request's result-cache outcome.
    pub fn observe_eval_cache(&self, hit: bool) {
        if hit {
            self.eval_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.eval_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `/eval` requests answered from the result cache.
    pub fn eval_cache_hits(&self) -> u64 {
        self.eval_cache_hits.load(Ordering::Relaxed)
    }

    /// Publish one continuous-evaluation round for `model`.
    #[allow(clippy::too_many_arguments)]
    pub fn set_monitor_stats(
        &self,
        model: &str,
        metrics: &kg_eval::RankingMetrics,
        baseline_mrr: f64,
        drift_alarm: bool,
        evals: u64,
        last_eval_uptime: f64,
    ) {
        self.monitors.lock().unwrap().insert(
            model.to_string(),
            MonitorGauges {
                mrr: metrics.mrr,
                hits1: metrics.hits1,
                hits3: metrics.hits3,
                hits10: metrics.hits10,
                baseline_mrr,
                drift_alarm,
                evals,
                last_eval_uptime,
            },
        );
    }

    /// Record one request against `endpoint`.
    pub fn observe_request(&self, endpoint: &str, latency_us: u64, status: u16) {
        let mut map = self.endpoints.lock().unwrap();
        map.entry(endpoint.to_string()).or_default().observe(latency_us, status >= 400);
    }

    /// Record one coalesced scoring batch (`jobs` requests, `triples` total).
    pub fn observe_batch(&self, jobs: usize, triples: usize) {
        let mut b = self.batches.lock().unwrap();
        b.batches += 1;
        b.jobs += jobs as u64;
        b.triples += triples as u64;
        b.sizes.observe(jobs as u64);
    }

    /// Seconds since construction.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints.lock().unwrap().values().map(|s| s.requests).sum()
    }

    /// Requests recorded against one endpoint.
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.endpoints.lock().unwrap().get(endpoint).map_or(0, |s| s.requests)
    }

    /// `(p50, p99)` latency in seconds for `endpoint`, if it has samples.
    pub fn latency_quantiles(&self, endpoint: &str) -> Option<(f64, f64)> {
        let map = self.endpoints.lock().unwrap();
        let sorted = map.get(endpoint)?.latencies_us.sorted()?;
        Some((percentile(&sorted, 0.50) / 1e6, percentile(&sorted, 0.99) / 1e6))
    }

    /// Render every series in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP kg_serve_uptime_seconds Seconds since server start.\n");
        out.push_str("# TYPE kg_serve_uptime_seconds gauge\n");
        out.push_str(&format!("kg_serve_uptime_seconds {}\n", self.uptime_seconds()));

        out.push_str("# HELP kg_serve_connections_active Connections currently open.\n");
        out.push_str("# TYPE kg_serve_connections_active gauge\n");
        out.push_str(&format!("kg_serve_connections_active {}\n", self.active_connections()));
        out.push_str("# HELP kg_serve_connections_total Connections handed to a worker.\n");
        out.push_str("# TYPE kg_serve_connections_total counter\n");
        out.push_str(&format!("kg_serve_connections_total {}\n", self.total_connections()));
        out.push_str(
            "# HELP kg_serve_keepalive_reuses_total Requests served on a reused connection.\n",
        );
        out.push_str("# TYPE kg_serve_keepalive_reuses_total counter\n");
        out.push_str(&format!("kg_serve_keepalive_reuses_total {}\n", self.keepalive_reuses()));
        out.push_str(
            "# HELP kg_serve_rejected_connections_total Connections refused with 503 at the admission gate.\n",
        );
        out.push_str("# TYPE kg_serve_rejected_connections_total counter\n");
        out.push_str(&format!(
            "kg_serve_rejected_connections_total {}\n",
            self.rejected_connections()
        ));
        out.push_str(
            "# HELP kg_serve_throttled_connections_total Connections refused with 429 by the per-client token bucket.\n",
        );
        out.push_str("# TYPE kg_serve_throttled_connections_total counter\n");
        out.push_str(&format!(
            "kg_serve_throttled_connections_total {}\n",
            self.throttled_connections()
        ));

        out.push_str(
            "# HELP kg_serve_reactor_registered_fds File descriptors registered with the reactor poller (listener + waker + connections).\n",
        );
        out.push_str("# TYPE kg_serve_reactor_registered_fds gauge\n");
        out.push_str(&format!("kg_serve_reactor_registered_fds {}\n", self.reactor_fds()));
        out.push_str(
            "# HELP kg_serve_reactor_wakeups_total Times the reactor's poll wait returned.\n",
        );
        out.push_str("# TYPE kg_serve_reactor_wakeups_total counter\n");
        out.push_str(&format!("kg_serve_reactor_wakeups_total {}\n", self.reactor_wakeups()));
        if let Some(sorted) = self.reactor_ready.lock().unwrap().sorted() {
            out.push_str(
                "# HELP kg_serve_reactor_ready_events Ready events per reactor tick, quantiles over a sliding window.\n",
            );
            out.push_str("# TYPE kg_serve_reactor_ready_events summary\n");
            for (label, q) in [("0.5", 0.50), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "kg_serve_reactor_ready_events{{quantile=\"{label}\"}} {}\n",
                    percentile(&sorted, q)
                ));
            }
        }

        let map = self.endpoints.lock().unwrap();
        let mut endpoints: Vec<&String> = map.keys().collect();
        endpoints.sort();

        out.push_str("# HELP kg_serve_requests_total Requests handled, by endpoint.\n");
        out.push_str("# TYPE kg_serve_requests_total counter\n");
        for ep in &endpoints {
            out.push_str(&format!(
                "kg_serve_requests_total{{endpoint=\"{ep}\"}} {}\n",
                map[*ep].requests // PANIC-OK: `ep` came from `map.keys()`.
            ));
        }
        out.push_str("# HELP kg_serve_request_errors_total Responses with status >= 400.\n");
        out.push_str("# TYPE kg_serve_request_errors_total counter\n");
        for ep in &endpoints {
            out.push_str(&format!(
                "kg_serve_request_errors_total{{endpoint=\"{ep}\"}} {}\n",
                map[*ep].errors // PANIC-OK: `ep` came from `map.keys()`.
            ));
        }
        out.push_str(
            "# HELP kg_serve_latency_seconds Request latency quantiles over a sliding window.\n",
        );
        out.push_str("# TYPE kg_serve_latency_seconds summary\n");
        for ep in &endpoints {
            // PANIC-OK: `ep` came from `map.keys()`.
            let Some(sorted) = map[*ep].latencies_us.sorted() else { continue };
            for (label, q) in [("0.5", 0.50), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "kg_serve_latency_seconds{{endpoint=\"{ep}\",quantile=\"{label}\"}} {}\n",
                    percentile(&sorted, q) / 1e6
                ));
            }
        }
        drop(map);

        let b = self.batches.lock().unwrap();
        out.push_str("# HELP kg_serve_score_batches_total Coalesced /score batches executed.\n");
        out.push_str("# TYPE kg_serve_score_batches_total counter\n");
        out.push_str(&format!("kg_serve_score_batches_total {}\n", b.batches));
        out.push_str("# HELP kg_serve_score_batch_jobs_total Requests absorbed into batches.\n");
        out.push_str("# TYPE kg_serve_score_batch_jobs_total counter\n");
        out.push_str(&format!("kg_serve_score_batch_jobs_total {}\n", b.jobs));
        out.push_str("# HELP kg_serve_score_batch_triples_total Triples scored through batches.\n");
        out.push_str("# TYPE kg_serve_score_batch_triples_total counter\n");
        out.push_str(&format!("kg_serve_score_batch_triples_total {}\n", b.triples));
        if let Some(sorted) = b.sizes.sorted() {
            out.push_str("# HELP kg_serve_score_batch_size Requests per batch, quantiles.\n");
            out.push_str("# TYPE kg_serve_score_batch_size summary\n");
            for (label, q) in [("0.5", 0.50), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "kg_serve_score_batch_size{{quantile=\"{label}\"}} {}\n",
                    percentile(&sorted, q)
                ));
            }
        }
        drop(b);

        let windows = self.windows.lock().unwrap();
        if !windows.is_empty() {
            let mut models: Vec<&String> = windows.keys().collect();
            models.sort();
            out.push_str(
                "# HELP kg_serve_score_batch_window_us Current adaptive /score batching window.\n",
            );
            out.push_str("# TYPE kg_serve_score_batch_window_us gauge\n");
            for m in models {
                out.push_str(&format!(
                    "kg_serve_score_batch_window_us{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    windows[m] // PANIC-OK: `m` came from `windows.keys()`.
                ));
            }
        }
        drop(windows);

        out.push_str("# HELP kg_serve_topk_batches_total Coalesced /topk batches executed.\n");
        out.push_str("# TYPE kg_serve_topk_batches_total counter\n");
        out.push_str(&format!("kg_serve_topk_batches_total {}\n", self.topk_batches()));
        out.push_str(
            "# HELP kg_serve_topk_batch_jobs_total Requests absorbed into /topk batches.\n",
        );
        out.push_str("# TYPE kg_serve_topk_batch_jobs_total counter\n");
        out.push_str(&format!("kg_serve_topk_batch_jobs_total {}\n", self.topk_jobs()));
        out.push_str(
            "# HELP kg_serve_topk_batch_queries_total Top-k queries executed through batches.\n",
        );
        out.push_str("# TYPE kg_serve_topk_batch_queries_total counter\n");
        out.push_str(&format!(
            "kg_serve_topk_batch_queries_total {}\n",
            self.topk_queries.load(Ordering::Relaxed)
        ));

        let topk_windows = self.topk_windows.lock().unwrap();
        if !topk_windows.is_empty() {
            let mut models: Vec<&String> = topk_windows.keys().collect();
            models.sort();
            out.push_str(
                "# HELP kg_serve_topk_batch_window_us Current adaptive /topk batching window.\n",
            );
            out.push_str("# TYPE kg_serve_topk_batch_window_us gauge\n");
            for m in models {
                out.push_str(&format!(
                    "kg_serve_topk_batch_window_us{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    // PANIC-OK: `m` came from `topk_windows.keys()`.
                    topk_windows[m]
                ));
            }
        }
        drop(topk_windows);

        let graph_versions = self.graph_versions.lock().unwrap();
        if !graph_versions.is_empty() {
            let mut models: Vec<&String> = graph_versions.keys().collect();
            models.sort();
            out.push_str("# HELP kg_serve_graph_version Current live-graph version.\n");
            out.push_str("# TYPE kg_serve_graph_version gauge\n");
            for m in models {
                out.push_str(&format!(
                    "kg_serve_graph_version{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    // PANIC-OK: `m` came from `graph_versions.keys()`.
                    graph_versions[m]
                ));
            }
        }
        drop(graph_versions);

        out.push_str(
            "# HELP kg_serve_kernel_info Active scoring-kernel ISA (value is always 1).\n",
        );
        out.push_str("# TYPE kg_serve_kernel_info gauge\n");
        out.push_str(&format!(
            "kg_serve_kernel_info{{isa=\"{}\"}} 1\n",
            kg_models::kernels::active().name()
        ));

        let precisions = self.model_precisions.lock().unwrap();
        if !precisions.is_empty() {
            let mut models: Vec<&String> = precisions.keys().collect();
            models.sort();
            out.push_str(
                "# HELP kg_serve_model_precision_info Entity-table storage precision per model (value is always 1).\n",
            );
            out.push_str("# TYPE kg_serve_model_precision_info gauge\n");
            for m in models {
                out.push_str(&format!(
                    "kg_serve_model_precision_info{{model=\"{}\",precision=\"{}\"}} 1\n",
                    escape_label(m),
                    // PANIC-OK: `m` came from `precisions.keys()`.
                    precisions[m]
                ));
            }
        }
        drop(precisions);

        out.push_str(
            "# HELP kg_serve_graph_triples_inserted_total Triples inserted into live graphs.\n",
        );
        out.push_str("# TYPE kg_serve_graph_triples_inserted_total counter\n");
        out.push_str(&format!(
            "kg_serve_graph_triples_inserted_total {}\n",
            self.triples_inserted.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP kg_serve_graph_triples_deleted_total Triples deleted from live graphs.\n",
        );
        out.push_str("# TYPE kg_serve_graph_triples_deleted_total counter\n");
        out.push_str(&format!(
            "kg_serve_graph_triples_deleted_total {}\n",
            self.triples_deleted.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP kg_serve_topk_cache_hits_total /topk queries answered from the version-stamped result cache.\n",
        );
        out.push_str("# TYPE kg_serve_topk_cache_hits_total counter\n");
        out.push_str(&format!("kg_serve_topk_cache_hits_total {}\n", self.topk_cache_hits()));
        out.push_str(
            "# HELP kg_serve_topk_cache_misses_total /topk queries that ran a fresh ranking pass.\n",
        );
        out.push_str("# TYPE kg_serve_topk_cache_misses_total counter\n");
        out.push_str(&format!("kg_serve_topk_cache_misses_total {}\n", self.topk_cache_misses()));
        out.push_str(
            "# HELP kg_serve_eval_cache_hits_total /eval requests answered from the result cache.\n",
        );
        out.push_str("# TYPE kg_serve_eval_cache_hits_total counter\n");
        out.push_str(&format!("kg_serve_eval_cache_hits_total {}\n", self.eval_cache_hits()));
        out.push_str("# HELP kg_serve_eval_cache_misses_total /eval requests that recomputed.\n");
        out.push_str("# TYPE kg_serve_eval_cache_misses_total counter\n");
        out.push_str(&format!(
            "kg_serve_eval_cache_misses_total {}\n",
            self.eval_cache_misses.load(Ordering::Relaxed)
        ));

        let monitors = self.monitors.lock().unwrap();
        if !monitors.is_empty() {
            let mut models: Vec<&String> = monitors.keys().collect();
            models.sort();
            let uptime = self.uptime_seconds();
            out.push_str("# HELP kg_serve_monitor_mrr Latest continuous-evaluation MRR.\n");
            out.push_str("# TYPE kg_serve_monitor_mrr gauge\n");
            for m in &models {
                out.push_str(&format!(
                    "kg_serve_monitor_mrr{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    monitors[*m].mrr // PANIC-OK: `m` came from `monitors.keys()`.
                ));
            }
            out.push_str(
                "# HELP kg_serve_monitor_hits_at_k Latest continuous-evaluation Hits@K.\n",
            );
            out.push_str("# TYPE kg_serve_monitor_hits_at_k gauge\n");
            for m in &models {
                // PANIC-OK: `m` came from `monitors.keys()`.
                let g = monitors[*m];
                for (k, v) in [("1", g.hits1), ("3", g.hits3), ("10", g.hits10)] {
                    out.push_str(&format!(
                        "kg_serve_monitor_hits_at_k{{model=\"{}\",k=\"{k}\"}} {v}\n",
                        escape_label(m)
                    ));
                }
            }
            out.push_str(
                "# HELP kg_serve_monitor_baseline_mrr MRR of the monitor's first (baseline) round.\n",
            );
            out.push_str("# TYPE kg_serve_monitor_baseline_mrr gauge\n");
            for m in &models {
                out.push_str(&format!(
                    "kg_serve_monitor_baseline_mrr{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    monitors[*m].baseline_mrr // PANIC-OK: `m` came from `monitors.keys()`.
                ));
            }
            out.push_str(
                "# HELP kg_serve_monitor_drift_alarm 1 when MRR fell more than the drift threshold below baseline.\n",
            );
            out.push_str("# TYPE kg_serve_monitor_drift_alarm gauge\n");
            for m in &models {
                out.push_str(&format!(
                    "kg_serve_monitor_drift_alarm{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    // PANIC-OK: `m` came from `monitors.keys()`.
                    u64::from(monitors[*m].drift_alarm)
                ));
            }
            out.push_str(
                "# HELP kg_serve_monitor_evals_total Continuous-evaluation rounds completed.\n",
            );
            out.push_str("# TYPE kg_serve_monitor_evals_total counter\n");
            for m in &models {
                out.push_str(&format!(
                    "kg_serve_monitor_evals_total{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    monitors[*m].evals // PANIC-OK: `m` is a `monitors` key.
                ));
            }
            out.push_str(
                "# HELP kg_serve_monitor_eval_age_seconds Seconds since the latest round finished.\n",
            );
            out.push_str("# TYPE kg_serve_monitor_eval_age_seconds gauge\n");
            for m in &models {
                out.push_str(&format!(
                    "kg_serve_monitor_eval_age_seconds{{model=\"{}\"}} {}\n",
                    escape_label(m),
                    // PANIC-OK: `m` came from `monitors.keys()`.
                    (uptime - monitors[*m].last_eval_uptime).max(0.0)
                ));
            }
        }
        drop(monitors);

        let backend_errors = self.gateway_backend_errors.lock().unwrap();
        if !backend_errors.is_empty() {
            let mut backends: Vec<&String> = backend_errors.keys().collect();
            backends.sort();
            out.push_str(
                "# HELP kg_serve_gateway_backend_errors_total Backend failures observed by the gateway.\n",
            );
            out.push_str("# TYPE kg_serve_gateway_backend_errors_total counter\n");
            for b in backends {
                out.push_str(&format!(
                    "kg_serve_gateway_backend_errors_total{{backend=\"{}\"}} {}\n",
                    escape_label(b),
                    // PANIC-OK: `b` came from `backend_errors.keys()`.
                    backend_errors[b]
                ));
            }
        }
        drop(backend_errors);

        for (name, help, map) in [
            (
                "kg_serve_gateway_scatter_seconds",
                "Gateway scatter-phase latency (fan-out until the last backend answered).",
                &self.gateway_scatter,
            ),
            (
                "kg_serve_gateway_merge_seconds",
                "Gateway merge-phase latency (partial recombination).",
                &self.gateway_merge,
            ),
        ] {
            let map = map.lock().unwrap();
            if map.is_empty() {
                continue;
            }
            let mut endpoints: Vec<&String> = map.keys().collect();
            endpoints.sort();
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
            for ep in endpoints {
                // PANIC-OK: `ep` came from `map.keys()`.
                let Some(sorted) = map[ep].sorted() else { continue };
                for (label, q) in [("0.5", 0.50), ("0.99", 0.99)] {
                    out.push_str(&format!(
                        "{name}{{endpoint=\"{}\",quantile=\"{label}\"}} {}\n",
                        escape_label(ep),
                        percentile(&sorted, q) / 1e6
                    ));
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`). Model names are caller-chosen (and reachable via the admin
/// endpoint), so they must not be able to corrupt the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    // PANIC-OK: `rank` is clamped to `1..=sorted.len()` one line up.
    sorted[rank - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_requests_and_errors() {
        let m = HttpMetrics::new();
        m.observe_request("/score", 100, 200);
        m.observe_request("/score", 200, 500);
        m.observe_request("/eval", 300, 200);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.requests_for("/score"), 2);
        let text = m.render();
        assert!(text.contains("kg_serve_requests_total{endpoint=\"/score\"} 2"));
        assert!(text.contains("kg_serve_request_errors_total{endpoint=\"/score\"} 1"));
        assert!(text.contains("kg_serve_request_errors_total{endpoint=\"/eval\"} 0"));
    }

    #[test]
    fn quantiles_are_ordered_and_windowed() {
        let m = HttpMetrics::new();
        for us in 1..=1000u64 {
            m.observe_request("/score", us, 200);
        }
        let (p50, p99) = m.latency_quantiles("/score").unwrap();
        assert!(p50 <= p99);
        assert!((p50 - 500e-6).abs() < 50e-6, "p50 {p50}");
        assert!((p99 - 990e-6).abs() < 50e-6, "p99 {p99}");
        // Overflow the window; the reservoir stays bounded.
        for us in 0..(2 * LATENCY_WINDOW as u64) {
            m.observe_request("/score", us, 200);
        }
        assert!(m.latency_quantiles("/score").is_some());
    }

    #[test]
    fn batch_series_render() {
        let m = HttpMetrics::new();
        m.observe_batch(3, 120);
        m.observe_batch(1, 10);
        let text = m.render();
        assert!(text.contains("kg_serve_score_batches_total 2"));
        assert!(text.contains("kg_serve_score_batch_jobs_total 4"));
        assert!(text.contains("kg_serve_score_batch_triples_total 130"));
        assert!(text.contains("kg_serve_score_batch_size{quantile=\"0.5\"}"));
    }

    #[test]
    fn topk_batch_series_render() {
        let m = HttpMetrics::new();
        m.observe_topk_batch(2, 9);
        m.observe_topk_batch(1, 1);
        m.set_topk_window("m", 400);
        assert_eq!(m.topk_batches(), 2);
        assert_eq!(m.topk_jobs(), 3);
        assert_eq!(m.topk_window("m"), Some(400));
        let text = m.render();
        assert!(text.contains("kg_serve_topk_batches_total 2"), "{text}");
        assert!(text.contains("kg_serve_topk_batch_jobs_total 3"), "{text}");
        assert!(text.contains("kg_serve_topk_batch_queries_total 10"), "{text}");
        assert!(text.contains("kg_serve_topk_batch_window_us{model=\"m\"} 400"), "{text}");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[10], 0.5), 10.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.5), 2.0);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.99), 4.0);
    }

    #[test]
    fn window_gauge_escapes_label_values() {
        let m = HttpMetrics::new();
        m.set_score_window("evil\"} 1\nfake_metric{x=\"", 7);
        let text = m.render();
        assert!(
            text.contains(
                "kg_serve_score_batch_window_us{model=\"evil\\\"} 1\\nfake_metric{x=\\\"\"} 7"
            ),
            "label must be escaped, got: {text}"
        );
        assert!(!text.contains("\nfake_metric{"), "no injected series: {text}");
    }

    #[test]
    fn connection_series_track_lifecycle() {
        let m = HttpMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_reused();
        m.connection_reused();
        m.connection_reused();
        m.connection_rejected();
        m.connection_closed();
        assert_eq!(m.active_connections(), 1);
        assert_eq!(m.total_connections(), 2);
        assert_eq!(m.keepalive_reuses(), 3);
        assert_eq!(m.rejected_connections(), 1);
        let text = m.render();
        assert!(text.contains("kg_serve_connections_active 1"), "{text}");
        assert!(text.contains("kg_serve_connections_total 2"), "{text}");
        assert!(text.contains("kg_serve_keepalive_reuses_total 3"), "{text}");
        assert!(text.contains("kg_serve_rejected_connections_total 1"), "{text}");
    }

    #[test]
    fn reactor_series_render_gauge_counter_and_summary() {
        let m = HttpMetrics::new();
        assert_eq!(m.reactor_fds(), 0);
        m.set_reactor_fds(12);
        m.observe_reactor_tick(0);
        m.observe_reactor_tick(4);
        assert_eq!(m.reactor_fds(), 12);
        assert_eq!(m.reactor_wakeups(), 2);
        let text = m.render();
        assert!(text.contains("kg_serve_reactor_registered_fds 12"), "{text}");
        assert!(text.contains("kg_serve_reactor_wakeups_total 2"), "{text}");
        assert!(text.contains("kg_serve_reactor_ready_events{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("kg_serve_reactor_ready_events{quantile=\"0.99\"}"), "{text}");
    }

    #[test]
    fn unknown_endpoint_has_no_quantiles() {
        let m = HttpMetrics::new();
        assert!(m.latency_quantiles("/nope").is_none());
        assert_eq!(m.requests_for("/nope"), 0);
    }
}
