//! The exact, filtered, full-ranking evaluation — the `O(|E|)`-per-query
//! protocol whose cost the paper's framework avoids, and the ground truth
//! every estimator is compared against.
//!
//! Since the sharded-engine refactor the ranking pass streams per-shard
//! score slices through [`kg_models::engine`] instead of materialising a
//! `num_entities()`-sized row per query: `higher`/`ties` counters
//! accumulate shard by shard, and the scratch buffer (one shard wide for
//! range-scoring models) is reused across a worker thread's whole chunk.

use kg_core::parallel::{parallel_map_indexed, two_level_split, BufferPool, ShardPlan};
use kg_core::timing::Stopwatch;
use kg_core::topk::cmp_score;
use kg_core::triple::QuerySide;
use kg_core::{KnownIndex, Triple};
use kg_models::{engine, KgcModel};

use crate::metrics::{RankingMetrics, TieBreak};

/// Result of an evaluation pass: metrics, per-query ranks and wall time.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Aggregated metrics.
    pub metrics: RankingMetrics,
    /// Per-query filtered ranks, in query order (tail query then head query
    /// per test triple).
    pub ranks: Vec<f64>,
    /// Wall-clock seconds of the scoring + ranking work.
    pub seconds: f64,
}

/// Expand triples into the standard query list: for each test triple, a
/// tail query and a head query.
pub fn queries_of(triples: &[Triple]) -> Vec<(Triple, QuerySide)> {
    let mut out = Vec::with_capacity(triples.len() * 2);
    for &t in triples {
        out.push((t, QuerySide::Tail));
        out.push((t, QuerySide::Head));
    }
    out
}

/// Compute the filtered rank of the true answer from a full score row (the
/// reference kernel the streamed sharded path is tested against).
///
/// `known` are the other true answers of this query (to be filtered out);
/// the answer itself must be contained in `scores`.
///
/// **NaN ordering** is explicit (shared with [`kg_core::topk::cmp_score`]):
/// a NaN score is worse than every real score. A NaN competitor never
/// counts as `higher` nor as a tie against a real answer, and a NaN answer
/// ranks behind every real competitor — previously IEEE all-false
/// comparisons silently ranked a NaN answer first.
pub fn filtered_rank_from_scores(
    scores: &[f32],
    answer: usize,
    known: &[kg_core::EntityId],
    tie: TieBreak,
) -> f64 {
    let s_true = scores[answer];
    let mut higher = 0usize;
    let mut ties = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        match cmp_score(s, s_true) {
            std::cmp::Ordering::Greater => higher += 1,
            std::cmp::Ordering::Equal => {
                if i != answer {
                    ties += 1;
                }
            }
            std::cmp::Ordering::Less => {}
        }
    }
    // Remove known-true competitors (the *filtered* protocol).
    for &k in known {
        let ki = k.index();
        if ki == answer {
            continue;
        }
        match cmp_score(scores[ki], s_true) {
            std::cmp::Ordering::Greater => higher -= 1,
            std::cmp::Ordering::Equal => ties -= 1,
            std::cmp::Ordering::Less => {}
        }
    }
    tie.rank(higher, ties)
}

/// Evaluate `model` on `triples` with the full filtered protocol,
/// parallelised over queries, with the entity space sharded automatically
/// (see [`evaluate_full_sharded`]; results are identical for every shard
/// count).
pub fn evaluate_full<F: KnownIndex + ?Sized>(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &F,
    tie: TieBreak,
    threads: usize,
) -> EvalResult {
    evaluate_full_sharded(model, triples, filter, tie, threads, 0)
}

/// [`evaluate_full`] with an explicit entity shard count (`0` = automatic).
///
/// Ranks are computed by streaming per-shard score slices and accumulating
/// `higher`/`ties` counters ([`kg_models::engine::rank_counts_with`]), so
/// no `num_entities()`-sized row is materialised per query; scratch
/// buffers are pooled across the whole pass.
///
/// The thread budget follows the two-level work plan
/// ([`kg_core::parallel::two_level_split`]): with at least `threads`
/// queries every thread ranks its own query (the throughput regime); with
/// fewer queries the spare threads fan each query's shard passes out via
/// [`kg_models::engine::rank_counts_fanout`], so a single-query evaluation
/// uses the whole budget instead of one core. Per-row arithmetic, the
/// comparison order, and the counter sums are all partition- and
/// schedule-independent, so `EvalResult::ranks` is bit-for-bit identical
/// for every `shards` and `threads`.
pub fn evaluate_full_sharded<F: KnownIndex + ?Sized>(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &F,
    tie: TieBreak,
    threads: usize,
    shards: usize,
) -> EvalResult {
    let queries = queries_of(triples);
    let n_entities = model.num_entities();
    let plan =
        if shards == 0 { ShardPlan::auto(n_entities) } else { ShardPlan::new(n_entities, shards) };
    let split = two_level_split(queries.len(), threads);
    let pool = BufferPool::new(engine::scratch_len(model, &plan));
    let sw = Stopwatch::start();
    let ranks = parallel_map_indexed(queries.len(), split.outer, |qi| {
        let (triple, side) = queries[qi];
        let known = filter.known_answers(triple, side);
        let (higher, ties) =
            engine::rank_counts_fanout(model, &plan, &pool, triple, side, &known, split.inner);
        tie.rank(higher, ties)
    });
    let seconds = sw.seconds();
    EvalResult { metrics: RankingMetrics::from_ranks(&ranks), ranks, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, FilterIndex, RelationId};
    use kg_models::{build_model, ModelKind};

    /// A deterministic mock model: score(h,r,t) = f(t) only, so ranks are
    /// hand-computable.
    struct MockModel {
        n: usize,
        tail_scores: Vec<f32>,
    }

    impl KgcModel for MockModel {
        fn name(&self) -> &'static str {
            "Mock"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            1
        }
        fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
            self.tail_scores[t.index()]
        }
        fn score_tails(&self, _h: EntityId, _r: RelationId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_heads(&self, _r: RelationId, _t: EntityId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_tail_candidates(
            &self,
            _h: EntityId,
            _r: RelationId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &e) in out.iter_mut().zip(c) {
                *o = self.tail_scores[e.index()];
            }
        }
        fn score_head_candidates(
            &self,
            _r: RelationId,
            _t: EntityId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            self.score_tail_candidates(EntityId(0), RelationId(0), c, out);
        }
    }

    #[test]
    fn rank_is_position_by_score() {
        // Scores: entity 3 best, then 1, then 0, 2.
        let model = MockModel { n: 4, tail_scores: vec![0.5, 0.8, 0.1, 0.9] };
        let triples = vec![Triple::new(0, 0, 1)];
        let filter = FilterIndex::from_slices(&[&triples]);
        let r = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        // Tail query answer=1: entity 3 scores higher → rank 2.
        // Head query answer=0: entities 3 and 1 higher → rank 3.
        assert_eq!(r.ranks, vec![2.0, 3.0]);
        assert_eq!(r.metrics.count, 2);
        assert!((r.metrics.mrr - (0.5 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn filtering_removes_known_answers() {
        let model = MockModel { n: 4, tail_scores: vec![0.5, 0.8, 0.1, 0.9] };
        // Known: (0,0,3) also true → filtering it promotes (0,0,1)'s tail
        // rank from 2 to 1.
        let test = vec![Triple::new(0, 0, 1)];
        let train = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::from_slices(&[&train, &test]);
        let r = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        assert_eq!(r.ranks[0], 1.0, "filtered rank must skip known tail 3");
    }

    #[test]
    fn tie_handling() {
        let model = MockModel { n: 4, tail_scores: vec![0.8, 0.8, 0.8, 0.1] };
        let test = vec![Triple::new(3, 0, 0)];
        let filter = FilterIndex::from_slices(&[&test]);
        let mean = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        let opt = evaluate_full(&model, &test, &filter, TieBreak::Optimistic, 1);
        let pess = evaluate_full(&model, &test, &filter, TieBreak::Pessimistic, 1);
        // Tail query: answer 0 tied with 1, 2.
        assert_eq!(mean.ranks[0], 2.0);
        assert_eq!(opt.ranks[0], 1.0);
        assert_eq!(pess.ranks[0], 3.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng_scores = Vec::new();
        for i in 0..50 {
            rng_scores.push(((i * 37 + 11) % 100) as f32 / 100.0);
        }
        let model = MockModel { n: 50, tail_scores: rng_scores };
        let triples: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 1) % 50)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let serial = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        let parallel = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 8);
        assert_eq!(serial.ranks, parallel.ranks);
    }

    #[test]
    fn real_model_full_eval_is_finite() {
        let model = build_model(ModelKind::ComplEx, 20, 2, 8, 3);
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, i % 2, 19 - i)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let r = evaluate_full(model.as_ref(), &triples, &filter, TieBreak::Mean, 2);
        assert_eq!(r.ranks.len(), 20);
        assert!(r.ranks.iter().all(|&x| (1.0..=20.0).contains(&x)));
        assert!(r.metrics.mrr > 0.0 && r.metrics.mrr <= 1.0);
    }

    #[test]
    fn sharded_ranks_identical_for_every_shard_count() {
        let model = build_model(ModelKind::RotatE, 26, 2, 8, 17);
        let triples: Vec<Triple> = (0..12).map(|i| Triple::new(i, i % 2, 25 - i)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let baseline =
            evaluate_full_sharded(model.as_ref(), &triples, &filter, TieBreak::Mean, 1, 1);
        for shards in [2usize, 7, 26] {
            let sharded =
                evaluate_full_sharded(model.as_ref(), &triples, &filter, TieBreak::Mean, 3, shards);
            assert_eq!(sharded.ranks, baseline.ranks, "S={shards} diverged");
        }
        // The default (auto-sharded) entry point agrees too.
        let auto = evaluate_full(model.as_ref(), &triples, &filter, TieBreak::Mean, 2);
        assert_eq!(auto.ranks, baseline.ranks);
    }

    #[test]
    fn single_query_fanout_matches_serial_for_every_model_family() {
        // One triple (two queries) against a big thread budget: the spare
        // threads fan each query's shards out, and the ranks must stay
        // bit-for-bit those of the fully serial pass.
        for kind in ModelKind::ALL {
            let dim = match kind {
                ModelKind::ConvE => 16,
                ModelKind::Rescal | ModelKind::TuckEr => 8,
                _ => 12,
            };
            let model = build_model(kind, 29, 3, dim, 5);
            let triples = vec![Triple::new(4, 1, 22)];
            let filter = FilterIndex::from_slices(&[&triples]);
            for shards in [1usize, 2, 7] {
                let serial = evaluate_full_sharded(
                    model.as_ref(),
                    &triples,
                    &filter,
                    TieBreak::Mean,
                    1,
                    shards,
                );
                let fanned = evaluate_full_sharded(
                    model.as_ref(),
                    &triples,
                    &filter,
                    TieBreak::Mean,
                    8,
                    shards,
                );
                assert_eq!(
                    fanned.ranks,
                    serial.ranks,
                    "{} S={shards}: shard fan-out changed the ranks",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn nan_answer_ranks_last_and_nan_competitors_never_count() {
        // Entity 1 scores NaN; the answer is entity 0 (score 0.5).
        let model = MockModel { n: 4, tail_scores: vec![0.5, f32::NAN, 0.9, 0.2] };
        let test = vec![Triple::new(3, 0, 0)];
        let filter = FilterIndex::from_slices(&[&test]);
        let r = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        // Tail query: only entity 2 (0.9) outranks the answer; the NaN is
        // worse, not invisible.
        assert_eq!(r.ranks[0], 2.0);
        // A NaN answer ranks behind every real competitor instead of
        // silently ranking first.
        let nan_answer = vec![Triple::new(3, 0, 1)];
        let filter = FilterIndex::from_slices(&[&nan_answer]);
        let r = evaluate_full(&model, &nan_answer, &filter, TieBreak::Mean, 1);
        assert_eq!(r.ranks[0], 4.0, "three real scores beat the NaN answer");
        // The row-based reference kernel agrees.
        let rank = filtered_rank_from_scores(&[0.5, f32::NAN, 0.9, 0.2], 1, &[], TieBreak::Mean);
        assert_eq!(rank, 4.0);
    }

    #[test]
    fn perfect_model_gets_mrr_one() {
        // Score the true tail/head highest via a filter-free single triple.
        let model = MockModel { n: 3, tail_scores: vec![0.0, 1.0, 0.5] };
        let test = vec![Triple::new(2, 0, 1)];
        let filter = FilterIndex::from_slices(&[&test]);
        let r = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        assert_eq!(r.ranks[0], 1.0); // tail query: answer 1 has top score
    }
}
