//! The exact, filtered, full-ranking evaluation — the `O(|E|)`-per-query
//! protocol whose cost the paper's framework avoids, and the ground truth
//! every estimator is compared against.

use kg_core::parallel::parallel_map_with;
use kg_core::timing::Stopwatch;
use kg_core::triple::QuerySide;
use kg_core::{FilterIndex, Triple};
use kg_models::KgcModel;

use crate::metrics::{RankingMetrics, TieBreak};

/// Result of an evaluation pass: metrics, per-query ranks and wall time.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Aggregated metrics.
    pub metrics: RankingMetrics,
    /// Per-query filtered ranks, in query order (tail query then head query
    /// per test triple).
    pub ranks: Vec<f64>,
    /// Wall-clock seconds of the scoring + ranking work.
    pub seconds: f64,
}

/// Expand triples into the standard query list: for each test triple, a
/// tail query and a head query.
pub fn queries_of(triples: &[Triple]) -> Vec<(Triple, QuerySide)> {
    let mut out = Vec::with_capacity(triples.len() * 2);
    for &t in triples {
        out.push((t, QuerySide::Tail));
        out.push((t, QuerySide::Head));
    }
    out
}

/// Compute the filtered rank of the true answer from a full score row.
///
/// `known` are the other true answers of this query (to be filtered out);
/// the answer itself must be contained in `scores`.
pub fn filtered_rank_from_scores(
    scores: &[f32],
    answer: usize,
    known: &[kg_core::EntityId],
    tie: TieBreak,
) -> f64 {
    let s_true = scores[answer];
    let mut higher = 0usize;
    let mut ties = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if s > s_true {
            higher += 1;
        } else if s == s_true && i != answer {
            ties += 1;
        }
    }
    // Remove known-true competitors (the *filtered* protocol).
    for &k in known {
        let ki = k.index();
        if ki == answer {
            continue;
        }
        let s = scores[ki];
        if s > s_true {
            higher -= 1;
        } else if s == s_true {
            ties -= 1;
        }
    }
    tie.rank(higher, ties)
}

/// Evaluate `model` on `triples` with the full filtered protocol, ranking
/// every entity for every query, parallelised over queries.
pub fn evaluate_full(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &FilterIndex,
    tie: TieBreak,
    threads: usize,
) -> EvalResult {
    let queries = queries_of(triples);
    let n_entities = model.num_entities();
    let sw = Stopwatch::start();
    let ranks = parallel_map_with(
        queries.len(),
        threads,
        || vec![0.0f32; n_entities],
        |scores, qi| {
            let (triple, side) = queries[qi];
            model.score_all(triple, side, scores);
            let answer = side.answer(triple).index();
            let known = filter.known_answers(triple, side);
            filtered_rank_from_scores(scores, answer, known, tie)
        },
    );
    let seconds = sw.seconds();
    EvalResult { metrics: RankingMetrics::from_ranks(&ranks), ranks, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, RelationId};
    use kg_models::{build_model, ModelKind};

    /// A deterministic mock model: score(h,r,t) = f(t) only, so ranks are
    /// hand-computable.
    struct MockModel {
        n: usize,
        tail_scores: Vec<f32>,
    }

    impl KgcModel for MockModel {
        fn name(&self) -> &'static str {
            "Mock"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            1
        }
        fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
            self.tail_scores[t.index()]
        }
        fn score_tails(&self, _h: EntityId, _r: RelationId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_heads(&self, _r: RelationId, _t: EntityId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_tail_candidates(
            &self,
            _h: EntityId,
            _r: RelationId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &e) in out.iter_mut().zip(c) {
                *o = self.tail_scores[e.index()];
            }
        }
        fn score_head_candidates(
            &self,
            _r: RelationId,
            _t: EntityId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            self.score_tail_candidates(EntityId(0), RelationId(0), c, out);
        }
    }

    #[test]
    fn rank_is_position_by_score() {
        // Scores: entity 3 best, then 1, then 0, 2.
        let model = MockModel { n: 4, tail_scores: vec![0.5, 0.8, 0.1, 0.9] };
        let triples = vec![Triple::new(0, 0, 1)];
        let filter = FilterIndex::from_slices(&[&triples]);
        let r = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        // Tail query answer=1: entity 3 scores higher → rank 2.
        // Head query answer=0: entities 3 and 1 higher → rank 3.
        assert_eq!(r.ranks, vec![2.0, 3.0]);
        assert_eq!(r.metrics.count, 2);
        assert!((r.metrics.mrr - (0.5 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn filtering_removes_known_answers() {
        let model = MockModel { n: 4, tail_scores: vec![0.5, 0.8, 0.1, 0.9] };
        // Known: (0,0,3) also true → filtering it promotes (0,0,1)'s tail
        // rank from 2 to 1.
        let test = vec![Triple::new(0, 0, 1)];
        let train = vec![Triple::new(0, 0, 3)];
        let filter = FilterIndex::from_slices(&[&train, &test]);
        let r = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        assert_eq!(r.ranks[0], 1.0, "filtered rank must skip known tail 3");
    }

    #[test]
    fn tie_handling() {
        let model = MockModel { n: 4, tail_scores: vec![0.8, 0.8, 0.8, 0.1] };
        let test = vec![Triple::new(3, 0, 0)];
        let filter = FilterIndex::from_slices(&[&test]);
        let mean = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        let opt = evaluate_full(&model, &test, &filter, TieBreak::Optimistic, 1);
        let pess = evaluate_full(&model, &test, &filter, TieBreak::Pessimistic, 1);
        // Tail query: answer 0 tied with 1, 2.
        assert_eq!(mean.ranks[0], 2.0);
        assert_eq!(opt.ranks[0], 1.0);
        assert_eq!(pess.ranks[0], 3.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng_scores = Vec::new();
        for i in 0..50 {
            rng_scores.push(((i * 37 + 11) % 100) as f32 / 100.0);
        }
        let model = MockModel { n: 50, tail_scores: rng_scores };
        let triples: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 1) % 50)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let serial = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        let parallel = evaluate_full(&model, &triples, &filter, TieBreak::Mean, 8);
        assert_eq!(serial.ranks, parallel.ranks);
    }

    #[test]
    fn real_model_full_eval_is_finite() {
        let model = build_model(ModelKind::ComplEx, 20, 2, 8, 3);
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, i % 2, 19 - i)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let r = evaluate_full(model.as_ref(), &triples, &filter, TieBreak::Mean, 2);
        assert_eq!(r.ranks.len(), 20);
        assert!(r.ranks.iter().all(|&x| (1.0..=20.0).contains(&x)));
        assert!(r.metrics.mrr > 0.0 && r.metrics.mrr <= 1.0);
    }

    #[test]
    fn perfect_model_gets_mrr_one() {
        // Score the true tail/head highest via a filter-free single triple.
        let model = MockModel { n: 3, tail_scores: vec![0.0, 1.0, 0.5] };
        let test = vec![Triple::new(2, 0, 1)];
        let filter = FilterIndex::from_slices(&[&test]);
        let r = evaluate_full(&model, &test, &filter, TieBreak::Mean, 1);
        assert_eq!(r.ranks[0], 1.0); // tail query: answer 1 has top score
    }
}
