//! Sampled rank estimation: rank the true answer against a *per-relation*
//! candidate sample instead of every entity (§4.1).
//!
//! The rank within the (filtered) sample is used directly — no rescaling —
//! exactly as in OGB-style sampled evaluation. With uniform random samples
//! this is the optimistic estimator the paper analyses; with recommender-
//! guided samples the candidate pool contains essentially every entity that
//! could outrank the answer, so the sampled rank approaches the full rank
//! (Theorem 1).

use kg_core::parallel::{parallel_map_with, two_level_split};
use kg_core::timing::Stopwatch;
use kg_core::topk::cmp_score;
use kg_core::{EntityId, KnownIndex, Triple};
use kg_models::{engine, KgcModel};
use kg_recommend::SampledCandidates;

use crate::metrics::TieBreak;
use crate::ranker::{queries_of, EvalResult};
use crate::RankingMetrics;

/// Rank `answer` against `candidates` under the filtered protocol.
///
/// `scores[0]` must be the answer's score and `scores[1..]` the candidates'
/// scores (parallel to `candidates`). Candidates that are the answer itself
/// or known-true answers are skipped. NaN scores follow the explicit
/// ordering of [`kg_core::topk::cmp_score`] (NaN is the worst score), so
/// sampled ranks agree with the streamed full-ranking kernel on degenerate
/// scores too.
pub fn sampled_rank(
    answer: EntityId,
    candidates: &[EntityId],
    scores: &[f32],
    known: &[EntityId],
    tie: TieBreak,
) -> f64 {
    debug_assert_eq!(scores.len(), candidates.len() + 1);
    let s_true = scores[0];
    let mut higher = 0usize;
    let mut ties = 0usize;
    for (i, &c) in candidates.iter().enumerate() {
        if c == answer || known.binary_search(&c).is_ok() {
            continue;
        }
        match cmp_score(scores[i + 1], s_true) {
            std::cmp::Ordering::Greater => higher += 1,
            std::cmp::Ordering::Equal => ties += 1,
            std::cmp::Ordering::Less => {}
        }
    }
    tie.rank(higher, ties)
}

/// Evaluate `model` on `triples` using per-relation candidate samples.
///
/// The thread budget follows the two-level work plan
/// ([`kg_core::parallel::two_level_split`]): with at least `threads`
/// queries every thread ranks its own query; with fewer queries the spare
/// threads chunk each query's candidate scoring across workers
/// ([`kg_models::engine::score_answer_and_candidates_fanout`] — only for
/// candidate lists long enough to repay the fan-out). Per-candidate
/// arithmetic is independent, so ranks are bit-for-bit identical for
/// every `threads`.
pub fn evaluate_sampled<F: KnownIndex + ?Sized>(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &F,
    samples: &SampledCandidates,
    tie: TieBreak,
    threads: usize,
) -> EvalResult {
    let queries = queries_of(triples);
    let split = two_level_split(queries.len(), threads);
    let sw = Stopwatch::start();
    let ranks = parallel_map_with(
        queries.len(),
        split.outer,
        || (Vec::<EntityId>::new(), Vec::<f32>::new()),
        |(to_score, scores), qi| {
            let (triple, side) = queries[qi];
            let candidates = samples.for_query(triple.relation, side);
            // Scored list: answer first, then the shared candidate sample
            // (buffer management lives in the engine module).
            engine::score_answer_and_candidates_fanout(
                model,
                triple,
                side,
                candidates,
                to_score,
                scores,
                split.inner,
            );
            let known = filter.known_answers(triple, side);
            sampled_rank(side.answer(triple), candidates, scores, &known, tie)
        },
    );
    let seconds = sw.seconds();
    EvalResult { metrics: RankingMetrics::from_ranks(&ranks), ranks, seconds }
}

/// OGB-style repeated estimation: draw `repeats` independent candidate
/// samples and report the per-metric mean ± sample std of the estimates
/// (ogbl-wikikg2 reports MRR this way; the paper's Figures 4/5 average five
/// samplings).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_sampled_repeated<F: KnownIndex + ?Sized, R: rand::Rng>(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &F,
    strategy: kg_recommend::SamplingStrategy,
    n_s: usize,
    repeats: usize,
    matrix: Option<&kg_recommend::ScoreMatrix>,
    sets: Option<&kg_recommend::CandidateSets>,
    tie: TieBreak,
    threads: usize,
    rng: &mut R,
) -> RepeatedEstimate {
    assert!(repeats >= 1);
    let mut mrr = Vec::with_capacity(repeats);
    let mut hits10 = Vec::with_capacity(repeats);
    let mut seconds = Vec::with_capacity(repeats);
    let num_entities = model.num_entities();
    let num_relations = model.num_relations();
    for _ in 0..repeats {
        let samples = kg_recommend::sample_candidates(
            strategy,
            num_entities,
            num_relations,
            n_s,
            matrix,
            sets,
            rng,
        );
        let r = evaluate_sampled(model, triples, filter, &samples, tie, threads);
        mrr.push(r.metrics.mrr);
        hits10.push(r.metrics.hits10);
        seconds.push(r.seconds);
    }
    RepeatedEstimate {
        mrr: kg_core::stats::mean_std(&mrr),
        hits10: kg_core::stats::mean_std(&hits10),
        seconds: kg_core::stats::mean_std(&seconds),
        repeats,
    }
}

/// Mean ± std of repeated sampled estimates.
#[derive(Clone, Copy, Debug)]
pub struct RepeatedEstimate {
    /// `(mean, std)` of the MRR estimates.
    pub mrr: (f64, f64),
    /// `(mean, std)` of the Hits@10 estimates.
    pub hits10: (f64, f64),
    /// `(mean, std)` of wall seconds per estimate.
    pub seconds: (f64, f64),
    /// Number of repetitions.
    pub repeats: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;
    use kg_core::triple::QuerySide;
    use kg_core::FilterIndex;
    use kg_recommend::{sample_candidates, SamplingStrategy};

    struct MockModel {
        n: usize,
        tail_scores: Vec<f32>,
    }

    impl KgcModel for MockModel {
        fn name(&self) -> &'static str {
            "Mock"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            1
        }
        fn score(&self, _h: EntityId, _r: kg_core::RelationId, t: EntityId) -> f32 {
            self.tail_scores[t.index()]
        }
        fn score_tails(&self, _h: EntityId, _r: kg_core::RelationId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_heads(&self, _r: kg_core::RelationId, _t: EntityId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_tail_candidates(
            &self,
            _h: EntityId,
            _r: kg_core::RelationId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &e) in out.iter_mut().zip(c) {
                *o = self.tail_scores[e.index()];
            }
        }
        fn score_head_candidates(
            &self,
            _r: kg_core::RelationId,
            _t: EntityId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            self.score_tail_candidates(EntityId(0), kg_core::RelationId(0), c, out);
        }
    }

    #[test]
    fn sampled_rank_counts_only_sampled_competitors() {
        // answer scores 0.5; candidates: 2 higher, 1 lower, 1 is the answer.
        let answer = EntityId(0);
        let candidates = [EntityId(1), EntityId(2), EntityId(3), EntityId(0)];
        let scores = [0.5f32, 0.9, 0.8, 0.1, 0.5];
        let rank = sampled_rank(answer, &candidates, &scores, &[], TieBreak::Mean);
        assert_eq!(rank, 3.0);
    }

    #[test]
    fn sampled_rank_filters_known() {
        let answer = EntityId(0);
        let candidates = [EntityId(1), EntityId(2)];
        let scores = [0.5f32, 0.9, 0.8];
        let known = [EntityId(1)];
        let rank = sampled_rank(answer, &candidates, &scores, &known, TieBreak::Mean);
        assert_eq!(rank, 2.0, "known competitor 1 must be skipped");
    }

    #[test]
    fn full_sample_equals_full_rank() {
        // Sampling ALL entities must reproduce the full filtered rank.
        let scores: Vec<f32> = (0..30).map(|i| ((i * 7) % 30) as f32 / 30.0).collect();
        let model = MockModel { n: 30, tail_scores: scores };
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, 0, 29 - i)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let samples = sample_candidates(
            SamplingStrategy::Random,
            30,
            1,
            30, // = |E| → everything sampled
            None,
            None,
            &mut seeded_rng(1),
        );
        let full = crate::evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        let est = evaluate_sampled(&model, &triples, &filter, &samples, TieBreak::Mean, 1);
        assert_eq!(full.ranks, est.ranks);
    }

    #[test]
    fn small_random_sample_overestimates() {
        // The paper's core observation: sampled MRR ≥ full MRR, with the
        // gap growing as n_s shrinks.
        let scores: Vec<f32> = (0..200).map(|i| (i as f32).sin() * 0.5 + 0.5).collect();
        let model = MockModel { n: 200, tail_scores: scores };
        let triples: Vec<Triple> = (0..40).map(|i| Triple::new(i, 0, (i * 3 + 7) % 200)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let full = crate::evaluate_full(&model, &triples, &filter, TieBreak::Mean, 1);
        let mut rng = seeded_rng(2);
        let tiny = sample_candidates(SamplingStrategy::Random, 200, 1, 10, None, None, &mut rng);
        let est = evaluate_sampled(&model, &triples, &filter, &tiny, TieBreak::Mean, 1);
        assert!(
            est.metrics.mrr > full.metrics.mrr,
            "sampled {} should exceed true {}",
            est.metrics.mrr,
            full.metrics.mrr
        );
    }

    #[test]
    fn single_query_candidate_fanout_matches_serial() {
        // One triple + a candidate sample wide enough to trigger the
        // chunked scoring path: ranks must stay bit-for-bit serial.
        let n = kg_models::engine::CANDIDATE_FANOUT_MIN * 2;
        let scores: Vec<f32> = (0..n).map(|i| ((i * 31) % n) as f32 / n as f32).collect();
        let model = MockModel { n, tail_scores: scores };
        let triples = vec![Triple::new(0, 0, 7)];
        let filter = FilterIndex::from_slices(&[&triples]);
        let samples = sample_candidates(
            SamplingStrategy::Random,
            n,
            1,
            kg_models::engine::CANDIDATE_FANOUT_MIN + 100,
            None,
            None,
            &mut seeded_rng(6),
        );
        let serial = evaluate_sampled(&model, &triples, &filter, &samples, TieBreak::Mean, 1);
        let fanned = evaluate_sampled(&model, &triples, &filter, &samples, TieBreak::Mean, 8);
        assert_eq!(serial.ranks, fanned.ranks);
    }

    #[test]
    fn repeated_estimation_reports_mean_and_std() {
        let scores: Vec<f32> = (0..100).map(|i| ((i * 13) % 100) as f32 / 100.0).collect();
        let model = MockModel { n: 100, tail_scores: scores };
        let triples: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 1) % 100)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let mut rng = seeded_rng(4);
        let est = evaluate_sampled_repeated(
            &model,
            &triples,
            &filter,
            SamplingStrategy::Random,
            15,
            5,
            None,
            None,
            TieBreak::Mean,
            1,
            &mut rng,
        );
        assert_eq!(est.repeats, 5);
        assert!(est.mrr.0 > 0.0 && est.mrr.0 <= 1.0);
        assert!(est.mrr.1 >= 0.0, "std must be non-negative");
        assert!(est.hits10.0 >= est.mrr.0 - 1e-9, "Hits@10 ≥ MRR for any rank distribution");
    }

    #[test]
    fn per_relation_sample_reused_across_queries() {
        let samples =
            sample_candidates(SamplingStrategy::Random, 50, 1, 5, None, None, &mut seeded_rng(3));
        let a = samples.for_query(kg_core::RelationId(0), QuerySide::Tail);
        let b = samples.for_query(kg_core::RelationId(0), QuerySide::Tail);
        assert_eq!(a, b, "same relation+side must reuse the same candidates");
    }
}
