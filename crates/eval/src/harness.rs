//! The train-and-estimate experiment driver behind Tables 6–8 and
//! Figures 3c/4/5: train a KGC model, and at every epoch measure the true
//! full-ranking metrics alongside every estimator's metrics and wall time.

use kg_core::sample::seeded_rng;
use kg_core::timing::{timed, TimingSamples};
use kg_core::Triple;
use kg_datasets::Dataset;
use kg_models::{build_model, KgcModel, ModelKind, TrainConfig};
use kg_recommend::{
    sample_candidates_cached, CandidateSets, ProbabilisticCache, RelationRecommender,
    SamplingStrategy, ScoreMatrix, SeenSets,
};

use crate::estimator::{EstimatorSeries, Metric};
use crate::metrics::{RankingMetrics, TieBreak};
use crate::ranker::evaluate_full;
use crate::sampled::evaluate_sampled;

/// An additional scalar estimator evaluated each epoch (used to plug the
/// Knowledge Persistence baseline in without a crate dependency cycle).
pub type ExtraEstimator<'a> = (&'static str, Box<dyn Fn(&dyn KgcModel) -> f64 + 'a>);

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Model to train.
    pub model: ModelKind,
    /// Embedding dimension (0 = the model's default).
    pub dim: usize,
    /// Training hyper-parameters (epochs, lr, negatives, …).
    pub train: TrainConfig,
    /// Per-column sample size `n_s`.
    pub sample_size: usize,
    /// Sampling strategies to estimate with.
    pub strategies: Vec<SamplingStrategy>,
    /// Tie-breaking rule.
    pub tie: TieBreak,
    /// Worker threads for ranking.
    pub threads: usize,
    /// Cap on evaluation triples (deterministic prefix; 0 = no cap).
    pub max_eval_triples: usize,
    /// Evaluate on the validation split (else test).
    pub eval_on_valid: bool,
    /// Seed for the per-epoch candidate sampling.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            model: ModelKind::ComplEx,
            dim: 0,
            train: TrainConfig::default(),
            sample_size: 0, // 0 → 10 % of |E| (the paper's default)
            strategies: SamplingStrategy::ALL.to_vec(),
            tie: TieBreak::Mean,
            threads: kg_core::parallel::default_threads(),
            max_eval_triples: 2000,
            eval_on_valid: true,
            seed: 77,
        }
    }
}

/// One estimator's output at one epoch.
#[derive(Clone, Debug)]
pub struct EstimateRecord {
    /// Which strategy produced it.
    pub strategy: SamplingStrategy,
    /// Estimated metrics.
    pub metrics: RankingMetrics,
    /// Wall seconds of the estimation.
    pub seconds: f64,
}

/// Everything measured at one epoch.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub loss: f32,
    /// True full-ranking metrics.
    pub full: RankingMetrics,
    /// Wall seconds of the full evaluation.
    pub full_seconds: f64,
    /// Per-strategy estimates.
    pub estimates: Vec<EstimateRecord>,
    /// Extra scalar estimators: `(name, value, seconds)`.
    pub extras: Vec<(&'static str, f64, f64)>,
}

/// A complete training run with per-epoch measurements.
#[derive(Clone, Debug)]
pub struct TrainEvalRun {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: &'static str,
    /// Per-epoch records.
    pub records: Vec<EpochRecord>,
}

impl TrainEvalRun {
    /// Estimate-vs-truth series for `strategy` on `metric`.
    pub fn series(&self, strategy: SamplingStrategy, metric: Metric) -> EstimatorSeries {
        let mut s = EstimatorSeries::new();
        for rec in &self.records {
            if let Some(e) = rec.estimates.iter().find(|e| e.strategy == strategy) {
                s.push(e.metrics.get(metric), rec.full.get(metric));
            }
        }
        s
    }

    /// Extra-estimator-vs-truth series (truth on `metric`).
    pub fn extra_series(&self, name: &str, metric: Metric) -> EstimatorSeries {
        let mut s = EstimatorSeries::new();
        for rec in &self.records {
            if let Some((_, v, _)) = rec.extras.iter().find(|(n, _, _)| *n == name) {
                s.push(*v, rec.full.get(metric));
            }
        }
        s
    }

    /// Mean ± std speed-up of `strategy` relative to the full evaluation
    /// (one Table 9 cell).
    pub fn speedup(&self, strategy: SamplingStrategy) -> (f64, f64) {
        let mut full = TimingSamples::new();
        let mut est = TimingSamples::new();
        for rec in &self.records {
            if let Some(e) = rec.estimates.iter().find(|e| e.strategy == strategy) {
                full.push(rec.full_seconds);
                est.push(e.seconds);
            }
        }
        est.speedup_vs(&full)
    }

    /// Mean ± std speed-up of an extra estimator vs the full evaluation.
    pub fn extra_speedup(&self, name: &str) -> (f64, f64) {
        let mut full = TimingSamples::new();
        let mut est = TimingSamples::new();
        for rec in &self.records {
            if let Some((_, _, secs)) = rec.extras.iter().find(|(n, _, _)| *n == name) {
                full.push(rec.full_seconds);
                est.push(*secs);
            }
        }
        est.speedup_vs(&full)
    }

    /// Mean ± std of the full-evaluation seconds.
    pub fn full_eval_seconds(&self) -> (f64, f64) {
        let samples: Vec<f64> = self.records.iter().map(|r| r.full_seconds).collect();
        kg_core::stats::mean_std(&samples)
    }

    /// The true metric trajectory.
    pub fn truth_trajectory(&self, metric: Metric) -> Vec<f64> {
        self.records.iter().map(|r| r.full.get(metric)).collect()
    }
}

/// Deterministic evaluation-triple selection (prefix cap).
fn eval_triples<'a>(dataset: &'a Dataset, config: &HarnessConfig) -> &'a [Triple] {
    let triples: &[Triple] = if config.eval_on_valid { &dataset.valid } else { &dataset.test };
    if config.max_eval_triples > 0 && triples.len() > config.max_eval_triples {
        &triples[..config.max_eval_triples]
    } else {
        triples
    }
}

/// Train `config.model` on `dataset`, measuring true metrics and all
/// estimators at every epoch. The recommender is fitted once up front
/// (scores depend only on the training graph, not the model).
pub fn run_train_eval(
    dataset: &Dataset,
    config: &HarnessConfig,
    recommender: &dyn RelationRecommender,
    extras: &[ExtraEstimator<'_>],
) -> TrainEvalRun {
    let matrix = recommender.fit(dataset);
    run_train_eval_with_matrix(dataset, config, &matrix, extras).0
}

/// As [`run_train_eval`], with a pre-fitted score matrix; also returns the
/// trained model (the Figure 4/5 MAPE sweeps reuse it).
pub fn run_train_eval_with_matrix(
    dataset: &Dataset,
    config: &HarnessConfig,
    matrix: &ScoreMatrix,
    extras: &[ExtraEstimator<'_>],
) -> (TrainEvalRun, Box<dyn kg_models::TrainableModel>) {
    let n_s = if config.sample_size == 0 {
        (dataset.num_entities() as f64 * 0.1).ceil() as usize
    } else {
        config.sample_size
    };
    let seen = SeenSets::from_store(&dataset.train);
    let static_sets = CandidateSets::static_sets(matrix, &seen);
    let prob_cache = ProbabilisticCache::new(matrix);

    let dim = if config.dim == 0 { config.model.default_dim() } else { config.dim };
    let mut model = build_model(
        config.model,
        dataset.num_entities(),
        dataset.num_relations(),
        dim,
        config.train.seed,
    );
    let evals = eval_triples(dataset, config);
    let mut sample_rng = seeded_rng(config.seed);
    let mut records = Vec::with_capacity(config.train.epochs);

    let mut train_rng = seeded_rng(config.train.seed);
    for epoch in 0..config.train.epochs {
        let loss = kg_models::train_epoch(
            model.as_mut(),
            dataset.train.triples(),
            &config.train,
            &mut train_rng,
        );

        let full =
            evaluate_full(model.as_ref(), evals, &dataset.filter, config.tie, config.threads);
        let mut estimates = Vec::with_capacity(config.strategies.len());
        for &strategy in &config.strategies {
            // Candidate samples are redrawn per evaluation, as the paper does
            // (the sampling cost is part of the measured estimation time).
            let (samples, sample_secs) = timed(|| {
                sample_candidates_cached(
                    strategy,
                    dataset.num_entities(),
                    dataset.num_relations(),
                    n_s,
                    Some(matrix),
                    Some(&static_sets),
                    Some(&prob_cache),
                    &mut sample_rng,
                )
            });
            let result = evaluate_sampled(
                model.as_ref(),
                evals,
                &dataset.filter,
                &samples,
                config.tie,
                config.threads,
            );
            estimates.push(EstimateRecord {
                strategy,
                metrics: result.metrics,
                seconds: result.seconds + sample_secs,
            });
        }
        let mut extra_values = Vec::with_capacity(extras.len());
        for (name, f) in extras {
            let (value, secs) = timed(|| f(model.as_ref()));
            extra_values.push((*name, value, secs));
        }
        records.push(EpochRecord {
            epoch,
            loss,
            full: full.metrics,
            full_seconds: full.seconds,
            estimates,
            extras: extra_values,
        });
    }

    (TrainEvalRun { dataset: dataset.name.clone(), model: config.model.name(), records }, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datasets::{generate, SyntheticKgConfig};

    fn tiny_dataset() -> Dataset {
        generate(&SyntheticKgConfig {
            name: "harness-test".into(),
            num_entities: 300,
            num_relations: 8,
            num_types: 15,
            num_triples: 2500,
            seed: 3,
            ..Default::default()
        })
    }

    fn quick_config(epochs: usize) -> HarnessConfig {
        HarnessConfig {
            model: ModelKind::DistMult,
            dim: 16,
            train: TrainConfig { epochs, lr: 0.15, num_negatives: 4, ..Default::default() },
            sample_size: 40,
            threads: 2,
            max_eval_triples: 80,
            ..Default::default()
        }
    }

    #[test]
    fn harness_produces_per_epoch_records() {
        let d = tiny_dataset();
        let run = run_train_eval(&d, &quick_config(3), &kg_recommend::Lwd::untyped(), &[]);
        assert_eq!(run.records.len(), 3);
        for rec in &run.records {
            assert_eq!(rec.estimates.len(), 3);
            assert!(rec.full.count > 0);
            assert!(rec.full_seconds >= 0.0);
            assert!(rec.full.mrr >= 0.0 && rec.full.mrr <= 1.0);
        }
    }

    #[test]
    fn random_overestimates_recommender_estimates_track() {
        let d = tiny_dataset();
        let run = run_train_eval(&d, &quick_config(8), &kg_recommend::Lwd::untyped(), &[]);
        let random = run.series(SamplingStrategy::Random, Metric::Mrr);
        let static_s = run.series(SamplingStrategy::Static, Metric::Mrr);
        // The paper's headline: Random has (much) larger MAE than Static.
        assert!(
            random.mae() > static_s.mae(),
            "Random MAE {} should exceed Static MAE {}",
            random.mae(),
            static_s.mae()
        );
        // And Random's estimates sit above the truth.
        let over = random.estimates().iter().zip(random.truths()).filter(|(e, t)| e >= t).count();
        assert!(
            over * 10 >= random.len() * 8,
            "random should overestimate: {over}/{}",
            random.len()
        );
    }

    #[test]
    fn extras_are_invoked_each_epoch() {
        let d = tiny_dataset();
        let extras: Vec<ExtraEstimator> = vec![("Const", Box::new(|_m| 0.42))];
        let run = run_train_eval(&d, &quick_config(2), &kg_recommend::Lwd::untyped(), &extras);
        for rec in &run.records {
            assert_eq!(rec.extras.len(), 1);
            assert_eq!(rec.extras[0].1, 0.42);
        }
        let s = run.extra_series("Const", Metric::Mrr);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn speedup_is_positive() {
        let d = tiny_dataset();
        let run = run_train_eval(&d, &quick_config(2), &kg_recommend::Lwd::untyped(), &[]);
        let (mean, _std) = run.speedup(SamplingStrategy::Static);
        assert!(mean > 0.0);
    }
}
