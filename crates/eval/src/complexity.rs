//! Table 3: sampling-complexity comparison between entity-aware candidate
//! generators (one sampling per distinct query pair) and relation
//! recommenders (one sampling per domain/range column).

use kg_core::fxhash::FxHashSet;
use kg_datasets::Dataset;

/// One Table 3 column.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplingComplexity {
    /// Dataset name.
    pub dataset: String,
    /// Sampling fraction `f_s`.
    pub fraction: f64,
    /// Distinct `(h,r)` + `(r,t)` pairs in the test split.
    pub test_pairs: usize,
    /// Distinct relations in the test split (`(·,r,·)`-instances).
    pub test_relations: usize,
    /// Samples drawn by an entity-aware generator: `pairs · f_s · |E|`.
    pub samples_entity_aware: u128,
    /// Samples drawn by a relation recommender: `2 · |R_test| · f_s · |E|`.
    pub samples_relational: u128,
    /// Reduction factor (entity-aware / relational).
    pub reduction: f64,
}

/// Compute the Table 3 quantities for `dataset` at sampling fraction `f_s`.
pub fn sampling_complexity(dataset: &Dataset, fraction: f64) -> SamplingComplexity {
    assert!((0.0..=1.0).contains(&fraction));
    let mut hr: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut rt: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut rels: FxHashSet<u32> = FxHashSet::default();
    for t in &dataset.test {
        hr.insert((t.head.0, t.relation.0));
        rt.insert((t.relation.0, t.tail.0));
        rels.insert(t.relation.0);
    }
    let pairs = hr.len() + rt.len();
    let per_sampling = (fraction * dataset.num_entities() as f64) as u128;
    let entity_aware = pairs as u128 * per_sampling;
    let relational = 2 * rels.len() as u128 * per_sampling;
    SamplingComplexity {
        dataset: dataset.name.clone(),
        fraction,
        test_pairs: pairs,
        test_relations: rels.len(),
        samples_entity_aware: entity_aware,
        samples_relational: relational,
        reduction: if relational == 0 { 0.0 } else { entity_aware as f64 / relational as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{Triple, TypeAssignment};

    #[test]
    fn counts_match_hand_calculation() {
        let d = Dataset::new(
            "cx",
            vec![Triple::new(0, 0, 1)],
            vec![],
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2), // same (h,r)
                Triple::new(3, 1, 1),
            ],
            TypeAssignment::empty(100),
            None,
            100,
            2,
        );
        let c = sampling_complexity(&d, 0.025);
        // (h,r): {(0,0),(3,1)} = 2; (r,t): {(0,1),(0,2),(1,1)} = 3 → 5 pairs.
        assert_eq!(c.test_pairs, 5);
        assert_eq!(c.test_relations, 2);
        // per sampling = 0.025·100 = 2 entities.
        assert_eq!(c.samples_entity_aware, 10);
        assert_eq!(c.samples_relational, 8);
        assert!((c.reduction - 10.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_grows_with_queries_per_relation() {
        // Many test triples of one relation: relational cost stays flat.
        let test: Vec<Triple> = (0..50).map(|i| Triple::new(i, 0, i + 50)).collect();
        let d = Dataset::new(
            "many",
            vec![Triple::new(0, 0, 50)],
            vec![],
            test,
            TypeAssignment::empty(200),
            None,
            200,
            1,
        );
        let c = sampling_complexity(&d, 0.1);
        assert_eq!(c.test_relations, 1);
        assert_eq!(c.test_pairs, 100);
        assert!(c.reduction >= 50.0, "reduction {}", c.reduction);
    }
}
