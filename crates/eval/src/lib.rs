//! # kg-eval
//!
//! The paper's evaluation framework:
//!
//! * [`ranker`] — the exact, *filtered* full-ranking protocol (`O(|E|)` per
//!   query) that everything else approximates;
//! * [`sampled`] — rank estimation over per-relation candidate samples
//!   (Random / Static / Probabilistic);
//! * [`metrics`] — MRR, Hits@K, mean rank;
//! * [`estimator`] — MAE / MAPE / Pearson between estimated and true
//!   metrics (Tables 6, 7, 12–15, Figures 3–6);
//! * [`harness`] — the train/evaluate-per-epoch experiment driver;
//! * [`complexity`] — the Table 3 sampling-complexity calculator;
//! * [`report`] — plain-text table formatting shared by the repro binaries.

// Grown, not assumed: kg-lint (KL002/KL003) audits the crates that *do*
// need unsafe; everything else proves it needs none at compile time.
#![forbid(unsafe_code)]

pub mod auc;
pub mod complexity;
pub mod estimator;
pub mod export;
pub mod harness;
pub mod metrics;
pub mod ranker;
pub mod report;
pub mod sampled;
pub mod training;

pub use auc::{evaluate_auc, AucMetrics};
pub use complexity::{sampling_complexity, SamplingComplexity};
pub use estimator::{EstimatorSeries, Metric};
pub use harness::{run_train_eval, EpochRecord, HarnessConfig, TrainEvalRun};
pub use metrics::{RankingMetrics, TieBreak};
pub use ranker::{evaluate_full, evaluate_full_sharded, EvalResult};
pub use sampled::{evaluate_sampled, evaluate_sampled_repeated, RepeatedEstimate};
pub use training::HardNegativeSampler;
