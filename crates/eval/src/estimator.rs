//! Estimator quality: series of (estimate, truth) pairs per metric, with
//! the MAE / MAPE / Pearson summaries the paper's tables report.

use kg_core::stats::{kendall_tau, mae, mape, pearson};

/// Which ranking metric a series tracks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Metric {
    /// Mean reciprocal rank (the headline metric).
    Mrr,
    /// Hits@1.
    Hits1,
    /// Hits@3.
    Hits3,
    /// Hits@10.
    Hits10,
    /// Mean rank.
    MeanRank,
}

impl Metric {
    /// The metrics reported across Tables 6/7/12–15.
    pub const TABLED: [Metric; 4] = [Metric::Mrr, Metric::Hits1, Metric::Hits3, Metric::Hits10];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Mrr => "MRR",
            Metric::Hits1 => "Hits@1",
            Metric::Hits3 => "Hits@3",
            Metric::Hits10 => "Hits@10",
            Metric::MeanRank => "MeanRank",
        }
    }
}

/// Paired series of estimated vs true metric values (e.g. one value per
/// validation epoch).
#[derive(Clone, Debug, Default)]
pub struct EstimatorSeries {
    estimates: Vec<f64>,
    truths: Vec<f64>,
}

impl EstimatorSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (estimate, truth) pair.
    pub fn push(&mut self, estimate: f64, truth: f64) {
        self.estimates.push(estimate);
        self.truths.push(truth);
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Mean absolute error (Table 6 / 15).
    pub fn mae(&self) -> f64 {
        mae(&self.estimates, &self.truths)
    }

    /// Mean absolute percentage error (Figures 4 / 5).
    pub fn mape(&self) -> f64 {
        mape(&self.estimates, &self.truths)
    }

    /// Pearson correlation (Tables 7 / 12–14); `None` when undefined.
    pub fn pearson(&self) -> Option<f64> {
        pearson(&self.estimates, &self.truths)
    }

    /// Kendall-τ between the two series (Table 8 uses this across models).
    pub fn kendall(&self) -> Option<f64> {
        kendall_tau(&self.estimates, &self.truths)
    }

    /// The estimate series.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// The truth series.
    pub fn truths(&self) -> &[f64] {
        &self.truths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = EstimatorSeries::new();
        s.push(0.5, 0.4);
        s.push(0.6, 0.5);
        s.push(0.7, 0.6);
        assert!((s.mae() - 0.1).abs() < 1e-12);
        assert!((s.pearson().unwrap() - 1.0).abs() < 1e-9, "perfectly correlated");
        assert_eq!(s.kendall(), Some(1.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn anti_correlated_series() {
        let mut s = EstimatorSeries::new();
        for i in 0..5 {
            s.push(i as f64, -(i as f64));
        }
        assert!((s.pearson().unwrap() + 1.0).abs() < 1e-9);
        assert_eq!(s.kendall(), Some(-1.0));
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Mrr.name(), "MRR");
        assert_eq!(Metric::TABLED.len(), 4);
    }

    #[test]
    fn empty_series_degenerates_gracefully() {
        let s = EstimatorSeries::new();
        assert_eq!(s.mae(), 0.0);
        assert_eq!(s.pearson(), None);
        assert!(s.is_empty());
    }
}
