//! Recommender-guided *training-time* negative sampling — the paper's §7
//! future-work direction ("we will investigate relation recommenders as
//! negative sample probabilities during training"), building on the binary
//! variants of Krompaß et al. and Balkir et al.
//!
//! [`HardNegativeSampler`] corrupts a triple's slot with an entity drawn
//! from the relation's static candidate set (a *hard*, in-domain negative)
//! with probability `1 − uniform_mix`, falling back to uniform corruption
//! otherwise (pure hard negatives starve the model of the easy-negative
//! signal it needs to learn the domain boundary itself).

use kg_core::triple::QuerySide;
use kg_core::{EntityId, Triple};
use kg_models::NegativeSource;
use kg_recommend::CandidateSets;
use rand::rngs::StdRng;
use rand::Rng;

/// Training negative source mixing in-domain (hard) and uniform negatives.
pub struct HardNegativeSampler {
    sets: CandidateSets,
    num_entities: usize,
    uniform_mix: f64,
}

impl HardNegativeSampler {
    /// Build from candidate sets; `uniform_mix` is the probability of
    /// falling back to a uniform corruption (0.0 = always hard).
    pub fn new(sets: CandidateSets, num_entities: usize, uniform_mix: f64) -> Self {
        assert!((0.0..=1.0).contains(&uniform_mix));
        assert!(num_entities >= 2);
        HardNegativeSampler { sets, num_entities, uniform_mix }
    }
}

impl NegativeSource for HardNegativeSampler {
    fn corrupt_into(&self, rng: &mut StdRng, pos: Triple, side: QuerySide, out: &mut [EntityId]) {
        let answer = side.answer(pos);
        let pool = self.sets.for_query(pos.relation, side);
        for slot in out.iter_mut() {
            let mut attempts = 0;
            loop {
                attempts += 1;
                let hard = !pool.is_empty() && !rng.gen_bool(self.uniform_mix) && attempts <= 8;
                let e = if hard {
                    EntityId(pool[rng.gen_range(0..pool.len())])
                } else {
                    EntityId(rng.gen_range(0..self.num_entities as u32))
                };
                if e != answer {
                    *slot = e;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;
    use kg_core::TripleStore;
    use kg_recommend::SeenSets;

    fn sampler(uniform_mix: f64) -> HardNegativeSampler {
        // Relation 0: heads {0,1}, tails {5,6,7}.
        let store = TripleStore::from_triples(
            vec![Triple::new(0, 0, 5), Triple::new(1, 0, 6), Triple::new(0, 0, 7)],
            20,
            1,
        );
        let sets = CandidateSets::from_seen(&SeenSets::from_store(&store));
        HardNegativeSampler::new(sets, 20, uniform_mix)
    }

    #[test]
    fn pure_hard_negatives_come_from_the_candidate_set() {
        let s = sampler(0.0);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 5);
        let mut out = vec![EntityId(0); 32];
        NegativeSource::corrupt_into(&s, &mut rng, pos, QuerySide::Tail, &mut out);
        for &e in &out {
            assert_ne!(e, EntityId(5), "the answer must never be drawn");
            assert!([6u32, 7].contains(&e.0), "tail negative {e:?} should come from the range set");
        }
    }

    #[test]
    fn uniform_mix_reaches_outside_the_set() {
        let s = sampler(0.8);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(0, 0, 5);
        let mut out = vec![EntityId(0); 64];
        NegativeSource::corrupt_into(&s, &mut rng, pos, QuerySide::Tail, &mut out);
        assert!(out.iter().any(|e| ![5u32, 6, 7].contains(&e.0)), "expected some uniform draws");
    }

    #[test]
    fn head_side_uses_domain() {
        let s = sampler(0.0);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(0, 0, 5);
        let mut out = vec![EntityId(9); 16];
        NegativeSource::corrupt_into(&s, &mut rng, pos, QuerySide::Head, &mut out);
        for &e in &out {
            assert_eq!(e, EntityId(1), "only head 1 remains after excluding the answer");
        }
    }

    #[test]
    fn trains_end_to_end() {
        use kg_models::{build_model, train_epoch_with_source, ModelKind, TrainConfig};
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, 0, 10 + (i % 5))).collect();
        let store = TripleStore::from_triples(triples.clone(), 20, 1);
        let sets = CandidateSets::from_seen(&SeenSets::from_store(&store));
        let source = HardNegativeSampler::new(sets, 20, 0.3);
        let mut model = build_model(ModelKind::DistMult, 20, 1, 8, 4);
        let config = TrainConfig { epochs: 1, ..Default::default() };
        let mut rng = seeded_rng(5);
        let loss = train_epoch_with_source(model.as_mut(), &triples, &config, &source, &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
