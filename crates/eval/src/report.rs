//! Plain-text table rendering shared by the repro binaries.
//!
//! Produces aligned, monospace tables in the spirit of the paper's layout:
//!
//! ```text
//! Dataset      Model     R      P      S
//! -----------  --------  -----  -----  -----
//! fb15k237-sim TransE    0.216  0.017  0.008
//! ```

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given header cells.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{:<width$}{}", h, sep, width = widths[i]);
        }
        for (i, w) in widths.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{}{}", "-".repeat(*w), sep);
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        }
        out
    }
}

/// Format a float with 3 decimals (the paper's usual precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format `mean ± std`.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1}")
}

/// Format an optional correlation, `—` when undefined.
pub fn corr(c: Option<f64>) -> String {
    match c {
        Some(v) => format!("{v:.3}"),
        None => "—".to_string(),
    }
}

/// Format a boolean as the check/cross marks of Table 1.
pub fn mark(b: bool) -> &'static str {
    if b {
        "✔"
    } else {
        "✘"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "model"]);
        t.row(vec!["x", "TransE"]);
        t.row(vec!["longer", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a       model"));
        assert!(lines[1].starts_with("------  -----"));
        assert!(lines[2].contains("TransE"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(2.789), "2.8");
        assert_eq!(pm(3.0, 0.25), "3.0 ± 0.2");
        assert_eq!(corr(None), "—");
        assert_eq!(corr(Some(0.5)), "0.500");
        assert_eq!(mark(true), "✔");
    }
}
