//! CSV export of experiment artifacts, for plotting outside Rust.
//!
//! Every repro table/figure has an upstream data structure; these writers
//! dump them as tidy CSV (one observation per row) so the paper's plots can
//! be regenerated with any plotting stack.

use std::io::Write;

use kg_core::KgError;
use kg_recommend::SamplingStrategy;

use crate::estimator::Metric;
use crate::harness::TrainEvalRun;

/// Write a per-epoch tidy CSV of a training run:
/// `dataset,model,epoch,loss,estimator,metric,value,seconds`.
///
/// `seconds` is the wall time of the evaluation that produced the row's
/// value: the full ranking for `estimator=true` rows, the sampled pass for
/// strategy rows, and the extra estimator's own timing for `metric=raw`
/// rows (each extra estimator runs once per epoch, so its timing repeats on
/// none — extras emit exactly one row).
pub fn run_to_csv<W: Write>(run: &TrainEvalRun, w: &mut W) -> Result<(), KgError> {
    writeln!(w, "dataset,model,epoch,loss,estimator,metric,value,seconds")?;
    let metrics = [Metric::Mrr, Metric::Hits1, Metric::Hits3, Metric::Hits10];
    for rec in &run.records {
        for metric in metrics {
            writeln!(
                w,
                "{},{},{},{},true,{},{},{}",
                run.dataset,
                run.model,
                rec.epoch,
                rec.loss,
                metric.name(),
                rec.full.get(metric),
                rec.full_seconds
            )?;
            for est in &rec.estimates {
                writeln!(
                    w,
                    "{},{},{},{},{},{},{},{}",
                    run.dataset,
                    run.model,
                    rec.epoch,
                    rec.loss,
                    est.strategy.label(),
                    metric.name(),
                    est.metrics.get(metric),
                    est.seconds
                )?;
            }
        }
        for (name, value, secs) in &rec.extras {
            writeln!(
                w,
                "{},{},{},{},{},raw,{},{}",
                run.dataset, run.model, rec.epoch, rec.loss, name, value, secs
            )?;
        }
    }
    Ok(())
}

/// Write a sample-size sweep as CSV: `fraction,n_s,strategy,metric,value`.
pub fn sweep_to_csv<W: Write>(
    rows: &[(f64, usize, SamplingStrategy, Metric, f64)],
    w: &mut W,
) -> Result<(), KgError> {
    writeln!(w, "fraction,n_s,strategy,metric,value")?;
    for (fraction, n_s, strategy, metric, value) in rows {
        writeln!(w, "{},{},{},{},{}", fraction, n_s, strategy.label(), metric.name(), value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_train_eval, HarnessConfig};
    use kg_datasets::{generate, SyntheticKgConfig};
    use kg_models::{ModelKind, TrainConfig};

    #[test]
    fn run_csv_has_header_and_rows() {
        let d = generate(&SyntheticKgConfig {
            num_entities: 120,
            num_relations: 4,
            num_types: 6,
            num_triples: 900,
            ..Default::default()
        });
        let config = HarnessConfig {
            model: ModelKind::DistMult,
            dim: 8,
            train: TrainConfig { epochs: 2, ..Default::default() },
            sample_size: 15,
            threads: 1,
            max_eval_triples: 30,
            ..Default::default()
        };
        let run = run_train_eval(&d, &config, &kg_recommend::Lwd::untyped(), &[]);
        let mut buf = Vec::new();
        run_to_csv(&run, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "dataset,model,epoch,loss,estimator,metric,value,seconds");
        // 2 epochs × 4 metrics × (1 true + 3 estimators) = 32 rows.
        assert_eq!(lines.len(), 1 + 32);
        assert!(lines[1].starts_with("synthetic,DistMult,0,"));
        let header_arity = lines[0].split(',').count();
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.split(',').count(), header_arity, "row {i} arity mismatch: {line}");
        }
        // The seconds column parses as a non-negative float on every row.
        for line in &lines[1..] {
            let secs: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(secs >= 0.0);
        }
    }

    #[test]
    fn run_csv_extras_keep_arity_and_timing() {
        use crate::harness::ExtraEstimator;
        let d = generate(&SyntheticKgConfig {
            num_entities: 100,
            num_relations: 3,
            num_types: 4,
            num_triples: 600,
            ..Default::default()
        });
        let config = HarnessConfig {
            model: ModelKind::DistMult,
            dim: 8,
            train: TrainConfig { epochs: 1, ..Default::default() },
            sample_size: 10,
            threads: 1,
            max_eval_triples: 20,
            ..Default::default()
        };
        let extra: ExtraEstimator = ("const_extra", Box::new(|_model| 0.25));
        let run = run_train_eval(&d, &config, &kg_recommend::Lwd::untyped(), &[extra]);
        let mut buf = Vec::new();
        run_to_csv(&run, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let header_arity = lines[0].split(',').count();
        let extra_rows: Vec<&&str> = lines.iter().filter(|l| l.contains("const_extra")).collect();
        assert_eq!(extra_rows.len(), 1, "one extras row per epoch");
        for row in extra_rows {
            assert_eq!(row.split(',').count(), header_arity, "extras row arity: {row}");
            let mut cols = row.split(',');
            assert_eq!(cols.nth(4), Some("const_extra"), "estimator column holds the name");
            assert_eq!(cols.next(), Some("raw"), "metric column holds the raw marker");
            assert_eq!(cols.next(), Some("0.25"), "value column holds the estimate");
            let secs: f64 = cols.next().unwrap().parse().unwrap();
            assert!(secs >= 0.0, "seconds column records the extra's timing");
        }
    }

    #[test]
    fn sweep_csv_format() {
        let rows = vec![(0.05, 10usize, SamplingStrategy::Random, Metric::Mrr, 0.5)];
        let mut buf = Vec::new();
        sweep_to_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0.05,10,R,MRR,0.5"));
    }
}
