//! CSV export of experiment artifacts, for plotting outside Rust.
//!
//! Every repro table/figure has an upstream data structure; these writers
//! dump them as tidy CSV (one observation per row) so the paper's plots can
//! be regenerated with any plotting stack.

use std::io::Write;

use kg_core::KgError;
use kg_recommend::SamplingStrategy;

use crate::estimator::Metric;
use crate::harness::TrainEvalRun;

/// Write a per-epoch tidy CSV of a training run:
/// `epoch,loss,estimator,metric,value`.
pub fn run_to_csv<W: Write>(run: &TrainEvalRun, w: &mut W) -> Result<(), KgError> {
    writeln!(w, "dataset,model,epoch,loss,estimator,metric,value")?;
    let metrics = [Metric::Mrr, Metric::Hits1, Metric::Hits3, Metric::Hits10];
    for rec in &run.records {
        for metric in metrics {
            writeln!(
                w,
                "{},{},{},{},true,{},{}",
                run.dataset,
                run.model,
                rec.epoch,
                rec.loss,
                metric.name(),
                rec.full.get(metric)
            )?;
            for est in &rec.estimates {
                writeln!(
                    w,
                    "{},{},{},{},{},{},{}",
                    run.dataset,
                    run.model,
                    rec.epoch,
                    rec.loss,
                    est.strategy.label(),
                    metric.name(),
                    est.metrics.get(metric)
                )?;
            }
        }
        for (name, value, secs) in &rec.extras {
            writeln!(
                w,
                "{},{},{},{},{},raw,{}",
                run.dataset, run.model, rec.epoch, rec.loss, name, value
            )?;
            let _ = secs;
        }
    }
    Ok(())
}

/// Write a sample-size sweep as CSV: `fraction,n_s,strategy,metric,value`.
pub fn sweep_to_csv<W: Write>(
    rows: &[(f64, usize, SamplingStrategy, Metric, f64)],
    w: &mut W,
) -> Result<(), KgError> {
    writeln!(w, "fraction,n_s,strategy,metric,value")?;
    for (fraction, n_s, strategy, metric, value) in rows {
        writeln!(w, "{},{},{},{},{}", fraction, n_s, strategy.label(), metric.name(), value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_train_eval, HarnessConfig};
    use kg_datasets::{generate, SyntheticKgConfig};
    use kg_models::{ModelKind, TrainConfig};

    #[test]
    fn run_csv_has_header_and_rows() {
        let d = generate(&SyntheticKgConfig {
            num_entities: 120,
            num_relations: 4,
            num_types: 6,
            num_triples: 900,
            ..Default::default()
        });
        let config = HarnessConfig {
            model: ModelKind::DistMult,
            dim: 8,
            train: TrainConfig { epochs: 2, ..Default::default() },
            sample_size: 15,
            threads: 1,
            max_eval_triples: 30,
            ..Default::default()
        };
        let run = run_train_eval(&d, &config, &kg_recommend::Lwd::untyped(), &[]);
        let mut buf = Vec::new();
        run_to_csv(&run, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "dataset,model,epoch,loss,estimator,metric,value");
        // 2 epochs × 4 metrics × (1 true + 3 estimators) = 32 rows.
        assert_eq!(lines.len(), 1 + 32);
        assert!(lines[1].starts_with("synthetic,DistMult,0,"));
    }

    #[test]
    fn sweep_csv_format() {
        let rows = vec![(0.05, 10usize, SamplingStrategy::Random, Metric::Mrr, 0.5)];
        let mut buf = Vec::new();
        sweep_to_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0.05,10,R,MRR,0.5"));
    }
}
