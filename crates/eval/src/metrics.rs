//! Ranking metrics: filtered MRR, Hits@K, mean rank.

/// How rank ties (candidates scoring exactly the true answer's score) are
/// resolved. LibKGE-style `Mean` is the default; `Optimistic` is the
/// classic (and inflation-prone) variant. Ablated by `repro ablate-ties`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TieBreak {
    /// Ties count half: `rank = 1 + higher + ties/2`.
    Mean,
    /// Ties ignored: `rank = 1 + higher`.
    Optimistic,
    /// Ties count fully: `rank = 1 + higher + ties`.
    Pessimistic,
}

impl TieBreak {
    /// Resolve a rank given the number of strictly-higher and tied
    /// competitors.
    #[inline]
    pub fn rank(self, higher: usize, ties: usize) -> f64 {
        match self {
            TieBreak::Mean => 1.0 + higher as f64 + ties as f64 / 2.0,
            TieBreak::Optimistic => 1.0 + higher as f64,
            TieBreak::Pessimistic => 1.0 + (higher + ties) as f64,
        }
    }
}

/// Aggregated ranking metrics over a set of queries.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct RankingMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Fraction of queries with rank ≤ 1.
    pub hits1: f64,
    /// Fraction with rank ≤ 3.
    pub hits3: f64,
    /// Fraction with rank ≤ 10.
    pub hits10: f64,
    /// Arithmetic mean rank.
    pub mean_rank: f64,
    /// Number of queries aggregated.
    pub count: usize,
}

impl RankingMetrics {
    /// Aggregate from individual ranks.
    pub fn from_ranks(ranks: &[f64]) -> Self {
        if ranks.is_empty() {
            return Self::default();
        }
        let n = ranks.len() as f64;
        let mut m = RankingMetrics { count: ranks.len(), ..Default::default() };
        for &r in ranks {
            debug_assert!(r >= 1.0, "ranks start at 1, got {r}");
            m.mrr += 1.0 / r;
            m.mean_rank += r;
            if r <= 1.0 {
                m.hits1 += 1.0;
            }
            if r <= 3.0 {
                m.hits3 += 1.0;
            }
            if r <= 10.0 {
                m.hits10 += 1.0;
            }
        }
        m.mrr /= n;
        m.mean_rank /= n;
        m.hits1 /= n;
        m.hits3 /= n;
        m.hits10 /= n;
        m
    }

    /// Select one metric value by kind.
    pub fn get(&self, metric: crate::estimator::Metric) -> f64 {
        use crate::estimator::Metric;
        match metric {
            Metric::Mrr => self.mrr,
            Metric::Hits1 => self.hits1,
            Metric::Hits3 => self.hits3,
            Metric::Hits10 => self.hits10,
            Metric::MeanRank => self.mean_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_break_variants() {
        assert_eq!(TieBreak::Optimistic.rank(2, 3), 3.0);
        assert_eq!(TieBreak::Mean.rank(2, 3), 4.5);
        assert_eq!(TieBreak::Pessimistic.rank(2, 3), 6.0);
        assert_eq!(TieBreak::Mean.rank(0, 0), 1.0);
    }

    #[test]
    fn metrics_from_known_ranks() {
        let m = RankingMetrics::from_ranks(&[1.0, 2.0, 10.0, 100.0]);
        assert_eq!(m.count, 4);
        assert!((m.mrr - (1.0 + 0.5 + 0.1 + 0.01) / 4.0).abs() < 1e-12);
        assert_eq!(m.hits1, 0.25);
        assert_eq!(m.hits3, 0.5);
        assert_eq!(m.hits10, 0.75);
        assert_eq!(m.mean_rank, 28.25);
    }

    #[test]
    fn empty_ranks() {
        let m = RankingMetrics::from_ranks(&[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    fn perfect_ranking() {
        let m = RankingMetrics::from_ranks(&[1.0; 10]);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.hits10, 1.0);
        assert_eq!(m.mean_rank, 1.0);
    }

    #[test]
    fn hits_monotone_in_k() {
        let m = RankingMetrics::from_ranks(&[1.0, 2.0, 4.0, 8.0, 20.0]);
        assert!(m.hits1 <= m.hits3);
        assert!(m.hits3 <= m.hits10);
    }
}
