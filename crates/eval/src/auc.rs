//! Classification-style metrics over sampled candidates: ROC-AUC and
//! average precision (AUC-PR).
//!
//! §7 of the paper: *"Our sampling methods can also complement other
//! metrics, such as ROC AUC and AUC-PR that have been used previously in
//! KGC to better reflect a method's capability of predicting triples among
//! harder examples."* This module implements exactly that: the true answer
//! is the positive, the (filtered) sampled candidates are the negatives,
//! and the per-query AUCs are averaged. With uniform random negatives this
//! is the inductive-KGC protocol the paper cites (Teru et al.); with
//! recommender-guided negatives it scores against *hard* candidates.

use kg_core::parallel::parallel_map_with;
use kg_core::{FilterIndex, Triple};
use kg_models::KgcModel;
use kg_recommend::SampledCandidates;

use crate::ranker::queries_of;

/// Aggregated classification metrics over all queries.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AucMetrics {
    /// Mean per-query ROC-AUC (probability the positive outranks a random
    /// sampled negative; ties count half).
    pub roc_auc: f64,
    /// Mean per-query average precision with a single positive:
    /// `1 / rank` of the positive among the candidates — which is why the
    /// paper's MRR and AUC-PR coincide in the single-positive setting.
    pub auc_pr: f64,
    /// Number of queries aggregated.
    pub count: usize,
}

/// ROC-AUC of one positive score against negative scores (Mann–Whitney).
pub fn roc_auc_single(positive: f32, negatives: &[f32]) -> f64 {
    if negatives.is_empty() {
        return 1.0;
    }
    let mut wins = 0.0f64;
    for &n in negatives {
        if positive > n {
            wins += 1.0;
        } else if positive == n {
            wins += 0.5;
        }
    }
    wins / negatives.len() as f64
}

/// Average precision with a single positive at (1-based) rank `r` is `1/r`.
pub fn average_precision_single(positive: f32, negatives: &[f32]) -> f64 {
    let mut higher = 0usize;
    let mut ties = 0usize;
    for &n in negatives {
        if n > positive {
            higher += 1;
        } else if n == positive {
            ties += 1;
        }
    }
    1.0 / (1.0 + higher as f64 + ties as f64 / 2.0)
}

/// Evaluate ROC-AUC / AUC-PR over `triples` using per-relation candidate
/// samples as negatives (filtered: known-true candidates are excluded).
pub fn evaluate_auc(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &FilterIndex,
    samples: &SampledCandidates,
    threads: usize,
) -> AucMetrics {
    let queries = queries_of(triples);
    let per_query = parallel_map_with(
        queries.len(),
        threads,
        || (Vec::new(), Vec::new()),
        |(to_score, scores), qi| {
            let (triple, side) = queries[qi];
            let answer = side.answer(triple);
            let candidates = samples.for_query(triple.relation, side);
            to_score.clear();
            to_score.push(answer);
            to_score.extend_from_slice(candidates);
            scores.clear();
            scores.resize(to_score.len(), 0.0f32);
            model.score_candidates(triple, side, to_score, scores);
            let known = filter.known_answers(triple, side);
            // Filter: drop candidates that are the answer or known-true.
            let mut negatives = Vec::with_capacity(candidates.len());
            for (i, &c) in candidates.iter().enumerate() {
                if c != answer && known.binary_search(&c).is_err() {
                    negatives.push(scores[i + 1]);
                }
            }
            (roc_auc_single(scores[0], &negatives), average_precision_single(scores[0], &negatives))
        },
    );
    if per_query.is_empty() {
        return AucMetrics::default();
    }
    let n = per_query.len() as f64;
    AucMetrics {
        roc_auc: per_query.iter().map(|p| p.0).sum::<f64>() / n,
        auc_pr: per_query.iter().map(|p| p.1).sum::<f64>() / n,
        count: per_query.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;
    use kg_core::{EntityId, RelationId};
    use kg_recommend::{sample_candidates, SamplingStrategy};

    #[test]
    fn roc_auc_extremes() {
        assert_eq!(roc_auc_single(1.0, &[0.0, 0.5, 0.9]), 1.0);
        assert_eq!(roc_auc_single(0.0, &[0.5, 0.9]), 0.0);
        assert_eq!(roc_auc_single(0.5, &[0.5]), 0.5, "tie counts half");
        assert_eq!(roc_auc_single(0.3, &[]), 1.0, "no negatives = perfect");
    }

    #[test]
    fn roc_auc_is_win_fraction() {
        // positive 0.6 beats 2 of 4 negatives, ties 1 → (2 + 0.5)/4.
        assert!((roc_auc_single(0.6, &[0.1, 0.2, 0.6, 0.9]) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn average_precision_is_reciprocal_rank() {
        assert_eq!(average_precision_single(1.0, &[0.0, 0.5]), 1.0);
        assert_eq!(average_precision_single(0.4, &[0.9, 0.8, 0.1]), 1.0 / 3.0);
    }

    struct MockModel {
        n: usize,
        tail_scores: Vec<f32>,
    }

    impl KgcModel for MockModel {
        fn name(&self) -> &'static str {
            "Mock"
        }
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn num_relations(&self) -> usize {
            1
        }
        fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
            self.tail_scores[t.index()]
        }
        fn score_tails(&self, _h: EntityId, _r: RelationId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_heads(&self, _r: RelationId, _t: EntityId, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_tail_candidates(
            &self,
            _h: EntityId,
            _r: RelationId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            for (o, &e) in out.iter_mut().zip(c) {
                *o = self.tail_scores[e.index()];
            }
        }
        fn score_head_candidates(
            &self,
            _r: RelationId,
            _t: EntityId,
            c: &[EntityId],
            out: &mut [f32],
        ) {
            self.score_tail_candidates(EntityId(0), RelationId(0), c, out);
        }
    }

    #[test]
    fn perfect_model_gets_auc_one() {
        // Answers always score 1.0, everything else 0.
        let mut scores = vec![0.0f32; 20];
        scores[3] = 1.0;
        let model = MockModel { n: 20, tail_scores: scores };
        let triples = vec![Triple::new(3, 0, 3)]; // degenerate self-loop is fine for the mock
        let filter = FilterIndex::from_slices(&[&triples]);
        let samples =
            sample_candidates(SamplingStrategy::Random, 20, 1, 10, None, None, &mut seeded_rng(1));
        let m = evaluate_auc(&model, &triples, &filter, &samples, 1);
        assert_eq!(m.count, 2);
        assert_eq!(m.roc_auc, 1.0);
        assert_eq!(m.auc_pr, 1.0);
    }

    #[test]
    fn random_model_auc_near_half() {
        let scores: Vec<f32> = (0..200).map(|i| ((i * 37) % 200) as f32).collect();
        let model = MockModel { n: 200, tail_scores: scores };
        let triples: Vec<Triple> = (0..50).map(|i| Triple::new(i, 0, (i * 13 + 7) % 200)).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let samples =
            sample_candidates(SamplingStrategy::Random, 200, 1, 50, None, None, &mut seeded_rng(2));
        let m = evaluate_auc(&model, &triples, &filter, &samples, 2);
        assert!((m.roc_auc - 0.5).abs() < 0.15, "uninformative model AUC {}", m.roc_auc);
    }

    #[test]
    fn hard_negatives_lower_auc() {
        // Scores correlate with entity id; answers are mid-ranked. Negatives
        // drawn only from high-score entities (hard) must lower AUC relative
        // to uniform negatives.
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let model = MockModel { n: 100, tail_scores: scores };
        let triples: Vec<Triple> = (0..30).map(|i| Triple::new(i, 0, 50 + (i % 10))).collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let uniform =
            sample_candidates(SamplingStrategy::Random, 100, 1, 30, None, None, &mut seeded_rng(3));
        let hard_matrix = kg_recommend::ScoreMatrix::from_columns(
            100,
            1,
            vec![
                (60..100u32).map(|e| (e, 1.0f32)).collect(),
                (60..100u32).map(|e| (e, 1.0f32)).collect(),
            ],
        );
        let hard = sample_candidates(
            SamplingStrategy::Probabilistic,
            100,
            1,
            30,
            Some(&hard_matrix),
            None,
            &mut seeded_rng(3),
        );
        let auc_uniform = evaluate_auc(&model, &triples, &filter, &uniform, 1);
        let auc_hard = evaluate_auc(&model, &triples, &filter, &hard, 1);
        assert!(
            auc_hard.roc_auc < auc_uniform.roc_auc,
            "hard negatives should depress AUC: {} vs {}",
            auc_hard.roc_auc,
            auc_uniform.roc_auc
        );
    }
}
