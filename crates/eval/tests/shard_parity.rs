//! Shard-parity property tests: for **every** model family, the sharded
//! scoring paths (streamed filtered ranks, sharded full ranking, sharded
//! top-k, and the per-query shard *fan-out* latency paths) must be
//! **bit-for-bit identical** to the unsharded reference for
//! `S ∈ {1, 2, 7, num_entities}`.
//!
//! The reference is the pre-refactor seed path, reconstructed explicitly:
//! materialise the full score row with `score_all`, then rank with
//! `filtered_rank_from_scores` / select top-k by a full sort. Nothing here
//! goes through `ShardPlan`, so any partition-dependence in the engine
//! shows up as a mismatch.

use std::sync::Arc;

use kg_core::parallel::{BufferPool, ShardPlan};
use kg_core::topk::cmp_entry;
use kg_core::triple::QuerySide;
use kg_core::{EntityId, FilterIndex, Triple};
use kg_eval::ranker::{evaluate_full_sharded, filtered_rank_from_scores, queries_of};
use kg_eval::TieBreak;
use kg_models::engine::{self, ScoringEngine};
use kg_models::{build_model, KgcModel, ModelKind};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, usize::MAX]; // MAX → num_entities

fn shard_counts(n: usize) -> impl Iterator<Item = usize> {
    SHARD_COUNTS.into_iter().map(move |s| if s == usize::MAX { n } else { s })
}

/// Deterministic test triples over `n` entities / `nr` relations.
fn triples_from(raw: &[(u32, u32, u32)], n: u32, nr: u32) -> Vec<Triple> {
    raw.iter().map(|&(h, r, t)| Triple::new(h % n, r % nr, t % n)).collect()
}

fn model_strategy() -> impl Strategy<Value = (ModelKind, u64)> {
    let kinds = prop_oneof![
        Just(ModelKind::TransE),
        Just(ModelKind::DistMult),
        Just(ModelKind::ComplEx),
        Just(ModelKind::Rescal),
        Just(ModelKind::RotatE),
        Just(ModelKind::TuckEr),
        Just(ModelKind::ConvE),
    ];
    (kinds, 0u64..1000)
}

fn build(kind: ModelKind, seed: u64, n: usize, nr: usize) -> Box<dyn kg_models::TrainableModel> {
    let dim = match kind {
        ModelKind::ConvE => 16,
        ModelKind::Rescal | ModelKind::TuckEr => 8,
        _ => 12,
    };
    build_model(kind, n, nr, dim, seed)
}

/// The seed path's full ranking: full row per query, row-based rank kernel.
fn reference_ranks(
    model: &dyn KgcModel,
    triples: &[Triple],
    filter: &FilterIndex,
    tie: TieBreak,
) -> Vec<f64> {
    let n = model.num_entities();
    let mut scores = vec![0.0f32; n];
    queries_of(triples)
        .into_iter()
        .map(|(triple, side)| {
            model.score_all(triple, side, &mut scores);
            let answer = side.answer(triple).index();
            let known = filter.known_answers(triple, side);
            filtered_rank_from_scores(&scores, answer, known, tie)
        })
        .collect()
}

/// The seed path's top-k: full row, full sort, filter, truncate.
fn reference_topk(
    model: &dyn KgcModel,
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
    k: usize,
) -> Vec<(u32, f32)> {
    let n = model.num_entities();
    let mut scores = vec![0.0f32; n];
    model.score_all(triple, side, &mut scores);
    let mut all: Vec<(u32, f32)> = scores
        .iter()
        .enumerate()
        .filter(|(e, _)| known.binary_search(&EntityId(*e as u32)).is_err())
        .map(|(e, &s)| (e as u32, s))
        .collect();
    all.sort_by(|&a, &b| cmp_entry(a, b));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded full ranking (`evaluate_full_sharded`) returns bit-for-bit
    /// the seed path's `EvalResult.ranks` for every family and shard count.
    #[test]
    fn full_ranking_bit_identical_across_shard_counts(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..12),
        threads in 1usize..4,
    ) {
        let (n, nr) = (19usize, 3usize);
        let model = build(kind, seed, n, nr);
        let triples = triples_from(&raw, n as u32, nr as u32);
        let filter = FilterIndex::from_slices(&[&triples]);
        for tie in [TieBreak::Mean, TieBreak::Optimistic, TieBreak::Pessimistic] {
            let want = reference_ranks(model.as_ref(), &triples, &filter, tie);
            for shards in shard_counts(n) {
                let got = evaluate_full_sharded(
                    model.as_ref(), &triples, &filter, tie, threads, shards,
                );
                prop_assert_eq!(
                    &got.ranks, &want,
                    "{} S={} {:?}: ranks diverged", model.name(), shards, tie
                );
            }
        }
    }

    /// Streamed filtered-rank counters equal the row-based kernel on every
    /// query, for every family and shard count.
    #[test]
    fn streamed_rank_counts_bit_identical(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..10),
    ) {
        let (n, nr) = (23usize, 3usize);
        let model = build(kind, seed, n, nr);
        let triples = triples_from(&raw, n as u32, nr as u32);
        let filter = FilterIndex::from_slices(&[&triples]);
        let mut row = vec![0.0f32; n];
        for (triple, side) in queries_of(&triples) {
            model.score_all(triple, side, &mut row);
            let answer = side.answer(triple).index();
            let known = filter.known_answers(triple, side);
            let want = filtered_rank_from_scores(&row, answer, known, TieBreak::Mean);
            for shards in shard_counts(n) {
                let plan = ShardPlan::new(n, shards);
                let mut scratch = vec![0.0f32; engine::scratch_len(model.as_ref(), &plan)];
                let (higher, ties) = engine::rank_counts_with(
                    model.as_ref(), &plan, &mut scratch, triple, side, known,
                );
                prop_assert_eq!(
                    TieBreak::Mean.rank(higher, ties), want,
                    "{} S={}: streamed rank diverged", model.name(), shards
                );
            }
        }
    }

    /// Per-query shard fan-out (`rank_counts_fanout`, the latency path)
    /// equals the row-based kernel for every family, shard count, and
    /// fan-out width — including the full-row fallback families
    /// (TuckER/ConvE), whose *counting* is what fans out.
    #[test]
    fn fanout_rank_counts_bit_identical(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..6),
        fanout in 2usize..6,
    ) {
        let (n, nr) = (23usize, 3usize);
        let model = build(kind, seed, n, nr);
        let triples = triples_from(&raw, n as u32, nr as u32);
        let filter = FilterIndex::from_slices(&[&triples]);
        let mut row = vec![0.0f32; n];
        for (triple, side) in queries_of(&triples) {
            model.score_all(triple, side, &mut row);
            let answer = side.answer(triple).index();
            let known = filter.known_answers(triple, side);
            let want = filtered_rank_from_scores(&row, answer, known, TieBreak::Mean);
            for shards in shard_counts(n) {
                let plan = ShardPlan::new(n, shards);
                let pool = BufferPool::new(engine::scratch_len(model.as_ref(), &plan));
                let (higher, ties) = engine::rank_counts_fanout(
                    model.as_ref(), &plan, &pool, triple, side, known, fanout,
                );
                prop_assert_eq!(
                    TieBreak::Mean.rank(higher, ties), want,
                    "{} S={} fanout={}: fanned rank diverged", model.name(), shards, fanout
                );
            }
        }
    }

    /// The two-level work plan end to end: few queries against a big
    /// thread budget (spare threads fan each query's shards out) returns
    /// bit-for-bit the single-threaded ranks for every family.
    #[test]
    fn two_level_full_ranking_bit_identical(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..3),
        threads in 5usize..9,
    ) {
        let (n, nr) = (19usize, 3usize);
        let model = build(kind, seed, n, nr);
        let triples = triples_from(&raw, n as u32, nr as u32);
        let filter = FilterIndex::from_slices(&[&triples]);
        for shards in shard_counts(n) {
            let serial = evaluate_full_sharded(
                model.as_ref(), &triples, &filter, TieBreak::Mean, 1, shards,
            );
            let fanned = evaluate_full_sharded(
                model.as_ref(), &triples, &filter, TieBreak::Mean, threads, shards,
            );
            prop_assert_eq!(
                &fanned.ranks, &serial.ranks,
                "{} S={} threads={}: two-level ranks diverged", model.name(), shards, threads
            );
        }
    }

    /// Sharded top-k (serial shard walk *and* thread fan-out) equals the
    /// full-sort reference for every family and shard count.
    #[test]
    fn sharded_topk_bit_identical(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..8),
        k in 0usize..25,
    ) {
        let (n, nr) = (21usize, 3usize);
        let model = build(kind, seed, n, nr);
        let triples = triples_from(&raw, n as u32, nr as u32);
        let filter = FilterIndex::from_slices(&[&triples]);
        let k = k.min(n);
        let shared: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
        for (triple, side) in queries_of(&triples).into_iter().take(4) {
            let known = filter.known_answers(triple, side);
            let want = reference_topk(shared.as_ref(), triple, side, known, k);
            for shards in shard_counts(n) {
                let eng = ScoringEngine::new(Arc::clone(&shared), shards);
                prop_assert_eq!(
                    &eng.top_k(triple, side, known, k), &want,
                    "{} S={} k={}: top-k diverged", shared.name(), shards, k
                );
                prop_assert_eq!(
                    &eng.top_k_fanout(triple, side, known, k, 4), &want,
                    "{} S={} k={}: fan-out top-k diverged", shared.name(), shards, k
                );
            }
        }
    }
}
