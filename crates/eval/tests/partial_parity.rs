//! Partial-result property tests: for **every** model family, partials
//! computed over an *arbitrary partition* of the entity range and merged
//! in an *arbitrary permutation order* must be bit-for-bit identical to
//! the unpartitioned result — the associativity + commutativity +
//! identity laws the multi-node gateway's correctness rests on. Every
//! partial additionally makes a round trip through its wire codec before
//! merging, so the on-the-wire representation is proven exact, not just
//! the in-memory one.

use std::sync::Arc;

use kg_core::partial::{Partial, PartialRankCounts, PartialTopK};
use kg_core::topk::cmp_entry;
use kg_core::{EntityId, FilterIndex, Triple};
use kg_eval::ranker::{filtered_rank_from_scores, queries_of};
use kg_eval::TieBreak;
use kg_models::engine::ScoringEngine;
use kg_models::{build_model, KgcModel, ModelKind};
use proptest::prelude::*;

const N: usize = 23;
const NR: usize = 3;

fn model_strategy() -> impl Strategy<Value = (ModelKind, u64)> {
    let kinds = prop_oneof![
        Just(ModelKind::TransE),
        Just(ModelKind::DistMult),
        Just(ModelKind::ComplEx),
        Just(ModelKind::Rescal),
        Just(ModelKind::RotatE),
        Just(ModelKind::TuckEr),
        Just(ModelKind::ConvE),
    ];
    (kinds, 0u64..1000)
}

fn build(kind: ModelKind, seed: u64) -> Arc<dyn KgcModel> {
    let dim = match kind {
        ModelKind::ConvE => 16,
        ModelKind::Rescal | ModelKind::TuckEr => 8,
        _ => 12,
    };
    Arc::from(build_model(kind, N, NR, dim, seed) as Box<dyn KgcModel>)
}

/// Turn arbitrary cut points into a partition of `0..N`: sorted, deduped
/// interior cuts delimiting contiguous pieces (empty pieces permitted —
/// they must behave as identities).
fn partition_from(cuts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (N + 1)).collect();
    cuts.push(0);
    cuts.push(N);
    cuts.sort_unstable();
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// A deterministic permutation of `0..len` from one seed (tiny LCG-driven
/// Fisher–Yates) — "merge in any order" without needing an RNG type.
fn permutation(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..len).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rank-counter partials over any partition, wire-roundtripped and
    /// merged in any order (identity elements interleaved), equal the
    /// unpartitioned counters — and the resulting rank equals the
    /// full-row reference kernel.
    #[test]
    fn rank_count_partials_survive_any_partition_and_permutation(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..4),
        cuts in proptest::collection::vec(0usize..=N, 0..6),
        perm_seed in 0u64..1_000_000,
        threads in 1usize..4,
    ) {
        let model = build(kind, seed);
        let triples: Vec<Triple> = raw
            .iter()
            .map(|&(h, r, t)| Triple::new(h % N as u32, r % NR as u32, t % N as u32))
            .collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let engine = ScoringEngine::new(Arc::clone(&model), 4);
        let pieces = partition_from(&cuts);
        let mut row = vec![0.0f32; N];
        for (triple, side) in queries_of(&triples) {
            let known = filter.known_answers(triple, side);
            let full = engine.partial_rank_counts(triple, side, known, 0..N, 1);
            // Partials per piece, each round-tripped through the wire.
            let mut parts: Vec<PartialRankCounts> = pieces
                .iter()
                .map(|r| {
                    let p = engine.partial_rank_counts(triple, side, known, r.clone(), threads);
                    PartialRankCounts::decode(&p.encode()).expect("wire roundtrip")
                })
                .collect();
            // Merge in a permuted order, seeding the fold with the
            // identity and sprinkling one more identity into the middle.
            let order = permutation(parts.len(), perm_seed);
            let mut acc = full.identity();
            for (step, &i) in order.iter().enumerate() {
                if step == order.len() / 2 {
                    acc.merge(acc.identity());
                }
                acc.merge(std::mem::take(&mut parts[i]));
            }
            prop_assert_eq!(
                acc, full,
                "{} {:?}: partition {:?} permuted by {} diverged",
                model.name(), side, pieces, perm_seed
            );
            // And the merged counters resolve to the reference rank.
            model.score_all(triple, side, &mut row);
            let want = filtered_rank_from_scores(
                &row, side.answer(triple).index(), known, TieBreak::Mean,
            );
            prop_assert_eq!(
                TieBreak::Mean.rank(acc.higher as usize, acc.ties as usize),
                want
            );
        }
    }

    /// Top-k partials over any partition, wire-roundtripped and merged in
    /// any order, equal the unpartitioned top-k — which itself equals the
    /// full-sort reference.
    #[test]
    fn topk_partials_survive_any_partition_and_permutation(
        (kind, seed) in model_strategy(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..1000), 1..3),
        cuts in proptest::collection::vec(0usize..=N, 0..6),
        perm_seed in 0u64..1_000_000,
        k in 0usize..=N,
        threads in 1usize..4,
    ) {
        let model = build(kind, seed);
        let triples: Vec<Triple> = raw
            .iter()
            .map(|&(h, r, t)| Triple::new(h % N as u32, r % NR as u32, t % N as u32))
            .collect();
        let filter = FilterIndex::from_slices(&[&triples]);
        let engine = ScoringEngine::new(Arc::clone(&model), 4);
        let pieces = partition_from(&cuts);
        let mut row = vec![0.0f32; N];
        for (triple, side) in queries_of(&triples).into_iter().take(3) {
            let known = filter.known_answers(triple, side);
            let full = engine.partial_top_k(triple, side, known, k, 0..N, 1);
            let mut parts: Vec<PartialTopK> = pieces
                .iter()
                .map(|r| {
                    let p = engine.partial_top_k(triple, side, known, k, r.clone(), threads);
                    PartialTopK::decode(&p.encode()).expect("wire roundtrip")
                })
                .collect();
            let order = permutation(parts.len(), perm_seed);
            let mut acc = full.identity();
            for (step, &i) in order.iter().enumerate() {
                if step == order.len() / 2 {
                    acc.merge(acc.identity());
                }
                acc.merge(std::mem::replace(&mut parts[i], PartialTopK::empty(k)));
            }
            // Bit-for-bit: entity ids and score bits.
            let (got, want) = (acc.entries(), full.entries());
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want) {
                prop_assert_eq!(a.0, b.0, "{}: entity order diverged", model.name());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits(), "{}: score bits diverged", model.name());
            }
            // The unpartitioned partial equals the full-sort reference.
            model.score_all(triple, side, &mut row);
            let mut reference: Vec<(u32, f32)> = row
                .iter()
                .enumerate()
                .filter(|(e, _)| known.binary_search(&EntityId(*e as u32)).is_err())
                .map(|(e, &s)| (e as u32, s))
                .collect();
            reference.sort_by(|&a, &b| cmp_entry(a, b));
            reference.truncate(k);
            prop_assert_eq!(want, &reference[..], "{}: full partial != reference", model.name());
        }
    }
}
