//! Property-based tests for the ranking/estimation invariants.

use kg_core::{EntityId, Triple};
use kg_eval::metrics::{RankingMetrics, TieBreak};
use kg_eval::ranker::filtered_rank_from_scores;
use kg_eval::sampled::sampled_rank;
use proptest::prelude::*;

fn scores_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 2..60)
}

proptest! {
    #[test]
    fn full_rank_within_bounds(scores in scores_strategy(), answer_seed in 0usize..1000) {
        let answer = answer_seed % scores.len();
        let rank = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Mean);
        prop_assert!(rank >= 1.0);
        prop_assert!(rank <= scores.len() as f64);
    }

    #[test]
    fn argmax_ranks_first(scores in scores_strategy()) {
        let answer = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let rank = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Optimistic);
        prop_assert_eq!(rank, 1.0);
    }

    #[test]
    fn filtering_never_worsens_rank(scores in scores_strategy(), answer_seed in 0usize..1000, known_seed in 0usize..1000) {
        let n = scores.len();
        let answer = answer_seed % n;
        let known_candidate = known_seed % n;
        let unfiltered = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Mean);
        let known = [EntityId(known_candidate as u32)];
        let filtered = filtered_rank_from_scores(&scores, answer, &known, TieBreak::Mean);
        prop_assert!(filtered <= unfiltered, "filtering must only improve ranks");
    }

    #[test]
    fn tie_break_ordering(scores in scores_strategy(), answer_seed in 0usize..1000) {
        let answer = answer_seed % scores.len();
        let opt = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Optimistic);
        let mean = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Mean);
        let pess = filtered_rank_from_scores(&scores, answer, &[], TieBreak::Pessimistic);
        prop_assert!(opt <= mean && mean <= pess);
    }

    #[test]
    fn sampled_rank_monotone_in_candidates(
        pool in proptest::collection::vec((0u32..50, -5.0f32..5.0), 3..40),
        split in 1usize..38,
    ) {
        // Rank against a subset never exceeds rank against the superset.
        let split = split.min(pool.len() - 1);
        let answer = EntityId(99);
        let answer_score = 0.0f32;
        let make = |cands: &[(u32, f32)]| {
            let ids: Vec<EntityId> = cands.iter().map(|&(e, _)| EntityId(e)).collect();
            let mut scores = vec![answer_score];
            scores.extend(cands.iter().map(|&(_, s)| s));
            sampled_rank(answer, &ids, &scores, &[], TieBreak::Mean)
        };
        let small = make(&pool[..split]);
        let big = make(&pool);
        prop_assert!(small <= big, "subset rank {small} > superset rank {big}");
    }

    #[test]
    fn sampled_rank_ignores_answer_duplicates(pool in proptest::collection::vec(-5.0f32..5.0, 1..20)) {
        // Candidates equal to the answer never count as competitors.
        let answer = EntityId(7);
        let cands: Vec<EntityId> = vec![answer; pool.len()];
        let mut scores = vec![0.0f32];
        scores.extend(pool.iter().copied());
        let rank = sampled_rank(answer, &cands, &scores, &[], TieBreak::Pessimistic);
        prop_assert_eq!(rank, 1.0);
    }

    #[test]
    fn metrics_bounds(ranks in proptest::collection::vec(1.0f64..500.0, 1..100)) {
        let m = RankingMetrics::from_ranks(&ranks);
        prop_assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        prop_assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
        prop_assert!(m.mean_rank >= 1.0);
        prop_assert!(m.mrr >= 1.0 / m.mean_rank - 1e-12, "Jensen: MRR ≥ 1/mean-rank");
        prop_assert_eq!(m.count, ranks.len());
    }

    #[test]
    fn queries_expand_two_per_triple(raw in proptest::collection::vec((0u32..9, 0u32..3, 0u32..9), 0..30)) {
        let triples: Vec<Triple> = raw.iter().map(|&(h, r, t)| Triple::new(h, r, t)).collect();
        let queries = kg_eval::ranker::queries_of(&triples);
        prop_assert_eq!(queries.len(), triples.len() * 2);
        for (i, (t, _)) in queries.iter().enumerate() {
            prop_assert_eq!(*t, triples[i / 2]);
        }
    }
}
