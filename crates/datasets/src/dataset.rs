//! The `Dataset` bundle: splits, type assignments, filter index.

use kg_core::{FilterIndex, Triple, TripleStore, TypeAssignment};

use crate::schema::KgSchema;

/// A benchmark dataset: train store, held-out splits, entity types, and the
/// filter index over *all* splits (the filtered-ranking protocol removes
/// every known-true triple, whichever split it came from).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. `"fb15k237-sim"`).
    pub name: String,
    /// Training triples, indexed.
    pub train: TripleStore,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
    /// Entity → types multi-map (may be empty for untyped graphs).
    pub types: TypeAssignment,
    /// The generating ontology, when the dataset is synthetic.
    pub schema: Option<KgSchema>,
    /// Filter index over train ∪ valid ∪ test.
    pub filter: FilterIndex,
}

impl Dataset {
    /// Assemble a dataset, building the triple store and filter index.
    #[allow(clippy::too_many_arguments)] // a constructor enumerating the parts
    pub fn new(
        name: impl Into<String>,
        train: Vec<Triple>,
        valid: Vec<Triple>,
        test: Vec<Triple>,
        types: TypeAssignment,
        schema: Option<KgSchema>,
        num_entities: usize,
        num_relations: usize,
    ) -> Self {
        let filter = FilterIndex::from_slices(&[&train, &valid, &test]);
        let train = TripleStore::from_triples(train, num_entities, num_relations);
        Dataset { name: name.into(), train, valid, test, types, schema, filter }
    }

    /// Number of entities in the universe.
    pub fn num_entities(&self) -> usize {
        self.train.num_entities()
    }

    /// Number of relation types.
    pub fn num_relations(&self) -> usize {
        self.train.num_relations()
    }

    /// Total triples across all splits.
    pub fn num_triples(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// Train ∪ valid triples (the "seen" set used when computing *Unseen*
    /// candidate recall in Table 5).
    pub fn seen_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.train.triples().iter().copied().chain(self.valid.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)],
            vec![Triple::new(2, 0, 3)],
            vec![Triple::new(3, 0, 4)],
            TypeAssignment::empty(5),
            None,
            5,
            1,
        )
    }

    #[test]
    fn counts() {
        let d = tiny();
        assert_eq!(d.num_entities(), 5);
        assert_eq!(d.num_relations(), 1);
        assert_eq!(d.num_triples(), 4);
        assert_eq!(d.train.len(), 2);
    }

    #[test]
    fn filter_covers_all_splits() {
        let d = tiny();
        assert!(d.filter.contains(Triple::new(0, 0, 1))); // train
        assert!(d.filter.contains(Triple::new(2, 0, 3))); // valid
        assert!(d.filter.contains(Triple::new(3, 0, 4))); // test
        assert!(!d.filter.contains(Triple::new(4, 0, 0)));
    }

    #[test]
    fn seen_triples_is_train_plus_valid() {
        let d = tiny();
        let seen: Vec<Triple> = d.seen_triples().collect();
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&Triple::new(2, 0, 3)));
        assert!(!seen.contains(&Triple::new(3, 0, 4)));
    }
}
