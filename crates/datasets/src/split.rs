//! Train/valid/test splitting with the transductive guarantee.
//!
//! Standard KGC benchmarks guarantee every entity and relation of the
//! held-out splits is observed in training; otherwise embedding models have
//! no parameters for them. `split_transductive` enforces this by moving
//! offending held-out triples back into train.

use kg_core::Triple;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffle and split `triples` into `(train, valid, test)` with the given
/// held-out fractions, then repair the split so that every entity and
/// relation appearing in valid/test also appears in train.
pub fn split_transductive<R: Rng>(
    mut triples: Vec<Triple>,
    valid_fraction: f64,
    test_fraction: f64,
    rng: &mut R,
) -> (Vec<Triple>, Vec<Triple>, Vec<Triple>) {
    assert!(valid_fraction >= 0.0 && test_fraction >= 0.0);
    assert!(valid_fraction + test_fraction < 1.0, "held-out fractions must leave training data");
    triples.shuffle(rng);
    let n = triples.len();
    let n_valid = (n as f64 * valid_fraction).round() as usize;
    let n_test = (n as f64 * test_fraction).round() as usize;
    let n_train = n - n_valid - n_test;

    let mut train: Vec<Triple> = triples[..n_train].to_vec();
    let candidates_valid = &triples[n_train..n_train + n_valid];
    let candidates_test = &triples[n_train + n_valid..];

    let (mut max_e, mut max_r) = (0u32, 0u32);
    for t in &triples {
        max_e = max_e.max(t.head.0).max(t.tail.0);
        max_r = max_r.max(t.relation.0);
    }
    let mut seen_e = vec![false; max_e as usize + 1];
    let mut seen_r = vec![false; max_r as usize + 1];
    for t in &train {
        seen_e[t.head.index()] = true;
        seen_e[t.tail.index()] = true;
        seen_r[t.relation.index()] = true;
    }

    let keep =
        |t: &Triple, train: &mut Vec<Triple>, seen_e: &mut [bool], seen_r: &mut [bool]| -> bool {
            if seen_e[t.head.index()] && seen_e[t.tail.index()] && seen_r[t.relation.index()] {
                true
            } else {
                seen_e[t.head.index()] = true;
                seen_e[t.tail.index()] = true;
                seen_r[t.relation.index()] = true;
                train.push(*t);
                false
            }
        };

    let mut valid = Vec::with_capacity(n_valid);
    for t in candidates_valid {
        if keep(t, &mut train, &mut seen_e, &mut seen_r) {
            valid.push(*t);
        }
    }
    let mut test = Vec::with_capacity(n_test);
    for t in candidates_test {
        if keep(t, &mut train, &mut seen_e, &mut seen_r) {
            test.push(*t);
        }
    }
    (train, valid, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;

    fn chain_triples(n: u32) -> Vec<Triple> {
        // A chain 0→1→2→…: every entity appears in ≤ 2 triples, stressing
        // the transductive repair.
        (0..n).map(|i| Triple::new(i, i % 3, i + 1)).collect()
    }

    #[test]
    fn fractions_roughly_respected_on_dense_data() {
        // Dense graph: few repairs needed.
        let mut triples = Vec::new();
        for h in 0..30u32 {
            for t in 0..30u32 {
                if h != t {
                    triples.push(Triple::new(h, 0, t));
                }
            }
        }
        let n = triples.len();
        let (train, valid, test) = split_transductive(triples, 0.1, 0.1, &mut seeded_rng(1));
        assert_eq!(train.len() + valid.len() + test.len(), n);
        assert!((valid.len() as f64) > 0.05 * n as f64);
        assert!((test.len() as f64) > 0.05 * n as f64);
    }

    #[test]
    fn transductive_guarantee_holds() {
        let (train, valid, test) =
            split_transductive(chain_triples(200), 0.2, 0.2, &mut seeded_rng(2));
        let mut seen_e = vec![false; 202];
        let mut seen_r = [false; 3];
        for t in &train {
            seen_e[t.head.index()] = true;
            seen_e[t.tail.index()] = true;
            seen_r[t.relation.index()] = true;
        }
        for t in valid.iter().chain(&test) {
            assert!(seen_e[t.head.index()] && seen_e[t.tail.index()] && seen_r[t.relation.index()]);
        }
    }

    #[test]
    fn no_triples_lost_or_duplicated() {
        let triples = chain_triples(100);
        let n = triples.len();
        let (train, valid, test) = split_transductive(triples, 0.15, 0.15, &mut seeded_rng(3));
        assert_eq!(train.len() + valid.len() + test.len(), n);
        let mut all: Vec<Triple> = train.into_iter().chain(valid).chain(test).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn zero_fractions_put_everything_in_train() {
        let (train, valid, test) =
            split_transductive(chain_triples(50), 0.0, 0.0, &mut seeded_rng(4));
        assert_eq!(train.len(), 50);
        assert!(valid.is_empty() && test.is_empty());
    }
}
