//! Dataset presets mirroring the paper's Table 4.
//!
//! Two scales:
//!
//! * [`Scale::Quick`] — shrunk versions for tests/CI and the default repro
//!   run (minutes end-to-end);
//! * [`Scale::Paper`] — sizes matching Table 4 where feasible on one
//!   machine; `ogbl-wikikg2` (2.5M entities in the paper) and `YAGO3-10`
//!   (123k entities, 7M triples) are scaled down as documented in DESIGN.md,
//!   preserving the |E| ≫ |R| ≫ |T| hierarchy and triple/entity ratios.

use crate::generator::SyntheticKgConfig;

/// Which benchmark to mimic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PresetId {
    /// FB15k analogue (many relations, dense).
    Fb15k,
    /// FB15k-237 analogue.
    Fb15k237,
    /// YAGO3-10 analogue (few relations, large pools).
    Yago3,
    /// CoDEx-S analogue.
    CodexS,
    /// CoDEx-M analogue.
    CodexM,
    /// CoDEx-L analogue.
    CodexL,
    /// ogbl-wikikg2 analogue (the large-scale setting).
    WikiKg2,
}

impl PresetId {
    /// All presets, in the order Table 4 lists them.
    pub const ALL: [PresetId; 7] = [
        PresetId::Fb15k,
        PresetId::Fb15k237,
        PresetId::Yago3,
        PresetId::WikiKg2,
        PresetId::CodexS,
        PresetId::CodexM,
        PresetId::CodexL,
    ];

    /// Dataset name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PresetId::Fb15k => "fb15k-sim",
            PresetId::Fb15k237 => "fb15k237-sim",
            PresetId::Yago3 => "yago3-10-sim",
            PresetId::CodexS => "codex-s-sim",
            PresetId::CodexM => "codex-m-sim",
            PresetId::CodexL => "codex-l-sim",
            PresetId::WikiKg2 => "wikikg2-sim",
        }
    }

    /// Parse from the report name or a short alias.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fb15k" | "fb15k-sim" => Some(PresetId::Fb15k),
            "fb15k237" | "fb15k-237" | "fb15k237-sim" => Some(PresetId::Fb15k237),
            "yago3" | "yago3-10" | "yago3-10-sim" => Some(PresetId::Yago3),
            "codex-s" | "codex-s-sim" | "codexs" => Some(PresetId::CodexS),
            "codex-m" | "codex-m-sim" | "codexm" => Some(PresetId::CodexM),
            "codex-l" | "codex-l-sim" | "codexl" => Some(PresetId::CodexL),
            "wikikg2" | "ogbl-wikikg2" | "wikikg2-sim" => Some(PresetId::WikiKg2),
            _ => None,
        }
    }
}

/// Experiment scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Shrunk datasets; the full repro suite runs in minutes.
    Quick,
    /// Table-4-like sizes (wikikg2/yago3 scaled down; see DESIGN.md).
    Paper,
}

/// Build the generator configuration for `(id, scale)`.
pub fn preset(id: PresetId, scale: Scale) -> SyntheticKgConfig {
    // (entities, relations, types, triples, noise)
    let (e, r, t, n, noise) = match (id, scale) {
        (PresetId::Fb15k, Scale::Quick) => (2_000, 120, 25, 28_000, 0.002),
        (PresetId::Fb15k, Scale::Paper) => (14_505, 400, 79, 310_000, 0.002),
        (PresetId::Fb15k237, Scale::Quick) => (2_000, 60, 25, 25_000, 0.003),
        (PresetId::Fb15k237, Scale::Paper) => (14_505, 237, 79, 310_000, 0.003),
        (PresetId::Yago3, Scale::Quick) => (4_000, 15, 20, 35_000, 0.002),
        (PresetId::Yago3, Scale::Paper) => (60_000, 37, 325, 900_000, 0.002),
        (PresetId::CodexS, Scale::Quick) => (600, 20, 12, 6_500, 0.003),
        (PresetId::CodexS, Scale::Paper) => (2_034, 42, 40, 36_500, 0.003),
        (PresetId::CodexM, Scale::Quick) => (2_000, 30, 20, 18_000, 0.003),
        (PresetId::CodexM, Scale::Paper) => (17_050, 51, 60, 206_000, 0.003),
        (PresetId::CodexL, Scale::Quick) => (5_000, 40, 30, 40_000, 0.003),
        (PresetId::CodexL, Scale::Paper) => (50_000, 69, 90, 450_000, 0.003),
        (PresetId::WikiKg2, Scale::Quick) => (20_000, 80, 60, 140_000, 0.002),
        (PresetId::WikiKg2, Scale::Paper) => (120_000, 535, 200, 1_200_000, 0.002),
    };
    let (valid_fraction, test_fraction) = match id {
        // wikikg2 holds out comparatively more (Table 4: 429k + 598k of 17M).
        PresetId::WikiKg2 => (0.025, 0.035),
        _ => (0.05, 0.05),
    };
    SyntheticKgConfig {
        name: id.name().to_string(),
        num_entities: e,
        num_relations: r,
        num_types: t,
        num_triples: n,
        valid_fraction,
        test_fraction,
        entity_zipf: 0.8,
        relation_zipf: if id == PresetId::Yago3 { 0.6 } else { 0.9 },
        secondary_type_prob: 0.12,
        max_signature_types: 2,
        noise_rate: noise,
        cluster_count: 8,
        cluster_affinity: 0.85,
        seed: 0xC0DE ^ (id as u64) << 8 | scale_seed(scale),
    }
}

fn scale_seed(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 1,
        Scale::Paper => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn all_presets_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            PresetId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PresetId::ALL.len());
    }

    #[test]
    fn parse_roundtrip() {
        for p in PresetId::ALL {
            assert_eq!(PresetId::parse(p.name()), Some(p));
        }
        assert_eq!(PresetId::parse("ogbl-wikikg2"), Some(PresetId::WikiKg2));
        assert_eq!(PresetId::parse("nope"), None);
    }

    #[test]
    fn quick_presets_are_small() {
        for p in PresetId::ALL {
            let c = preset(p, Scale::Quick);
            assert!(c.num_entities <= 20_000);
            assert!(c.num_triples <= 150_000);
        }
    }

    #[test]
    fn paper_sizes_preserve_ordering() {
        // CoDEx-S < CoDEx-M < CoDEx-L < wikikg2 in |E|, as in Table 4.
        let s = preset(PresetId::CodexS, Scale::Paper).num_entities;
        let m = preset(PresetId::CodexM, Scale::Paper).num_entities;
        let l = preset(PresetId::CodexL, Scale::Paper).num_entities;
        let w = preset(PresetId::WikiKg2, Scale::Paper).num_entities;
        assert!(s < m && m < l && l < w);
    }

    #[test]
    fn codex_s_quick_generates() {
        let d = generate(&preset(PresetId::CodexS, Scale::Quick));
        assert_eq!(d.name, "codex-s-sim");
        assert!(d.num_triples() > 4_000);
        assert!(!d.types.is_empty());
    }
}
