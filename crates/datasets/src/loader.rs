//! TSV persistence: load/save splits and type assignments.
//!
//! Formats match the common KGC layout so real benchmark dumps (FB15k-237,
//! CoDEx, …) can be dropped in: one `head<TAB>relation<TAB>tail` triple per
//! line; types as `entity<TAB>type` per line.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use kg_core::{EntityId, KgError, Triple, TypeAssignment, TypeId, Vocab};

use crate::dataset::Dataset;

/// Label-space triples plus vocabularies, as parsed from TSV.
#[derive(Debug, Default)]
pub struct RawKg {
    /// Entity vocabulary.
    pub entities: Vocab,
    /// Relation vocabulary.
    pub relations: Vocab,
    /// Type vocabulary.
    pub types: Vocab,
    /// Parsed splits.
    pub train: Vec<Triple>,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
    /// (entity, type) pairs.
    pub type_pairs: Vec<(EntityId, TypeId)>,
}

impl RawKg {
    /// Parse one split from a TSV reader, interning labels.
    pub fn read_triples<R: Read>(&mut self, reader: R, split: SplitKind) -> Result<usize, KgError> {
        let buf = BufReader::new(reader);
        let mut count = 0usize;
        for (i, line) in buf.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
                (Some(h), Some(r), Some(t)) => (h, r, t),
                _ => {
                    return Err(KgError::Parse {
                        line: i + 1,
                        message: format!("expected 3 tab-separated fields, got {line:?}"),
                    })
                }
            };
            let triple = Triple::new(
                self.entities.intern(h),
                self.relations.intern(r),
                self.entities.intern(t),
            );
            match split {
                SplitKind::Train => self.train.push(triple),
                SplitKind::Valid => self.valid.push(triple),
                SplitKind::Test => self.test.push(triple),
            }
            count += 1;
        }
        Ok(count)
    }

    /// Parse `entity<TAB>type` pairs.
    pub fn read_types<R: Read>(&mut self, reader: R) -> Result<usize, KgError> {
        let buf = BufReader::new(reader);
        let mut count = 0usize;
        for (i, line) in buf.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (e, t) = match (parts.next(), parts.next()) {
                (Some(e), Some(t)) => (e, t),
                _ => {
                    return Err(KgError::Parse {
                        line: i + 1,
                        message: "expected 2 tab-separated fields".into(),
                    })
                }
            };
            let e = EntityId(self.entities.intern(e));
            let t = TypeId(self.types.intern(t));
            self.type_pairs.push((e, t));
            count += 1;
        }
        Ok(count)
    }

    /// Finalise into a [`Dataset`].
    pub fn into_dataset(self, name: impl Into<String>) -> Dataset {
        let num_entities = self.entities.len();
        let num_relations = self.relations.len();
        let types =
            TypeAssignment::from_pairs(self.type_pairs, num_entities, self.types.len().max(1));
        Dataset::new(
            name,
            self.train,
            self.valid,
            self.test,
            types,
            None,
            num_entities,
            num_relations,
        )
    }
}

/// Which split a TSV file belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitKind {
    /// Training split.
    Train,
    /// Validation split.
    Valid,
    /// Test split.
    Test,
}

/// Load a dataset from a directory containing `train.tsv`, `valid.tsv`,
/// `test.tsv` and optionally `types.tsv`.
pub fn load_dir(dir: &Path, name: &str) -> Result<Dataset, KgError> {
    let mut raw = RawKg::default();
    raw.read_triples(std::fs::File::open(dir.join("train.tsv"))?, SplitKind::Train)?;
    raw.read_triples(std::fs::File::open(dir.join("valid.tsv"))?, SplitKind::Valid)?;
    raw.read_triples(std::fs::File::open(dir.join("test.tsv"))?, SplitKind::Test)?;
    let types_path = dir.join("types.tsv");
    if types_path.exists() {
        raw.read_types(std::fs::File::open(types_path)?)?;
    }
    Ok(raw.into_dataset(name))
}

/// Save a dataset to a directory as `train.tsv`, `valid.tsv`, `test.tsv`,
/// `types.tsv` with generated labels (`e{i}` / `r{i}` / `type{i}`).
pub fn save_dir(dataset: &Dataset, dir: &Path) -> Result<(), KgError> {
    std::fs::create_dir_all(dir)?;
    let write_split =
        |path: &Path, triples: &mut dyn Iterator<Item = Triple>| -> Result<(), KgError> {
            let mut w = BufWriter::new(std::fs::File::create(path)?);
            for t in triples {
                writeln!(w, "e{}\tr{}\te{}", t.head.0, t.relation.0, t.tail.0)?;
            }
            w.flush()?;
            Ok(())
        };
    write_split(&dir.join("train.tsv"), &mut dataset.train.triples().iter().copied())?;
    write_split(&dir.join("valid.tsv"), &mut dataset.valid.iter().copied())?;
    write_split(&dir.join("test.tsv"), &mut dataset.test.iter().copied())?;
    let mut w = BufWriter::new(std::fs::File::create(dir.join("types.tsv"))?);
    for e in 0..dataset.num_entities() {
        for t in dataset.types.types_of(EntityId::from_usize(e)) {
            writeln!(w, "e{e}\ttype{t}")?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triples_from_tsv() {
        let mut raw = RawKg::default();
        let data = "paris\tcapitalOf\tfrance\nberlin\tcapitalOf\tgermany\n\n# comment\n";
        let n = raw.read_triples(data.as_bytes(), SplitKind::Train).unwrap();
        assert_eq!(n, 2);
        assert_eq!(raw.entities.len(), 4);
        assert_eq!(raw.relations.len(), 1);
        assert_eq!(raw.train[0], Triple::new(0, 0, 1));
    }

    #[test]
    fn parse_error_reports_line() {
        let mut raw = RawKg::default();
        let err = raw.read_triples("a\tb\n".as_bytes(), SplitKind::Test).unwrap_err();
        match err {
            KgError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_types() {
        let mut raw = RawKg::default();
        raw.read_triples("a\tr\tb\n".as_bytes(), SplitKind::Train).unwrap();
        let n = raw.read_types("a\tcity\nb\tcountry\n".as_bytes()).unwrap();
        assert_eq!(n, 2);
        let d = raw.into_dataset("x");
        assert_eq!(d.types.num_types(), 2);
        assert!(d.types.has_type(EntityId(0), TypeId(0)));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let cfg = crate::generator::SyntheticKgConfig {
            num_entities: 50,
            num_relations: 4,
            num_types: 3,
            num_triples: 300,
            ..Default::default()
        };
        let d = crate::generator::generate(&cfg);
        let dir = std::env::temp_dir().join(format!("kgeval-loader-test-{}", std::process::id()));
        save_dir(&d, &dir).unwrap();
        let loaded = load_dir(&dir, "roundtrip").unwrap();
        assert_eq!(loaded.train.len(), d.train.len());
        assert_eq!(loaded.valid.len(), d.valid.len());
        assert_eq!(loaded.test.len(), d.test.len());
        assert_eq!(loaded.types.num_assignments(), d.types.num_assignments());
        std::fs::remove_dir_all(dir).ok();
    }
}
