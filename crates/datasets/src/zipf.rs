//! Zipf-weighted index sampling via cumulative-weight binary search.

use rand::Rng;

/// Samples indices `0..n` with probability ∝ `(i+1)^(-alpha)`.
///
/// Knowledge-graph entity popularity and relation frequency are famously
/// heavy-tailed; `alpha = 0` degrades to uniform.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` items with exponent `alpha ≥ 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-alpha);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is over zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;

    #[test]
    fn uniform_when_alpha_zero() {
        let s = ZipfSampler::new(4, 0.0);
        let mut rng = seeded_rng(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "count {c}");
        }
    }

    #[test]
    fn skewed_when_alpha_positive() {
        let s = ZipfSampler::new(100, 1.2);
        let mut rng = seeded_rng(2);
        let mut first = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if s.sample(&mut rng) == 0 {
                first += 1;
            }
        }
        // Item 0 has by far the largest mass under Zipf(1.2).
        assert!(first > n / 10, "first item drawn only {first} times");
    }

    #[test]
    fn samples_in_range() {
        let s = ZipfSampler::new(7, 0.7);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_item() {
        let s = ZipfSampler::new(1, 1.0);
        let mut rng = seeded_rng(4);
        assert_eq!(s.sample(&mut rng), 0);
        assert_eq!(s.len(), 1);
    }
}
