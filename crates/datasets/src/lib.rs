//! # kg-datasets
//!
//! Workload substrate: a synthetic *typed* knowledge-graph generator with
//! presets mirroring the seven benchmarks of the paper (FB15k, FB15k-237,
//! YAGO3-10, CoDEx-S/M/L, ogbl-wikikg2), plus TSV loading/saving for real
//! data, train/valid/test splitting, and Table-4 statistics.
//!
//! The generator reproduces the structural properties the paper's results
//! depend on: entities carry types, relations have typed domain/range
//! signatures and cardinality classes, entity popularity and relation
//! frequency are Zipf-distributed, and a small noise rate produces
//! schema-violating triples (the source of the paper's "false easy
//! negatives", Table 2/Table 10).

// Grown, not assumed: kg-lint (KL002/KL003) audits the crates that *do*
// need unsafe; everything else proves it needs none at compile time.
#![forbid(unsafe_code)]

pub mod dataset;
pub mod generator;
pub mod loader;
pub mod noise;
pub mod presets;
pub mod schema;
pub mod split;
pub mod statistics;
pub mod zipf;

pub use dataset::Dataset;
pub use generator::{generate, SyntheticKgConfig};
pub use presets::{preset, PresetId, Scale};
pub use schema::{Cardinality, KgSchema, RelationSchema};
pub use statistics::DatasetStatistics;
