//! Synthetic typed knowledge-graph generator.
//!
//! The generator draws a typed ontology (types with Zipf sizes, relations
//! with typed domain/range signatures, cardinality classes and Zipf
//! frequency weights), then samples triples respecting that ontology except
//! for a configurable rate of schema-violating noise. The resulting graphs
//! exhibit the two properties the paper's analysis rests on:
//!
//! * uniformly sampled negatives are overwhelmingly *easy* (type-violating),
//! * within-domain negatives are *hard* (the model must actually order them).

use kg_core::fxhash::FxHashSet;
use kg_core::sample::seeded_rng;
use kg_core::{EntityId, Triple, TypeAssignment, TypeId};
use rand::Rng;

use crate::dataset::Dataset;
use crate::schema::{Cardinality, KgSchema, RelationSchema};
use crate::split;
use crate::zipf::ZipfSampler;

/// Configuration of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticKgConfig {
    /// Dataset name.
    pub name: String,
    /// Number of entities `|E|`.
    pub num_entities: usize,
    /// Number of relations `|R|`.
    pub num_relations: usize,
    /// Number of entity types `|T|`.
    pub num_types: usize,
    /// Target number of distinct triples across all splits.
    pub num_triples: usize,
    /// Fraction of triples held out for validation.
    pub valid_fraction: f64,
    /// Fraction of triples held out for test.
    pub test_fraction: f64,
    /// Zipf exponent of within-pool entity popularity.
    pub entity_zipf: f64,
    /// Zipf exponent of relation frequency.
    pub relation_zipf: f64,
    /// Probability an entity carries a secondary type.
    pub secondary_type_prob: f64,
    /// Maximum number of types per domain/range signature.
    pub max_signature_types: usize,
    /// Probability a triple ignores the schema entirely (noise).
    pub noise_rate: f64,
    /// Number of latent "affinity clusters" entities belong to. Tails are
    /// preferentially drawn from the cluster determined by the head's
    /// cluster and the relation, giving models a learnable `(h, r) → t`
    /// signal beyond tail popularity (real KGs are strongly compositional;
    /// without this the best achievable MRR is just popularity ranking).
    pub cluster_count: usize,
    /// Probability a tail is drawn from the preferred cluster.
    pub cluster_affinity: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for SyntheticKgConfig {
    fn default() -> Self {
        SyntheticKgConfig {
            name: "synthetic".into(),
            num_entities: 1000,
            num_relations: 20,
            num_types: 10,
            num_triples: 10_000,
            valid_fraction: 0.05,
            test_fraction: 0.05,
            entity_zipf: 0.8,
            relation_zipf: 0.9,
            secondary_type_prob: 0.25,
            max_signature_types: 2,
            noise_rate: 0.003,
            cluster_count: 8,
            cluster_affinity: 0.85,
            seed: 42,
        }
    }
}

/// Generate a dataset from `config`.
pub fn generate(config: &SyntheticKgConfig) -> Dataset {
    assert!(config.num_entities >= config.num_types, "need at least one entity per type");
    assert!(config.num_types >= 1 && config.num_relations >= 1);
    assert!(config.valid_fraction + config.test_fraction < 1.0);
    let mut rng = seeded_rng(config.seed);

    // 1. Partition entities into primary types with Zipf-ish sizes.
    let type_sizes = partition_sizes(config.num_entities, config.num_types);
    let mut type_pairs: Vec<(EntityId, TypeId)> = Vec::with_capacity(config.num_entities * 2);
    let mut primary_of = vec![TypeId(0); config.num_entities];
    {
        let mut next = 0usize;
        for (t, &sz) in type_sizes.iter().enumerate() {
            for _ in 0..sz {
                let e = EntityId::from_usize(next);
                primary_of[next] = TypeId(t as u32);
                type_pairs.push((e, TypeId(t as u32)));
                next += 1;
            }
        }
        debug_assert_eq!(next, config.num_entities);
    }
    // Secondary types connect type clusters (needed for L-WD co-occurrence).
    #[allow(clippy::needless_range_loop)]
    if config.num_types > 1 {
        for e in 0..config.num_entities {
            if rng.gen_bool(config.secondary_type_prob) {
                let mut t = rng.gen_range(0..config.num_types as u32);
                if TypeId(t) == primary_of[e] {
                    t = (t + 1) % config.num_types as u32;
                }
                type_pairs.push((EntityId::from_usize(e), TypeId(t)));
            }
        }
    }
    let types = TypeAssignment::from_pairs(type_pairs, config.num_entities, config.num_types);

    // 2. Relation schemas.
    let schema = draw_schema(config, &mut rng);

    // 2b. Affinity clusters: the learnable (h, r) → t signal.
    let cluster_count = config.cluster_count.max(1);
    let cluster_of: Vec<u16> =
        (0..config.num_entities).map(|_| rng.gen_range(0..cluster_count as u16)).collect();

    // 3. Per-relation candidate pools with popularity samplers.
    let pools: Vec<(Pool, Pool)> = schema
        .relations
        .iter()
        .map(|rs| {
            (
                Pool::from_types(
                    &types,
                    &rs.domain_types,
                    config.entity_zipf,
                    &cluster_of,
                    cluster_count,
                ),
                Pool::from_types(
                    &types,
                    &rs.range_types,
                    config.entity_zipf,
                    &cluster_of,
                    cluster_count,
                ),
            )
        })
        .collect();

    // 4. Sample triples.
    let rel_sampler = ZipfSampler::new(config.num_relations, config.relation_zipf);
    let mut triples: Vec<Triple> = Vec::with_capacity(config.num_triples);
    let mut seen: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    let mut used_heads: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut used_tails: FxHashSet<(u32, u32)> = FxHashSet::default();
    let max_attempts = config.num_triples.saturating_mul(30).max(1000);
    let mut attempts = 0usize;
    while triples.len() < config.num_triples && attempts < max_attempts {
        attempts += 1;
        let r = rel_sampler.sample(&mut rng) as u32;
        let (h, t) = if rng.gen_bool(config.noise_rate) {
            // Schema-violating noise: uniform over the whole universe.
            (
                rng.gen_range(0..config.num_entities as u32),
                rng.gen_range(0..config.num_entities as u32),
            )
        } else {
            let (dom, rng_pool) = &pools[r as usize];
            let h = dom.sample(&mut rng).0;
            // Preferred tail cluster: a deterministic function of the head's
            // cluster and the relation (what a bilinear model can learn).
            let target = (cluster_of[h as usize] as usize + 7 * r as usize + 3) % cluster_count;
            let t = if rng.gen_bool(config.cluster_affinity) {
                rng_pool
                    .sample_cluster(target, &mut rng)
                    .unwrap_or_else(|| rng_pool.sample(&mut rng).0)
            } else {
                rng_pool.sample(&mut rng).0
            };
            (h, t)
        };
        if h == t {
            continue;
        }
        let card = schema.relations[r as usize].cardinality;
        if !card.head_repeatable() && used_heads.contains(&(r, h)) {
            continue;
        }
        if !card.tail_repeatable() && used_tails.contains(&(r, t)) {
            continue;
        }
        if !seen.insert((h, r, t)) {
            continue;
        }
        if !card.head_repeatable() {
            used_heads.insert((r, h));
        }
        if !card.tail_repeatable() {
            used_tails.insert((r, t));
        }
        triples.push(Triple::new(h, r, t));
    }

    // 5. Split with transductive fix-up.
    let (train, valid, test) =
        split::split_transductive(triples, config.valid_fraction, config.test_fraction, &mut rng);

    Dataset::new(
        config.name.clone(),
        train,
        valid,
        test,
        types,
        Some(schema),
        config.num_entities,
        config.num_relations,
    )
}

/// Zipf-ish partition of `n` entities into `k` type sizes (each ≥ 1).
fn partition_sizes(n: usize, k: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-0.7)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((w / total) * n as f64).floor() as usize).collect();
    for s in sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    // Adjust the largest bucket so sizes sum to exactly n.
    let sum: usize = sizes.iter().sum();
    if sum < n {
        sizes[0] += n - sum;
    } else {
        let mut excess = sum - n;
        for s in sizes.iter_mut() {
            let take = excess.min(s.saturating_sub(1));
            *s -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
        assert_eq!(excess, 0, "cannot partition {n} entities into {k} nonempty types");
    }
    sizes
}

fn draw_schema<R: Rng>(config: &SyntheticKgConfig, rng: &mut R) -> KgSchema {
    let mut relations = Vec::with_capacity(config.num_relations);
    for i in 0..config.num_relations {
        let cardinality = match rng.gen_range(0..100) {
            0..=9 => Cardinality::OneToOne,
            10..=24 => Cardinality::OneToMany,
            25..=39 => Cardinality::ManyToOne,
            _ => Cardinality::ManyToMany,
        };
        relations.push(RelationSchema {
            domain_types: draw_types(config, rng),
            range_types: draw_types(config, rng),
            cardinality,
            weight: ((i + 1) as f64).powf(-config.relation_zipf),
        });
    }
    KgSchema { num_types: config.num_types, relations }
}

fn draw_types<R: Rng>(config: &SyntheticKgConfig, rng: &mut R) -> Vec<TypeId> {
    let k = rng.gen_range(1..=config.max_signature_types.min(config.num_types));
    let mut out: Vec<TypeId> = Vec::with_capacity(k);
    while out.len() < k {
        let t = TypeId(rng.gen_range(0..config.num_types as u32));
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out.sort_unstable();
    out
}

/// An entity pool with a popularity sampler and per-cluster sub-pools.
struct Pool {
    entities: Vec<EntityId>,
    sampler: ZipfSampler,
    /// Per affinity cluster: pool-local member entities and their sampler.
    clusters: Vec<Option<(Vec<u32>, ZipfSampler)>>,
}

impl Pool {
    fn from_types(
        types: &TypeAssignment,
        signature: &[TypeId],
        alpha: f64,
        cluster_of: &[u16],
        cluster_count: usize,
    ) -> Self {
        let mut entities: Vec<EntityId> = Vec::new();
        for &t in signature {
            entities.extend_from_slice(types.entities_of(t));
        }
        entities.sort_unstable();
        entities.dedup();
        assert!(!entities.is_empty(), "empty candidate pool for signature {signature:?}");
        let sampler = ZipfSampler::new(entities.len(), alpha);

        let mut members: Vec<Vec<u32>> = vec![Vec::new(); cluster_count];
        for &e in &entities {
            members[cluster_of[e.index()] as usize].push(e.0);
        }
        let clusters = members
            .into_iter()
            .map(|m| {
                if m.is_empty() {
                    None
                } else {
                    let s = ZipfSampler::new(m.len(), alpha);
                    Some((m, s))
                }
            })
            .collect();
        Pool { entities, sampler, clusters }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> (u32, usize) {
        let i = self.sampler.sample(rng);
        (self.entities[i].0, i)
    }

    /// Draw from the pool members of `cluster` (None if the cluster has no
    /// members in this pool).
    fn sample_cluster<R: Rng>(&self, cluster: usize, rng: &mut R) -> Option<u32> {
        self.clusters[cluster].as_ref().map(|(m, s)| m[s.sample(rng)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticKgConfig {
        SyntheticKgConfig {
            name: "test".into(),
            num_entities: 300,
            num_relations: 8,
            num_types: 5,
            num_triples: 2000,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_counts() {
        let d = generate(&small_config());
        assert_eq!(d.num_entities(), 300);
        assert_eq!(d.num_relations(), 8);
        // Cardinality constraints may cap the total slightly below target.
        assert!(d.num_triples() > 1500, "only {} triples", d.num_triples());
        assert!(!d.valid.is_empty() && !d.test.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.train.triples(), b.train.triples());
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = generate(&cfg);
        assert_ne!(a.train.triples(), b.train.triples());
    }

    #[test]
    fn every_entity_has_a_type() {
        let d = generate(&small_config());
        for e in 0..d.num_entities() {
            assert!(!d.types.types_of(EntityId::from_usize(e)).is_empty());
        }
    }

    #[test]
    fn most_triples_respect_schema() {
        let d = generate(&small_config());
        let schema = d.schema.as_ref().unwrap();
        let mut violations = 0usize;
        let mut total = 0usize;
        for t in d.train.triples() {
            total += 1;
            let rs = &schema.relations[t.relation.index()];
            let head_ok = rs.domain_types.iter().any(|&ty| d.types.has_type(t.head, ty));
            let tail_ok = rs.range_types.iter().any(|&ty| d.types.has_type(t.tail, ty));
            if !head_ok || !tail_ok {
                violations += 1;
            }
        }
        // Default noise rate is 0.3 %; allow some slack.
        assert!(violations * 100 < total * 3, "{violations}/{total} violations");
        assert!(violations > 0 || total < 100, "noise should produce some violations");
    }

    #[test]
    fn test_entities_and_relations_seen_in_train() {
        let d = generate(&small_config());
        let mut seen_e = vec![false; d.num_entities()];
        let mut seen_r = vec![false; d.num_relations()];
        for t in d.train.triples() {
            seen_e[t.head.index()] = true;
            seen_e[t.tail.index()] = true;
            seen_r[t.relation.index()] = true;
        }
        for t in d.valid.iter().chain(&d.test) {
            assert!(seen_e[t.head.index()], "unseen head {:?}", t.head);
            assert!(seen_e[t.tail.index()], "unseen tail {:?}", t.tail);
            assert!(seen_r[t.relation.index()], "unseen relation {:?}", t.relation);
        }
    }

    #[test]
    fn one_to_one_relations_have_unique_slots() {
        let d = generate(&small_config());
        let schema = d.schema.as_ref().unwrap();
        for (r, rs) in schema.relations.iter().enumerate() {
            if rs.cardinality != Cardinality::OneToOne {
                continue;
            }
            let rel = kg_core::RelationId(r as u32);
            // Noise triples are exempt from cardinality, so near-uniqueness:
            let triples = d.train.triples_of(rel);
            let heads: FxHashSet<u32> = triples.iter().map(|t| t.head.0).collect();
            assert!(heads.len() + 5 >= triples.len(), "relation {r} heads massively repeated");
        }
    }

    #[test]
    fn partition_sizes_sums_and_positive() {
        let sizes = partition_sizes(100, 7);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s >= 1));
        // First (most popular) type is the largest.
        assert!(sizes[0] >= sizes[6]);
    }

    #[test]
    fn splits_are_disjoint() {
        let d = generate(&small_config());
        let train: FxHashSet<Triple> = d.train.triples().iter().copied().collect();
        for t in d.valid.iter().chain(&d.test) {
            assert!(!train.contains(t));
        }
        let valid: FxHashSet<Triple> = d.valid.iter().copied().collect();
        for t in &d.test {
            assert!(!valid.contains(t));
        }
    }
}
