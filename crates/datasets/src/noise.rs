//! Ontology-noise injection.
//!
//! §4.1 of the paper notes that even when an ontology provides domains and
//! ranges directly, real type systems are "often incomplete and noisy", and
//! simulates that. These helpers degrade a [`TypeAssignment`] accordingly:
//! dropping a fraction of true assignments (incompleteness) and adding
//! spurious ones (noise).

use kg_core::sample::seeded_rng;
use kg_core::{EntityId, TypeAssignment, TypeId};
use rand::Rng;

/// Produce a degraded copy of `types`: each true assignment is kept with
/// probability `1 − drop_rate`; `spurious_rate · |TS|` uniformly random
/// false assignments are added. Entities left typeless by dropping keep one
/// of their original types so every entity remains typed.
pub fn degrade_types(
    types: &TypeAssignment,
    drop_rate: f64,
    spurious_rate: f64,
    seed: u64,
) -> TypeAssignment {
    assert!((0.0..=1.0).contains(&drop_rate));
    assert!(spurious_rate >= 0.0);
    let mut rng = seeded_rng(seed);
    let num_entities = types.num_entities();
    let num_types = types.num_types();
    let mut pairs: Vec<(EntityId, TypeId)> = Vec::with_capacity(types.num_assignments());

    for e in 0..num_entities {
        let entity = EntityId::from_usize(e);
        let original = types.types_of(entity);
        if original.is_empty() {
            continue;
        }
        let mut kept_any = false;
        for &t in original {
            if !rng.gen_bool(drop_rate) {
                pairs.push((entity, t));
                kept_any = true;
            }
        }
        if !kept_any {
            // Keep one type so the entity does not vanish from the ontology.
            let keep = original[rng.gen_range(0..original.len())];
            pairs.push((entity, keep));
        }
    }

    if num_types > 0 {
        let spurious = (types.num_assignments() as f64 * spurious_rate) as usize;
        for _ in 0..spurious {
            let e = EntityId(rng.gen_range(0..num_entities as u32));
            let t = TypeId(rng.gen_range(0..num_types as u32));
            pairs.push((e, t));
        }
    }

    TypeAssignment::from_pairs(pairs, num_entities, num_types)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TypeAssignment {
        let mut pairs = Vec::new();
        for e in 0..100u32 {
            pairs.push((EntityId(e), TypeId(e % 5)));
            if e % 3 == 0 {
                pairs.push((EntityId(e), TypeId((e + 1) % 5)));
            }
        }
        TypeAssignment::from_pairs(pairs, 100, 5)
    }

    #[test]
    fn zero_noise_is_identity_in_counts() {
        let t = base();
        let d = degrade_types(&t, 0.0, 0.0, 1);
        assert_eq!(d.num_assignments(), t.num_assignments());
        for e in 0..100 {
            assert_eq!(d.types_of(EntityId(e)), t.types_of(EntityId(e)));
        }
    }

    #[test]
    fn dropping_reduces_assignments_but_keeps_entities_typed() {
        let t = base();
        let d = degrade_types(&t, 0.5, 0.0, 2);
        assert!(d.num_assignments() < t.num_assignments());
        for e in 0..100 {
            assert!(!d.types_of(EntityId(e)).is_empty(), "entity {e} lost all types");
        }
    }

    #[test]
    fn spurious_adds_assignments() {
        let t = base();
        let d = degrade_types(&t, 0.0, 0.5, 3);
        assert!(d.num_assignments() > t.num_assignments());
    }

    #[test]
    fn deterministic_in_seed() {
        let t = base();
        let a = degrade_types(&t, 0.3, 0.2, 9);
        let b = degrade_types(&t, 0.3, 0.2, 9);
        assert_eq!(a.num_assignments(), b.num_assignments());
        for e in 0..100 {
            assert_eq!(a.types_of(EntityId(e)), b.types_of(EntityId(e)));
        }
    }
}
