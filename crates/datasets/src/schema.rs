//! Typed relation schemas: the ontology the synthetic generator follows.

use kg_core::TypeId;

/// Relation cardinality classes (§2 of the paper discusses why 1-1 / 1-M /
/// M-1 relations break the PT recommender: their correct candidates are
/// mostly unseen).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cardinality {
    /// Each head has at most one tail and vice versa (e.g. `isMarriedTo`).
    OneToOne,
    /// Each tail has at most one head (e.g. `containsCity` inverse view).
    OneToMany,
    /// Each head has at most one tail (e.g. `bornIn`).
    ManyToOne,
    /// Unconstrained (e.g. `actedIn`).
    ManyToMany,
}

impl Cardinality {
    /// Whether a head may appear in more than one triple of the relation.
    pub fn head_repeatable(self) -> bool {
        matches!(self, Cardinality::OneToMany | Cardinality::ManyToMany)
    }

    /// Whether a tail may appear in more than one triple of the relation.
    pub fn tail_repeatable(self) -> bool {
        matches!(self, Cardinality::ManyToOne | Cardinality::ManyToMany)
    }
}

/// A relation's typed signature.
#[derive(Clone, Debug)]
pub struct RelationSchema {
    /// Types whose entities may serve as heads.
    pub domain_types: Vec<TypeId>,
    /// Types whose entities may serve as tails.
    pub range_types: Vec<TypeId>,
    /// Cardinality class.
    pub cardinality: Cardinality,
    /// Relative frequency weight (how often triples of this relation occur).
    pub weight: f64,
}

/// The full ontology: one schema per relation plus the type universe size.
#[derive(Clone, Debug)]
pub struct KgSchema {
    /// Number of entity types.
    pub num_types: usize,
    /// Per-relation signatures, indexed by relation id.
    pub relations: Vec<RelationSchema>,
}

impl KgSchema {
    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_repeatability() {
        assert!(!Cardinality::OneToOne.head_repeatable());
        assert!(!Cardinality::OneToOne.tail_repeatable());
        assert!(Cardinality::OneToMany.head_repeatable());
        assert!(!Cardinality::OneToMany.tail_repeatable());
        assert!(!Cardinality::ManyToOne.head_repeatable());
        assert!(Cardinality::ManyToOne.tail_repeatable());
        assert!(Cardinality::ManyToMany.head_repeatable());
        assert!(Cardinality::ManyToMany.tail_repeatable());
    }

    #[test]
    fn schema_counts() {
        let s = KgSchema {
            num_types: 3,
            relations: vec![RelationSchema {
                domain_types: vec![TypeId(0)],
                range_types: vec![TypeId(1), TypeId(2)],
                cardinality: Cardinality::ManyToMany,
                weight: 1.0,
            }],
        };
        assert_eq!(s.num_relations(), 1);
        assert_eq!(s.relations[0].range_types.len(), 2);
    }
}
