//! Table 4: dataset statistics.

use kg_core::fxhash::FxHashSet;
use kg_core::Triple;

use crate::dataset::Dataset;

/// One row of Table 4.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStatistics {
    /// Dataset name.
    pub name: String,
    /// `|E|` — entities.
    pub num_entities: usize,
    /// `|R|` — relations.
    pub num_relations: usize,
    /// `|T|` — entity types.
    pub num_types: usize,
    /// `|TS|` — (entity, type) assignments.
    pub num_type_assignments: usize,
    /// Train / valid / test triple counts.
    pub train: usize,
    /// Validation triples.
    pub valid: usize,
    /// Test triples.
    pub test: usize,
    /// Distinct `(h,r)` + `(r,t)` pairs in train.
    pub train_pairs: usize,
    /// Distinct `(h,r)` + `(r,t)` pairs in test.
    pub test_pairs: usize,
    /// Distinct relations appearing in test (`(·,r,·)`-instances, Table 3).
    pub test_relations: usize,
}

/// Count distinct `(h,r)` plus distinct `(r,t)` pairs in a triple slice.
pub fn distinct_pairs(triples: &[Triple]) -> usize {
    let mut hr: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut rt: FxHashSet<(u32, u32)> = FxHashSet::default();
    for t in triples {
        hr.insert((t.head.0, t.relation.0));
        rt.insert((t.relation.0, t.tail.0));
    }
    hr.len() + rt.len()
}

impl DatasetStatistics {
    /// Compute the statistics of `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let mut test_rels: FxHashSet<u32> = FxHashSet::default();
        for t in &dataset.test {
            test_rels.insert(t.relation.0);
        }
        DatasetStatistics {
            name: dataset.name.clone(),
            num_entities: dataset.num_entities(),
            num_relations: dataset.num_relations(),
            num_types: dataset.types.num_types(),
            num_type_assignments: dataset.types.num_assignments(),
            train: dataset.train.len(),
            valid: dataset.valid.len(),
            test: dataset.test.len(),
            train_pairs: distinct_pairs(dataset.train.triples()),
            test_pairs: distinct_pairs(&dataset.test),
            test_relations: test_rels.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::TypeAssignment;

    #[test]
    fn distinct_pairs_counts_both_directions() {
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2), // same (h,r), new (r,t)
            Triple::new(1, 0, 1), // new (h,r), same (r,t)
        ];
        // (h,r): {(0,0),(1,0)} = 2; (r,t): {(0,1),(0,2)} = 2.
        assert_eq!(distinct_pairs(&triples), 4);
        assert_eq!(distinct_pairs(&[]), 0);
    }

    #[test]
    fn compute_on_tiny_dataset() {
        let d = Dataset::new(
            "t",
            vec![Triple::new(0, 0, 1)],
            vec![Triple::new(1, 0, 2)],
            vec![Triple::new(2, 1, 3), Triple::new(0, 1, 3)],
            TypeAssignment::from_pairs(vec![(kg_core::EntityId(0), kg_core::TypeId(0))], 4, 1),
            None,
            4,
            2,
        );
        let s = DatasetStatistics::compute(&d);
        assert_eq!(s.train, 1);
        assert_eq!(s.valid, 1);
        assert_eq!(s.test, 2);
        assert_eq!(s.num_type_assignments, 1);
        assert_eq!(s.test_relations, 1);
        assert_eq!(s.test_pairs, 2 + 1); // (2,1),(0,1) heads; (1,3) tail
    }
}
