//! Property-based tests for the dataset substrate.

use kg_core::fxhash::FxHashSet;
use kg_core::sample::seeded_rng;
use kg_core::Triple;
use kg_datasets::split::split_transductive;
use kg_datasets::zipf::ZipfSampler;
use kg_datasets::{generate, SyntheticKgConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_partitions_and_stays_transductive(
        raw in proptest::collection::vec((0u32..30, 0u32..4, 0u32..30), 1..150),
        valid_frac in 0.0f64..0.3,
        test_frac in 0.0f64..0.3,
        seed in 0u64..50,
    ) {
        let mut triples: Vec<Triple> = raw.iter().map(|&(h, r, t)| Triple::new(h, r, t)).collect();
        triples.sort_unstable();
        triples.dedup();
        let n = triples.len();
        let (train, valid, test) =
            split_transductive(triples, valid_frac, test_frac, &mut seeded_rng(seed));
        prop_assert_eq!(train.len() + valid.len() + test.len(), n, "no triples lost");

        let mut seen_e: FxHashSet<u32> = FxHashSet::default();
        let mut seen_r: FxHashSet<u32> = FxHashSet::default();
        for t in &train {
            seen_e.insert(t.head.0);
            seen_e.insert(t.tail.0);
            seen_r.insert(t.relation.0);
        }
        for t in valid.iter().chain(&test) {
            prop_assert!(seen_e.contains(&t.head.0));
            prop_assert!(seen_e.contains(&t.tail.0));
            prop_assert!(seen_r.contains(&t.relation.0));
        }
    }

    #[test]
    fn generator_invariants(
        entities in 50usize..250,
        relations in 2usize..8,
        types in 2usize..10,
        seed in 0u64..20,
    ) {
        let cfg = SyntheticKgConfig {
            num_entities: entities,
            num_relations: relations,
            num_types: types,
            num_triples: entities * 6,
            seed,
            ..Default::default()
        };
        let d = generate(&cfg);
        // Ids in range.
        for t in d.train.triples().iter().chain(&d.valid).chain(&d.test) {
            prop_assert!(t.head.index() < entities);
            prop_assert!(t.tail.index() < entities);
            prop_assert!(t.relation.index() < relations);
            prop_assert!(t.head != t.tail || cfg.noise_rate > 0.0);
        }
        // Every entity typed; assignments within bounds.
        for e in 0..entities {
            let ts = d.types.types_of(kg_core::EntityId(e as u32));
            prop_assert!(!ts.is_empty());
            prop_assert!(ts.iter().all(|t| t.index() < types));
        }
        // Splits disjoint.
        let train: FxHashSet<Triple> = d.train.triples().iter().copied().collect();
        for t in d.valid.iter().chain(&d.test) {
            prop_assert!(!train.contains(t));
        }
        // Filter index covers everything.
        for t in d.train.triples().iter().chain(&d.valid).chain(&d.test) {
            prop_assert!(d.filter.contains(*t));
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..500, alpha in 0.0f64..2.0, seed in 0u64..20) {
        let s = ZipfSampler::new(n, alpha);
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            prop_assert!(s.sample(&mut rng) < n);
        }
    }

    #[test]
    fn zipf_mass_is_monotone(n in 10usize..100, seed in 0u64..10) {
        // With alpha > 0, earlier items should be sampled at least as often
        // (statistically) as much later items.
        let s = ZipfSampler::new(n, 1.2);
        let mut rng = seeded_rng(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..5000 {
            counts[s.sample(&mut rng)] += 1;
        }
        let first_quarter: usize = counts[..n / 4].iter().sum();
        let last_quarter: usize = counts[n - n / 4..].iter().sum();
        prop_assert!(first_quarter > last_quarter, "{first_quarter} vs {last_quarter}");
    }
}
