//! Property-based tests for the model zoo: scorer consistency, loss
//! gradients, and training-step behaviour across random configurations.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use kg_models::loss::{loss_and_coeffs, sigmoid, softplus, LossKind};
use kg_models::{build_model, ModelKind};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::TransE),
        Just(ModelKind::DistMult),
        Just(ModelKind::ComplEx),
        Just(ModelKind::Rescal),
        Just(ModelKind::RotatE),
        Just(ModelKind::TuckEr),
        Just(ModelKind::ConvE),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    #[allow(clippy::needless_range_loop)] // dual-index loops
    fn scorers_agree_for_all_models(kind in kind_strategy(), seed in 0u64..50) {
        let n = 10usize;
        let dim = match kind {
            ModelKind::ConvE => 16,
            ModelKind::Rescal | ModelKind::TuckEr => 8,
            _ => 12,
        };
        let model = build_model(kind, n, 3, dim, seed);
        let mut tails = vec![0.0f32; n];
        let h = EntityId(2);
        let r = RelationId(1);
        model.score_tails(h, r, &mut tails);
        for t in 0..n {
            let s = model.score(h, r, EntityId(t as u32));
            prop_assert!((tails[t] - s).abs() < 1e-3,
                "{}: score_tails[{t}]={} score={}", kind.name(), tails[t], s);
            prop_assert!(s.is_finite());
        }
        // Candidate scorer consistent with the full head scorer.
        let mut heads = vec![0.0f32; n];
        let t = EntityId(7);
        model.score_heads(r, t, &mut heads);
        let cands: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let mut out = vec![0.0f32; n];
        model.score_head_candidates(r, t, &cands, &mut out);
        for i in 0..n {
            prop_assert!((heads[i] - out[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn ascent_step_increases_score_for_all_models(kind in kind_strategy(), seed in 0u64..20) {
        let dim = match kind {
            ModelKind::ConvE => 16,
            ModelKind::Rescal | ModelKind::TuckEr => 8,
            _ => 12,
        };
        let mut model = build_model(kind, 10, 3, dim, seed);
        let pos = Triple::new(1, 0, 6);
        // Score via the tail-side scorer (well-defined for reciprocal models).
        let mut scores = vec![0.0f32; 10];
        model.score_tails(pos.head, pos.relation, &mut scores);
        let before = scores[6];
        for _ in 0..3 {
            model.step_group(pos, QuerySide::Tail, &[pos.tail], &[-1.0], 0.05);
        }
        model.score_tails(pos.head, pos.relation, &mut scores);
        prop_assert!(scores[6] > before, "{}: {} -> {}", kind.name(), before, scores[6]);
    }

    #[test]
    fn zero_coefficients_are_a_noop(kind in kind_strategy(), seed in 0u64..20) {
        let dim = if kind == ModelKind::ConvE { 16 } else { 8 };
        let mut model = build_model(kind, 8, 2, dim, seed);
        let pos = Triple::new(0, 1, 5);
        let before = model.score(pos.head, pos.relation, pos.tail);
        model.step_group(pos, QuerySide::Tail, &[pos.tail, EntityId(3)], &[0.0, 0.0], 0.1);
        model.step_group(pos, QuerySide::Head, &[pos.head, EntityId(2)], &[0.0, 0.0], 0.1);
        let after = model.score(pos.head, pos.relation, pos.tail);
        prop_assert_eq!(before, after, "{}", kind.name());
    }

    #[test]
    fn logistic_loss_gradient_matches_finite_difference(
        scores in proptest::collection::vec(-5.0f32..5.0, 1..8),
    ) {
        let mut coeffs = vec![0.0f32; scores.len()];
        let base = loss_and_coeffs(LossKind::Logistic, 0.0, &scores, &mut coeffs);
        let eps = 1e-3f32;
        for i in 0..scores.len() {
            let mut bumped = scores.clone();
            bumped[i] += eps;
            let mut tmp = vec![0.0f32; scores.len()];
            let l = loss_and_coeffs(LossKind::Logistic, 0.0, &bumped, &mut tmp);
            let fd = (l - base) / eps;
            prop_assert!((fd - coeffs[i]).abs() < 0.02, "slot {i}: fd {fd} vs {}", coeffs[i]);
        }
    }

    #[test]
    fn loss_is_nonnegative_and_finite(
        scores in proptest::collection::vec(-30.0f32..30.0, 1..10),
        margin in 0.0f32..3.0,
    ) {
        let mut coeffs = vec![0.0f32; scores.len()];
        for kind in [LossKind::Logistic, LossKind::MarginRanking] {
            let l = loss_and_coeffs(kind, margin, &scores, &mut coeffs);
            prop_assert!(l >= 0.0 && l.is_finite());
            prop_assert!(coeffs.iter().all(|c| c.is_finite()));
            prop_assert!(coeffs[0] <= 0.0, "positive candidate is pushed up");
            prop_assert!(coeffs[1..].iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn sigmoid_softplus_relations(x in -40.0f32..40.0) {
        prop_assert!((0.0..=1.0).contains(&sigmoid(x)));
        prop_assert!(softplus(x) >= 0.0);
        prop_assert!(softplus(x) >= x, "softplus dominates identity");
        // d softplus/dx = sigmoid.
        let eps = 1e-2f32;
        if x.abs() < 15.0 {
            let fd = (softplus(x + eps) - softplus(x - eps)) / (2.0 * eps);
            prop_assert!((fd - sigmoid(x)).abs() < 1e-2);
        }
    }
}
