//! RotatE (Sun et al., 2019): relations are rotations in the complex plane,
//! `score(h,r,t) = −Σ_k |h_k · e^{iθ_k} − t_k|` (sum of complex moduli).
//!
//! Entity embeddings are complex (`[re…, im…]` layout, `m = dim/2` complex
//! dimensions); relation parameters are the `m` phases `θ`.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use rand::Rng;

use crate::embedding::EmbeddingTable;
use crate::model::{KgcModel, TrainableModel};

/// Guard against division by a zero modulus.
const MOD_EPS: f32 = 1e-9;

/// Rotation-based complex embedding model.
pub struct RotatE {
    entities: EmbeddingTable,
    /// Phase vectors θ, one row of length `dim/2` per relation.
    phases: EmbeddingTable,
    dim: usize,
    half: usize,
}

impl RotatE {
    /// New model; `dim` must be even.
    pub fn new<R: Rng>(num_entities: usize, num_relations: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim.is_multiple_of(2), "RotatE needs an even dimension");
        let half = dim / 2;
        RotatE {
            entities: EmbeddingTable::xavier(num_entities, dim, rng),
            phases: EmbeddingTable::uniform(num_relations, half, std::f32::consts::PI, rng),
            dim,
            half,
        }
    }

    /// Tail query from raw rows: the rotated head `h ∘ e^{iθ}` (complex
    /// layout; `th` holds the `dim/2` phases). Shared with the quantized
    /// serving wrapper.
    pub(crate) fn tail_query_into(he: &[f32], th: &[f32], q: &mut [f32]) {
        let m = q.len() / 2;
        for k in 0..m {
            let (c, s) = (th[k].cos(), th[k].sin());
            let (hr, hi) = (he[k], he[m + k]);
            q[k] = hr * c - hi * s;
            q[m + k] = hr * s + hi * c;
        }
    }

    /// Head query: `|h·e^{iθ} − t| = |h − t·e^{−iθ}|`, so the query is the
    /// counter-rotated tail.
    pub(crate) fn head_query_into(te: &[f32], th: &[f32], q: &mut [f32]) {
        let m = q.len() / 2;
        for k in 0..m {
            let (c, s) = (th[k].cos(), th[k].sin());
            let (tr, ti) = (te[k], te[m + k]);
            q[k] = tr * c + ti * s;
            q[m + k] = -tr * s + ti * c;
        }
    }

    /// `−Σ_k |q_k − e_k|` with complex moduli over the `[re…, im…]` layout.
    pub(crate) fn mod_distance_slices(q: &[f32], e: &[f32]) -> f32 {
        let m = q.len() / 2;
        let mut acc = 0.0f32;
        for k in 0..m {
            let dr = q[k] - e[k];
            let di = q[m + k] - e[m + k];
            acc += (dr * dr + di * di).sqrt();
        }
        -acc
    }

    fn tail_query(&self, h: EntityId, r: RelationId, q: &mut [f32]) {
        Self::tail_query_into(self.entities.row(h.index()), self.phases.row(r.index()), q);
    }

    fn head_query(&self, r: RelationId, t: EntityId, q: &mut [f32]) {
        Self::head_query_into(self.entities.row(t.index()), self.phases.row(r.index()), q);
    }

    fn mod_distance(&self, q: &[f32], e: &[f32]) -> f32 {
        Self::mod_distance_slices(q, e)
    }
}

impl KgcModel for RotatE {
    fn name(&self) -> &'static str {
        "RotatE"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.phases.count()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        self.mod_distance(&q, self.entities.row(t.index()))
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        for (e, o) in out.iter_mut().enumerate() {
            *o = self.mod_distance(&q, self.entities.row(e));
        }
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        for (e, o) in out.iter_mut().enumerate() {
            *o = self.mod_distance(&q, self.entities.row(e));
        }
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        for (o, e) in out.iter_mut().zip(range) {
            *o = self.mod_distance(&q, self.entities.row(e));
        }
    }

    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        for (o, e) in out.iter_mut().zip(range) {
            *o = self.mod_distance(&q, self.entities.row(e));
        }
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.mod_distance(&q, self.entities.row(c.index()));
        }
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.mod_distance(&q, self.entities.row(c.index()));
        }
    }
}

impl TrainableModel for RotatE {
    crate::impl_persistence_tables!(entities, phases);

    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    ) {
        let m = self.half;
        let d = self.dim;
        let context = side.context(pos);
        let r = pos.relation;
        let th: Vec<f32> = self.phases.row(r.index()).to_vec();
        let ctx: Vec<f32> = self.entities.row(context.index()).to_vec();

        let mut grad_ctx = vec![0.0f32; d];
        let mut grad_th = vec![0.0f32; m];
        let mut grad_cand = vec![0.0f32; d];

        for (&cand, &w) in candidates.iter().zip(coeffs) {
            if w == 0.0 {
                continue;
            }
            let ce: Vec<f32> = self.entities.row(cand.index()).to_vec();
            // Identify (h, t) for this candidate-completed triple.
            let (he, te): (&[f32], &[f32]) = match side {
                QuerySide::Tail => (&ctx, &ce),
                QuerySide::Head => (&ce, &ctx),
            };
            grad_cand.fill(0.0);
            for k in 0..m {
                let (c, s) = (th[k].cos(), th[k].sin());
                let (hr, hi) = (he[k], he[m + k]);
                let (tr, ti) = (te[k], te[m + k]);
                // u = h·e^{iθ} − t
                let rot_r = hr * c - hi * s;
                let rot_i = hr * s + hi * c;
                let ur = rot_r - tr;
                let ui = rot_i - ti;
                let modu = (ur * ur + ui * ui).sqrt().max(MOD_EPS);
                // score = −Σ |u| ⇒ ∂s/∂ur = −ur/|u|, etc.
                let gur = -ur / modu * w;
                let gui = -ui / modu * w;
                // Chain to h: ∂ur/∂hr = cos, ∂ui/∂hr = sin; ∂ur/∂hi = −sin, ∂ui/∂hi = cos.
                let ghr = gur * c + gui * s;
                let ghi = -gur * s + gui * c;
                // Chain to t: ∂u/∂t = −1.
                let gtr = -gur;
                let gti = -gui;
                // Chain to θ: ∂rot_r/∂θ = −rot_i, ∂rot_i/∂θ = rot_r.
                grad_th[k] += gur * (-rot_i) + gui * rot_r;
                match side {
                    QuerySide::Tail => {
                        grad_ctx[k] += ghr;
                        grad_ctx[m + k] += ghi;
                        grad_cand[k] = gtr;
                        grad_cand[m + k] = gti;
                    }
                    QuerySide::Head => {
                        grad_ctx[k] += gtr;
                        grad_ctx[m + k] += gti;
                        grad_cand[k] = ghr;
                        grad_cand[m + k] = ghi;
                    }
                }
            }
            self.entities.adagrad_update(cand.index(), &grad_cand, lr);
        }
        self.entities.adagrad_update(context.index(), &grad_ctx, lr);
        self.phases.adagrad_update(r.index(), &grad_th, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gradcheck;
    use kg_core::sample::seeded_rng;

    fn model() -> RotatE {
        RotatE::new(8, 3, 8, &mut seeded_rng(31))
    }

    #[test]
    fn scorers_consistent() {
        gradcheck::assert_scorers_consistent(&model(), RelationId(2));
    }

    #[test]
    fn steps_move_score_both_sides() {
        let mut m = model();
        gradcheck::assert_step_direction(&mut m, Triple::new(0, 0, 4), QuerySide::Tail);
        let mut m2 = model();
        gradcheck::assert_step_direction(&mut m2, Triple::new(0, 0, 4), QuerySide::Head);
    }

    #[test]
    fn rotation_preserves_modulus() {
        // score(h, r, h·e^{iθ}) must be exactly 0 (perfect rotation).
        let mut m = RotatE::new(2, 1, 4, &mut seeded_rng(6));
        m.entities.row_mut(0).copy_from_slice(&[1.0, 0.5, -0.3, 0.8]);
        let mut q = vec![0.0f32; 4];
        m.tail_query(EntityId(0), RelationId(0), &mut q);
        m.entities.row_mut(1).copy_from_slice(&q);
        let s = m.score(EntityId(0), RelationId(0), EntityId(1));
        assert!(s.abs() < 1e-5, "perfect rotation should score 0, got {s}");
    }

    #[test]
    fn zero_phase_is_identity() {
        let mut m = RotatE::new(2, 1, 4, &mut seeded_rng(7));
        m.phases.row_mut(0).fill(0.0);
        m.entities.row_mut(0).copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
        m.entities.row_mut(1).copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
        let s = m.score(EntityId(0), RelationId(0), EntityId(1));
        assert!(s.abs() < 1e-6, "identity rotation of identical vectors: {s}");
    }

    #[test]
    fn scores_are_nonpositive() {
        let m = model();
        let mut out = vec![0.0f32; 8];
        m.score_tails(EntityId(0), RelationId(0), &mut out);
        assert!(out.iter().all(|&s| s <= 0.0));
    }
}
