//! ConvE (Dettmers et al., 2018): 2D convolution over stacked head/relation
//! embeddings, implemented from scratch with manual backpropagation.
//!
//! Architecture (dropout and batch-norm omitted — documented substitution,
//! they only regularise):
//!
//! ```text
//! reshape(e_h) ∥ reshape(w_r)  →  (2H × W) image
//!   → C filters of 3×3, valid padding, ReLU
//!   → flatten → fully-connected to d, ReLU  → query vector q
//! score(h,r,t) = q · e_t + b_t
//! ```
//!
//! Head queries use *reciprocal relations* (the standard ConvE evaluation
//! protocol): the relation table holds `2|R|` rows and `(?, r, t)` is scored
//! as the tail query `(t, r + |R|, ?)`.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use rand::Rng;

use crate::embedding::EmbeddingTable;
use crate::model::{KgcModel, TrainableModel};

/// Number of convolution filters.
const FILTERS: usize = 8;
/// Convolution kernel side.
const K: usize = 3;
/// Embedding image width (height is `dim / WIDTH`).
const WIDTH: usize = 4;

/// Convolutional KGC model with reciprocal relations.
pub struct ConvE {
    entities: EmbeddingTable,
    /// `2·|R|` rows: `r` for tail queries, `r + |R|` for head queries.
    relations: EmbeddingTable,
    /// Conv kernels: one row of `FILTERS · K · K`.
    kernels: EmbeddingTable,
    /// Per-filter bias.
    kernel_bias: EmbeddingTable,
    /// Fully connected `dim × flat` matrix (one row).
    fc: EmbeddingTable,
    /// FC bias (`dim`).
    fc_bias: EmbeddingTable,
    /// Per-entity output bias.
    entity_bias: EmbeddingTable,
    num_relations: usize,
    dim: usize,
    height: usize,
    out_h: usize,
    out_w: usize,
    flat: usize,
}

/// Intermediates of one forward pass, kept for backprop.
struct Forward {
    /// Stacked input image (2H × W).
    x: Vec<f32>,
    /// Conv pre-activations (FILTERS × out_h × out_w).
    conv_pre: Vec<f32>,
    /// Post-ReLU flattened conv output.
    z: Vec<f32>,
    /// FC pre-activations (dim).
    fc_pre: Vec<f32>,
    /// Final query vector (dim).
    q: Vec<f32>,
}

impl ConvE {
    /// New model; `dim` must be a multiple of [`WIDTH`] (default 4).
    pub fn new<R: Rng>(num_entities: usize, num_relations: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim.is_multiple_of(WIDTH), "ConvE dim must be a multiple of {WIDTH}");
        let height = dim / WIDTH;
        let out_h = 2 * height - (K - 1);
        let out_w = WIDTH - (K - 1);
        assert!(out_w >= 1 && out_h >= 1, "embedding image too small for {K}x{K} conv");
        let flat = FILTERS * out_h * out_w;
        ConvE {
            entities: EmbeddingTable::xavier(num_entities, dim, rng),
            relations: EmbeddingTable::xavier(2 * num_relations, dim, rng),
            kernels: EmbeddingTable::xavier(1, FILTERS * K * K, rng),
            kernel_bias: EmbeddingTable::uniform(1, FILTERS, 0.0, rng),
            fc: EmbeddingTable::xavier(1, dim * flat, rng),
            fc_bias: EmbeddingTable::uniform(1, dim, 0.0, rng),
            entity_bias: EmbeddingTable::uniform(1, num_entities, 0.0, rng),
            num_relations,
            dim,
            height,
            out_h,
            out_w,
            flat,
        }
    }

    /// Forward pass computing the query vector from `(entity, relation row)`.
    fn forward(&self, e: EntityId, rel_row: usize) -> Forward {
        let d = self.dim;
        let (h2, w) = (2 * self.height, WIDTH);
        let mut x = vec![0.0f32; h2 * w];
        x[..d].copy_from_slice(self.entities.row(e.index()));
        x[d..].copy_from_slice(self.relations.row(rel_row));

        let kernels = self.kernels.row(0);
        let kbias = self.kernel_bias.row(0);
        let mut conv_pre = vec![0.0f32; self.flat];
        let mut z = vec![0.0f32; self.flat];
        for f in 0..FILTERS {
            let ker = &kernels[f * K * K..(f + 1) * K * K];
            for oy in 0..self.out_h {
                for ox in 0..self.out_w {
                    let mut acc = kbias[f];
                    for ky in 0..K {
                        let row = &x[(oy + ky) * w..(oy + ky) * w + w];
                        for kx in 0..K {
                            acc += ker[ky * K + kx] * row[ox + kx];
                        }
                    }
                    let idx = f * self.out_h * self.out_w + oy * self.out_w + ox;
                    conv_pre[idx] = acc;
                    z[idx] = acc.max(0.0);
                }
            }
        }

        let fc = self.fc.row(0);
        let fcb = self.fc_bias.row(0);
        let mut fc_pre = vec![0.0f32; d];
        let mut q = vec![0.0f32; d];
        for m in 0..d {
            let row = &fc[m * self.flat..(m + 1) * self.flat];
            let mut acc = fcb[m];
            for (rv, zv) in row.iter().zip(&z) {
                acc += rv * zv;
            }
            fc_pre[m] = acc;
            q[m] = acc.max(0.0);
        }
        Forward { x, conv_pre, z, fc_pre, q }
    }

    /// The `(source entity, relation row)` pair for a query.
    fn query_source(&self, pos: Triple, side: QuerySide) -> (EntityId, usize) {
        match side {
            QuerySide::Tail => (pos.head, pos.relation.index()),
            QuerySide::Head => (pos.tail, pos.relation.index() + self.num_relations),
        }
    }

    /// Backpropagate `dq` through the network, applying Adagrad updates to
    /// the shared parameters and to the source entity/relation rows.
    fn backward(&mut self, fwd: &Forward, e: EntityId, rel_row: usize, dq: &[f32], lr: f32) {
        let d = self.dim;
        let w = WIDTH;

        // Through the output ReLU.
        let mut dfc_pre = vec![0.0f32; d];
        for m in 0..d {
            dfc_pre[m] = if fwd.fc_pre[m] > 0.0 { dq[m] } else { 0.0 };
        }

        // FC layer.
        let mut grad_fc = vec![0.0f32; d * self.flat];
        let mut dz = vec![0.0f32; self.flat];
        {
            let fc = self.fc.row(0);
            for m in 0..d {
                let g = dfc_pre[m];
                if g == 0.0 {
                    continue;
                }
                let row = &fc[m * self.flat..(m + 1) * self.flat];
                let grow = &mut grad_fc[m * self.flat..(m + 1) * self.flat];
                for n in 0..self.flat {
                    grow[n] = g * fwd.z[n];
                    dz[n] += g * row[n];
                }
            }
        }

        // Through the conv ReLU.
        #[allow(clippy::needless_range_loop)]
        for n in 0..self.flat {
            if fwd.conv_pre[n] <= 0.0 {
                dz[n] = 0.0;
            }
        }

        // Conv layer: kernel gradients and input gradient.
        let mut grad_ker = vec![0.0f32; FILTERS * K * K];
        let mut grad_kbias = vec![0.0f32; FILTERS];
        let mut dx = vec![0.0f32; fwd.x.len()];
        {
            let kernels = self.kernels.row(0);
            for f in 0..FILTERS {
                let ker = &kernels[f * K * K..(f + 1) * K * K];
                let gker = &mut grad_ker[f * K * K..(f + 1) * K * K];
                for oy in 0..self.out_h {
                    for ox in 0..self.out_w {
                        let g = dz[f * self.out_h * self.out_w + oy * self.out_w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        grad_kbias[f] += g;
                        for ky in 0..K {
                            for kx in 0..K {
                                let xi = (oy + ky) * w + ox + kx;
                                gker[ky * K + kx] += g * fwd.x[xi];
                                dx[xi] += g * ker[ky * K + kx];
                            }
                        }
                    }
                }
            }
        }

        self.fc.adagrad_update_dense(&grad_fc, lr);
        self.fc_bias.adagrad_update(0, &dfc_pre, lr);
        self.kernels.adagrad_update_dense(&grad_ker, lr);
        self.kernel_bias.adagrad_update(0, &grad_kbias, lr);
        self.entities.adagrad_update(e.index(), &dx[..d], lr);
        self.relations.adagrad_update(rel_row, &dx[d..], lr);
    }

    fn score_with_q(&self, q: &[f32], entity: usize) -> f32 {
        let e = self.entities.row(entity);
        let mut acc = self.entity_bias.row(0)[entity];
        for (a, b) in q.iter().zip(e) {
            acc += a * b;
        }
        acc
    }
}

impl KgcModel for ConvE {
    fn name(&self) -> &'static str {
        "ConvE"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let fwd = self.forward(h, r.index());
        self.score_with_q(&fwd.q, t.index())
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let fwd = self.forward(h, r.index());
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.score_with_q(&fwd.q, i);
        }
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let fwd = self.forward(t, r.index() + self.num_relations);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.score_with_q(&fwd.q, i);
        }
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let fwd = self.forward(h, r.index());
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.score_with_q(&fwd.q, c.index());
        }
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let fwd = self.forward(t, r.index() + self.num_relations);
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.score_with_q(&fwd.q, c.index());
        }
    }
}

impl TrainableModel for ConvE {
    crate::impl_persistence_tables!(
        entities,
        relations,
        kernels,
        kernel_bias,
        fc,
        fc_bias,
        entity_bias
    );

    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    ) {
        let d = self.dim;
        let (src, rel_row) = self.query_source(pos, side);
        let fwd = self.forward(src, rel_row);

        // Candidate-side gradients and the accumulated dq = Σ w_c e_c.
        let mut dq = vec![0.0f32; d];
        let mut grad_cand = vec![0.0f32; d];
        for (&cand, &w) in candidates.iter().zip(coeffs) {
            if w == 0.0 {
                continue;
            }
            let ce = self.entities.row(cand.index());
            for k in 0..d {
                dq[k] += w * ce[k];
                grad_cand[k] = w * fwd.q[k];
            }
            self.entities.adagrad_update(cand.index(), &grad_cand, lr);
            self.entity_bias.adagrad_update_scalar(0, cand.index(), w, lr);
        }

        self.backward(&fwd, src, rel_row, &dq, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gradcheck;
    use kg_core::sample::seeded_rng;

    fn model() -> ConvE {
        ConvE::new(8, 3, 16, &mut seeded_rng(61))
    }

    #[test]
    fn scorers_consistent() {
        // ConvE scores head queries through reciprocal relations, so the
        // head scorer is checked for internal consistency only.
        gradcheck::assert_scorers_consistent_recip(&model(), RelationId(1));
    }

    #[test]
    fn steps_move_score_tail_side() {
        let mut m = model();
        gradcheck::assert_step_direction(&mut m, Triple::new(0, 1, 5), QuerySide::Tail);
    }

    #[test]
    fn head_side_step_affects_head_ranking() {
        // For ConvE, head queries go through the reciprocal relation; the
        // ascent property must hold for the *head* scorer.
        let mut m = model();
        let pos = Triple::new(2, 0, 6);
        let mut out = vec![0.0f32; 8];
        m.score_heads(pos.relation, pos.tail, &mut out);
        let before = out[2];
        m.step_group(pos, QuerySide::Head, &[EntityId(2)], &[-1.0], 0.05);
        m.score_heads(pos.relation, pos.tail, &mut out);
        assert!(out[2] > before, "head-side ascent failed: {} -> {}", before, out[2]);
    }

    #[test]
    fn dims_and_shapes() {
        let m = model();
        assert_eq!(m.dim(), 16);
        assert_eq!(m.height, 4);
        assert_eq!(m.out_h, 6);
        assert_eq!(m.out_w, 2);
        assert_eq!(m.flat, FILTERS * 12);
    }

    #[test]
    fn entity_bias_shifts_scores() {
        let mut m = model();
        let s0 = m.score(EntityId(0), RelationId(0), EntityId(1));
        m.entity_bias.row_mut(0)[1] += 1.0;
        let s1 = m.score(EntityId(0), RelationId(0), EntityId(1));
        assert!((s1 - s0 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn finite_difference_on_entity_embedding() {
        // Perturb one input-entity coordinate; the score change must match
        // a numeric directional derivative of the forward pass.
        let m = model();
        let h = EntityId(0);
        let r = RelationId(0);
        let t = EntityId(3);
        let base = m.score(h, r, t);
        let mut m2 = model(); // identical seed ⇒ identical params
        let eps = 1e-3f32;
        m2.entities.row_mut(0)[2] += eps;
        let bumped = m2.score(h, r, t);
        let fd = (bumped - base) / eps;
        // The analytic gradient of the score wrt input is dx (from backward);
        // here we only sanity-check the derivative is finite and the forward
        // pass is deterministic.
        assert!(fd.is_finite());
        assert_eq!(m.score(h, r, t), base);
    }
}
