//! Corruption negative sampling for training.
//!
//! The classic protocol: corrupt one slot (head or tail) of a positive
//! triple with a uniformly drawn entity. Sampling is *unfiltered* except
//! that the true answer itself is rejected — exactly the cheap scheme whose
//! evaluation-time analogue the paper shows to be badly biased, which is
//! fine for training (it only needs a gradient signal, not an estimate).
//!
//! [`NegativeSource`] abstracts the corruption distribution so that the
//! paper's *future-work* extension — drawing training negatives from
//! relation-recommender candidate sets ("a probabilistic recommendation of
//! negative samples from a relation recommender remains [to be studied]",
//! §7) — can be plugged in from `kg-recommend` without a crate cycle.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, Triple};
use rand::rngs::StdRng;
use rand::Rng;

/// A source of corruption negatives for training.
pub trait NegativeSource: Send + Sync {
    /// Fill `out` with corruption entities for `side` of `pos`; entries must
    /// never equal the true answer.
    fn corrupt_into(&self, rng: &mut StdRng, pos: Triple, side: QuerySide, out: &mut [EntityId]);
}

/// Draws corruption negatives uniformly over the entity universe.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    num_entities: usize,
}

impl NegativeSampler {
    /// Sampler over a universe of `num_entities` entities.
    pub fn new(num_entities: usize) -> Self {
        assert!(num_entities >= 2, "need at least two entities to corrupt");
        NegativeSampler { num_entities }
    }

    /// Fill `out` with entities corrupting `side` of `pos`, never equal to
    /// the true answer.
    pub fn corrupt_into<R: Rng>(
        &self,
        rng: &mut R,
        pos: Triple,
        side: QuerySide,
        out: &mut [EntityId],
    ) {
        let answer = side.answer(pos);
        for slot in out.iter_mut() {
            loop {
                let e = EntityId(rng.gen_range(0..self.num_entities as u32));
                if e != answer {
                    *slot = e;
                    break;
                }
            }
        }
    }
}

impl NegativeSource for NegativeSampler {
    fn corrupt_into(&self, rng: &mut StdRng, pos: Triple, side: QuerySide, out: &mut [EntityId]) {
        NegativeSampler::corrupt_into(self, rng, pos, side, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::sample::seeded_rng;

    #[test]
    fn negatives_avoid_the_answer() {
        let s = NegativeSampler::new(10);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 3);
        let mut out = vec![EntityId(0); 64];
        s.corrupt_into(&mut rng, pos, QuerySide::Tail, &mut out);
        assert!(out.iter().all(|&e| e != EntityId(3)));
        s.corrupt_into(&mut rng, pos, QuerySide::Head, &mut out);
        assert!(out.iter().all(|&e| e != EntityId(0)));
    }

    #[test]
    fn negatives_cover_the_universe() {
        let s = NegativeSampler::new(5);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(0, 0, 1);
        let mut seen = [false; 5];
        let mut out = vec![EntityId(0); 8];
        for _ in 0..50 {
            s.corrupt_into(&mut rng, pos, QuerySide::Tail, &mut out);
            for &e in &out {
                seen[e.index()] = true;
            }
        }
        assert!(seen[0] && seen[2] && seen[3] && seen[4]);
        assert!(!seen[1], "the answer must never appear");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_universe() {
        NegativeSampler::new(1);
    }
}
