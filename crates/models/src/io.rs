//! Model persistence: save/load trained models to a compact binary format.
//!
//! A production evaluation framework must evaluate models trained
//! elsewhere/earlier (the paper's §5.3 evaluates *pretrained* ComplEx
//! embeddings); this module provides a versioned little-endian format:
//!
//! ```text
//! magic "KGEV" | format u16 | kind tag u8 | precision hint u8 (v2) |
//! num_entities u64 | num_relations u64 | dim u64 | table count u8 |
//! per table: len u64 + f32s
//! ```
//!
//! Parameter tables are always stored at exact f32; the v2 *precision hint*
//! records what precision the producer recommends serving at (quantization
//! happens on load, never on save, so a snapshot stays usable for further
//! training and for exact serving regardless of the hint). Format v1
//! snapshots load with an implicit f32 hint.
//!
//! Adagrad accumulators are not persisted — a loaded model scores
//! identically but restarts optimiser state if trained further.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kg_core::KgError;

use crate::embedding::EmbeddingTable;
use crate::factory::ModelKind;
use crate::kernels::Precision;
use crate::model::TrainableModel;
use crate::quantized::QuantizedModel;

const MAGIC: &[u8; 4] = b"KGEV";
const FORMAT_V1: u16 = 1;
const FORMAT: u16 = 2;

fn kind_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::TransE => 0,
        ModelKind::DistMult => 1,
        ModelKind::ComplEx => 2,
        ModelKind::Rescal => 3,
        ModelKind::RotatE => 4,
        ModelKind::TuckEr => 5,
        ModelKind::ConvE => 6,
    }
}

fn kind_from_tag(tag: u8) -> Option<ModelKind> {
    Some(match tag {
        0 => ModelKind::TransE,
        1 => ModelKind::DistMult,
        2 => ModelKind::ComplEx,
        3 => ModelKind::Rescal,
        4 => ModelKind::RotatE,
        5 => ModelKind::TuckEr,
        6 => ModelKind::ConvE,
        _ => return None,
    })
}

/// A model's parameter snapshot (tables in a model-specific order).
pub struct ModelSnapshot {
    /// Which architecture.
    pub kind: ModelKind,
    /// Entity count.
    pub num_entities: usize,
    /// Relation count.
    pub num_relations: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Serving-precision recommendation (tables themselves are f32).
    pub precision_hint: Precision,
    /// Raw parameter tables (model-defined order).
    pub tables: Vec<Vec<f32>>,
}

/// Serialise a snapshot to a writer.
pub fn write_snapshot<W: Write>(snapshot: &ModelSnapshot, w: &mut W) -> Result<(), KgError> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(FORMAT);
    buf.put_u8(kind_tag(snapshot.kind));
    buf.put_u8(snapshot.precision_hint.to_byte());
    buf.put_u64_le(snapshot.num_entities as u64);
    buf.put_u64_le(snapshot.num_relations as u64);
    buf.put_u64_le(snapshot.dim as u64);
    buf.put_u8(snapshot.tables.len() as u8);
    for t in &snapshot.tables {
        buf.put_u64_le(t.len() as u64);
        for &v in t {
            buf.put_f32_le(v);
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialise a snapshot from a reader.
pub fn read_snapshot<R: Read>(r: &mut R) -> Result<ModelSnapshot, KgError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let fail = |msg: &str| KgError::InvalidInput(format!("model snapshot: {msg}"));
    if buf.remaining() < 4 + 2 + 1 + 24 + 1 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let format = buf.get_u16_le();
    if format != FORMAT && format != FORMAT_V1 {
        return Err(fail("unsupported format version"));
    }
    let kind = kind_from_tag(buf.get_u8()).ok_or_else(|| fail("unknown model kind"))?;
    if format >= 2 && buf.remaining() < 1 + 24 + 1 {
        return Err(fail("truncated header"));
    }
    let precision_hint = if format >= 2 {
        // v1 predates the hint byte: implicit exact-f32 serving.
        Precision::from_byte(buf.get_u8()).ok_or_else(|| fail("unknown precision hint"))?
    } else {
        Precision::F32
    };
    let num_entities = buf.get_u64_le() as usize;
    let num_relations = buf.get_u64_le() as usize;
    let dim = buf.get_u64_le() as usize;
    let n_tables = buf.get_u8() as usize;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        if buf.remaining() < 8 {
            return Err(fail("truncated table header"));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len * 4 {
            return Err(fail("truncated table payload"));
        }
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            t.push(buf.get_f32_le());
        }
        tables.push(t);
    }
    Ok(ModelSnapshot { kind, num_entities, num_relations, dim, precision_hint, tables })
}

/// Save a trained model.
pub fn save_model<W: Write>(
    model: &dyn TrainableModel,
    kind: ModelKind,
    w: &mut W,
) -> Result<(), KgError> {
    save_model_with_hint(model, kind, Precision::F32, w)
}

/// Save a trained model with a serving-precision recommendation baked into
/// the snapshot header (tables are still written at exact f32).
pub fn save_model_with_hint<W: Write>(
    model: &dyn TrainableModel,
    kind: ModelKind,
    hint: Precision,
    w: &mut W,
) -> Result<(), KgError> {
    let mut snapshot = snapshot_model(model, kind)?;
    snapshot.precision_hint = hint;
    write_snapshot(&snapshot, w)
}

/// Load a model saved by [`save_model`].
pub fn load_model<R: Read>(r: &mut R) -> Result<Box<dyn TrainableModel>, KgError> {
    let snapshot = read_snapshot(r)?;
    model_from_snapshot(&snapshot)
}

/// Rebuild an exact-f32 trainable model from a parsed snapshot.
pub fn model_from_snapshot(snapshot: &ModelSnapshot) -> Result<Box<dyn TrainableModel>, KgError> {
    let mut model = crate::factory::build_model(
        snapshot.kind,
        snapshot.num_entities,
        snapshot.num_relations,
        snapshot.dim,
        0,
    );
    restore_into(model.as_mut(), snapshot)?;
    Ok(model)
}

/// Snapshot a model through its [`TrainableModel::export_tables`] hook
/// (hint defaults to exact f32; see [`save_model_with_hint`]).
pub fn snapshot_model(
    model: &dyn TrainableModel,
    kind: ModelKind,
) -> Result<ModelSnapshot, KgError> {
    let tables = model.export_tables();
    if tables.is_empty() {
        return Err(KgError::InvalidInput(format!(
            "{} does not support persistence",
            model.name()
        )));
    }
    Ok(ModelSnapshot {
        kind,
        num_entities: model.num_entities(),
        num_relations: model.num_relations(),
        dim: model.dim(),
        precision_hint: Precision::F32,
        tables,
    })
}

fn restore_into(model: &mut dyn TrainableModel, snapshot: &ModelSnapshot) -> Result<(), KgError> {
    model.import_tables(&snapshot.tables).map_err(KgError::InvalidInput)
}

/// Save a trained model to a file (creating parent directories).
///
/// The serving registry (`kg-serve`) loads these snapshots at registration
/// time; training jobs write them with this helper.
pub fn save_model_to_path(
    model: &dyn TrainableModel,
    kind: ModelKind,
    path: impl AsRef<std::path::Path>,
) -> Result<(), KgError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_model(model, kind, &mut file)?;
    use std::io::Write as _;
    file.flush()?;
    Ok(())
}

/// Load a model snapshot written by [`save_model_to_path`].
pub fn load_model_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<Box<dyn TrainableModel>, KgError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    load_model(&mut file)
}

/// Read a snapshot from a file without materialising a model.
pub fn read_snapshot_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<ModelSnapshot, KgError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_snapshot(&mut file)
}

/// Load a snapshot and quantize its entity table to `precision` for
/// serving. Fails for model families without a quantized scoring path
/// (TuckER, ConvE) — quantization is never silent.
pub fn load_quantized_from_path(
    path: impl AsRef<std::path::Path>,
    precision: Precision,
) -> Result<QuantizedModel, KgError> {
    let snapshot = read_snapshot_from_path(path)?;
    QuantizedModel::from_snapshot(&snapshot, precision)
}

/// Round-trip helper used in tests: save to memory and load back.
pub fn roundtrip(
    model: &dyn TrainableModel,
    kind: ModelKind,
) -> Result<Box<dyn TrainableModel>, KgError> {
    let mut buf = Vec::new();
    save_model(model, kind, &mut buf)?;
    load_model(&mut buf.as_slice())
}

/// Copy parameters between two [`EmbeddingTable`]s of identical shape.
pub fn copy_table(dst: &mut EmbeddingTable, src: &[f32]) -> Result<(), String> {
    if dst.as_slice().len() != src.len() {
        return Err(format!("table length {} != {}", dst.as_slice().len(), src.len()));
    }
    dst.as_mut_slice().copy_from_slice(src);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::build_model;
    use crate::model::KgcModel;
    use kg_core::{EntityId, RelationId};

    #[test]
    fn roundtrip_preserves_scores_for_all_models() {
        for kind in ModelKind::ALL {
            let dim = match kind {
                ModelKind::ConvE => 16,
                ModelKind::Rescal | ModelKind::TuckEr => 8,
                _ => 12,
            };
            let model = build_model(kind, 9, 3, dim, 77);
            let loaded = roundtrip(model.as_ref(), kind).unwrap();
            assert_eq!(loaded.name(), model.name());
            for h in 0..9u32 {
                let s0 = model.score(EntityId(h), RelationId(1), EntityId((h + 1) % 9));
                let s1 = loaded.score(EntityId(h), RelationId(1), EntityId((h + 1) % 9));
                assert_eq!(s0, s1, "{} score changed after roundtrip", kind.name());
            }
        }
    }

    #[test]
    fn snapshot_header_fields() {
        let model = build_model(ModelKind::ComplEx, 7, 2, 8, 3);
        let mut buf = Vec::new();
        save_model(model.as_ref(), ModelKind::ComplEx, &mut buf).unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(snap.kind, ModelKind::ComplEx);
        assert_eq!(snap.num_entities, 7);
        assert_eq!(snap.num_relations, 2);
        assert_eq!(snap.dim, 8);
        assert_eq!(snap.tables.len(), 2);
    }

    #[test]
    fn corrupted_input_is_rejected() {
        assert!(load_model(&mut &b"NOPE"[..]).is_err());
        let model = build_model(ModelKind::TransE, 5, 2, 8, 1);
        let mut buf = Vec::new();
        save_model(model.as_ref(), ModelKind::TransE, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_model(&mut buf.as_slice()).is_err());
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(load_model(&mut bad_magic.as_slice()).is_err());
    }

    #[test]
    fn path_roundtrip_creates_dirs_and_preserves_scores() {
        let model = build_model(ModelKind::DistMult, 6, 2, 8, 11);
        let dir = std::env::temp_dir().join(format!("kgeval-io-{}", std::process::id()));
        let path = dir.join("nested/model.kgev");
        save_model_to_path(model.as_ref(), ModelKind::DistMult, &path).unwrap();
        let loaded = load_model_from_path(&path).unwrap();
        assert_eq!(
            model.score(EntityId(1), RelationId(0), EntityId(2)),
            loaded.score(EntityId(1), RelationId(0), EntityId(2))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_from_missing_path_errors() {
        assert!(load_model_from_path("/nonexistent/kgeval/model.kgev").is_err());
    }

    #[test]
    fn v1_snapshots_still_load() {
        let model = build_model(ModelKind::TransE, 5, 2, 8, 1);
        let mut v2 = Vec::new();
        save_model(model.as_ref(), ModelKind::TransE, &mut v2).unwrap();
        // Rewrite the header down to format 1: patch the version word and
        // drop the precision-hint byte (offset 7: magic 4 + format 2 + kind 1).
        let mut v1 = v2.clone();
        v1[4] = 1;
        v1.remove(7);
        let snap = read_snapshot(&mut v1.as_slice()).unwrap();
        assert_eq!(snap.precision_hint, Precision::F32);
        let loaded = model_from_snapshot(&snap).unwrap();
        assert_eq!(
            model.score(EntityId(1), RelationId(0), EntityId(3)),
            loaded.score(EntityId(1), RelationId(0), EntityId(3))
        );
    }

    #[test]
    fn precision_hint_roundtrips_and_does_not_change_tables() {
        let model = build_model(ModelKind::ComplEx, 6, 2, 8, 2);
        let mut buf = Vec::new();
        save_model_with_hint(model.as_ref(), ModelKind::ComplEx, Precision::Int8, &mut buf)
            .unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(snap.precision_hint, Precision::Int8);
        let loaded = model_from_snapshot(&snap).unwrap();
        assert_eq!(
            model.score(EntityId(0), RelationId(1), EntityId(5)),
            loaded.score(EntityId(0), RelationId(1), EntityId(5))
        );
        let mut bad_hint = buf.clone();
        bad_hint[7] = 99;
        assert!(read_snapshot(&mut bad_hint.as_slice()).is_err());
    }

    #[test]
    fn quantized_path_loader_respects_family_support() {
        let dir = std::env::temp_dir().join(format!("kgeval-ioq-{}", std::process::id()));
        let path = dir.join("m.kgev");
        let model = build_model(ModelKind::DistMult, 6, 2, 8, 11);
        save_model_to_path(model.as_ref(), ModelKind::DistMult, &path).unwrap();
        let quant = load_quantized_from_path(&path, Precision::Int8).unwrap();
        assert_eq!(quant.precision(), Precision::Int8);
        assert_eq!(quant.num_entities(), 6);
        let tucker = build_model(ModelKind::TuckEr, 6, 2, 8, 11);
        save_model_to_path(tucker.as_ref(), ModelKind::TuckEr, &path).unwrap();
        assert!(load_quantized_from_path(&path, Precision::Int8).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_model_can_keep_training() {
        use crate::trainer::{train_epoch, TrainConfig};
        let triples: Vec<kg_core::Triple> =
            (0..8).map(|i| kg_core::Triple::new(i, 0, (i + 1) % 8)).collect();
        let mut model = build_model(ModelKind::DistMult, 8, 1, 8, 5);
        let mut rng = kg_core::sample::seeded_rng(1);
        train_epoch(model.as_mut(), &triples, &TrainConfig::default(), &mut rng);
        let mut loaded = roundtrip(model.as_ref(), ModelKind::DistMult).unwrap();
        let loss = train_epoch(loaded.as_mut(), &triples, &TrainConfig::default(), &mut rng);
        assert!(loss.is_finite());
    }
}
