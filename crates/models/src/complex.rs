//! ComplEx (Trouillon et al., 2016): `score = Re(⟨e_h, w_r, conj(e_t)⟩)`.
//!
//! Embeddings live in `C^{d/2}`, stored as `[re₀..re_{m−1}, im₀..im_{m−1}]`
//! with `m = dim/2`. The asymmetric conjugation lets ComplEx model
//! anti-symmetric relations that defeat DistMult.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use rand::Rng;

use crate::embedding::{
    combine_all, combine_candidates, combine_range, combine_row, Combine, EmbeddingTable,
};
use crate::model::{KgcModel, TrainableModel};

/// Complex bilinear factorisation model.
pub struct ComplEx {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
    half: usize,
}

impl ComplEx {
    /// New model; `dim` must be even (real + imaginary halves).
    pub fn new<R: Rng>(num_entities: usize, num_relations: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim.is_multiple_of(2), "ComplEx needs an even dimension");
        ComplEx {
            entities: EmbeddingTable::xavier(num_entities, dim, rng),
            relations: EmbeddingTable::xavier(num_relations, dim, rng),
            dim,
            half: dim / 2,
        }
    }

    /// Tail query from raw rows: `q` such that `score = q · e_t` in the
    /// stacked layout. With `a = h ∘ r` (complex): `q_re = Re(a)`,
    /// `q_im = Im(a)`, because `Re(a · conj(t)) = Re(a)Re(t) + Im(a)Im(t)`.
    /// Shared with the quantized serving wrapper.
    pub(crate) fn tail_query_into(he: &[f32], re: &[f32], q: &mut [f32]) {
        let m = q.len() / 2;
        for k in 0..m {
            let (hr, hi) = (he[k], he[m + k]);
            let (rr, ri) = (re[k], re[m + k]);
            q[k] = hr * rr - hi * ri;
            q[m + k] = hr * ri + hi * rr;
        }
    }

    /// Head query from raw rows: `score` is linear in `e_h`; the coefficient
    /// vector is `q_re = Re(r)Re(t) + Im(r)Im(t)`,
    /// `q_im = Re(r)Im(t) − Im(r)Re(t)`.
    pub(crate) fn head_query_into(te: &[f32], re: &[f32], q: &mut [f32]) {
        let m = q.len() / 2;
        for k in 0..m {
            let (tr, ti) = (te[k], te[m + k]);
            let (rr, ri) = (re[k], re[m + k]);
            q[k] = rr * tr + ri * ti;
            q[m + k] = rr * ti - ri * tr;
        }
    }

    fn tail_query(&self, h: EntityId, r: RelationId, q: &mut [f32]) {
        Self::tail_query_into(self.entities.row(h.index()), self.relations.row(r.index()), q);
    }

    fn head_query(&self, r: RelationId, t: EntityId, q: &mut [f32]) {
        Self::head_query_into(self.entities.row(t.index()), self.relations.row(r.index()), q);
    }
}

impl KgcModel for ComplEx {
    fn name(&self) -> &'static str {
        "ComplEx"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.relations.count()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_row(Combine::Dot, &self.entities, &q, t.index())
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_all(Combine::Dot, &self.entities, &q, out);
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_all(Combine::Dot, &self.entities, &q, out);
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_range(Combine::Dot, &self.entities, &q, range, out);
    }

    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_range(Combine::Dot, &self.entities, &q, range, out);
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_candidates(Combine::Dot, &self.entities, &q, candidates, out);
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_candidates(Combine::Dot, &self.entities, &q, candidates, out);
    }
}

impl TrainableModel for ComplEx {
    crate::impl_persistence_tables!(entities, relations);

    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    ) {
        let m = self.half;
        let d = self.dim;
        let context = side.context(pos);
        let r = pos.relation;

        // The score is linear in the candidate embedding with coefficient
        // vector = the query vector for this side; and linear in the fixed
        // entity/relation once the weighted candidate sum v is known.
        let mut q = vec![0.0f32; d];
        match side {
            QuerySide::Tail => self.tail_query(context, r, &mut q),
            QuerySide::Head => self.head_query(r, context, &mut q),
        }
        let mut v = vec![0.0f32; d];
        let mut grad_cand = vec![0.0f32; d];
        for (&cand, &w) in candidates.iter().zip(coeffs) {
            if w == 0.0 {
                continue;
            }
            let ce = self.entities.row(cand.index());
            for k in 0..d {
                v[k] += w * ce[k];
                grad_cand[k] = w * q[k];
            }
            self.entities.adagrad_update(cand.index(), &grad_cand, lr);
        }

        let mut grad_ctx = vec![0.0f32; d];
        let mut grad_rel = vec![0.0f32; d];
        {
            let re = self.relations.row(r.index());
            let ce = self.entities.row(context.index());
            match side {
                QuerySide::Tail => {
                    // context = h; v = Σ w·t.
                    for k in 0..m {
                        let (rr, ri) = (re[k], re[m + k]);
                        let (hr, hi) = (ce[k], ce[m + k]);
                        let (vr, vi) = (v[k], v[m + k]);
                        grad_ctx[k] = rr * vr + ri * vi; // ∂s/∂hr
                        grad_ctx[m + k] = -ri * vr + rr * vi; // ∂s/∂hi
                        grad_rel[k] = hr * vr + hi * vi; // ∂s/∂rr
                        grad_rel[m + k] = -hi * vr + hr * vi; // ∂s/∂ri
                    }
                }
                QuerySide::Head => {
                    // context = t; v = Σ w·h.
                    for k in 0..m {
                        let (rr, ri) = (re[k], re[m + k]);
                        let (tr, ti) = (ce[k], ce[m + k]);
                        let (vr, vi) = (v[k], v[m + k]);
                        grad_ctx[k] = rr * vr - ri * vi; // ∂s/∂tr = Re(h∘r)
                        grad_ctx[m + k] = ri * vr + rr * vi; // ∂s/∂ti
                        grad_rel[k] = vr * tr + vi * ti; // ∂s/∂rr
                        grad_rel[m + k] = -vi * tr + vr * ti; // ∂s/∂ri
                    }
                }
            }
        }
        self.entities.adagrad_update(context.index(), &grad_ctx, lr);
        self.relations.adagrad_update(r.index(), &grad_rel, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gradcheck;
    use kg_core::sample::seeded_rng;

    fn model() -> ComplEx {
        ComplEx::new(8, 3, 8, &mut seeded_rng(13))
    }

    #[test]
    fn scorers_consistent() {
        gradcheck::assert_scorers_consistent(&model(), RelationId(1));
    }

    #[test]
    fn steps_move_score_both_sides() {
        let mut m = model();
        gradcheck::assert_step_direction(&mut m, Triple::new(1, 2, 6), QuerySide::Tail);
        let mut m2 = model();
        gradcheck::assert_step_direction(&mut m2, Triple::new(1, 2, 6), QuerySide::Head);
    }

    #[test]
    fn complex_can_be_asymmetric() {
        // With a relation that has a nonzero imaginary part, score(h,r,t) ≠
        // score(t,r,h) in general.
        let mut m = ComplEx::new(2, 1, 4, &mut seeded_rng(3));
        m.entities.row_mut(0).copy_from_slice(&[1.0, 2.0, 0.5, -1.0]);
        m.entities.row_mut(1).copy_from_slice(&[0.3, 1.0, -0.2, 0.4]);
        m.relations.row_mut(0).copy_from_slice(&[0.3, 0.3, 0.9, -0.1]);
        let fwd = m.score(EntityId(0), RelationId(0), EntityId(1));
        let bwd = m.score(EntityId(1), RelationId(0), EntityId(0));
        assert!((fwd - bwd).abs() > 1e-4, "expected asymmetry, got {fwd} vs {bwd}");
    }

    #[test]
    fn hand_computed_score() {
        // One complex dimension: h = 1+2i, r = 3+4i, t = 5+6i.
        // h·r = (1·3−2·4) + (1·4+2·3)i = −5 + 10i.
        // (h·r)·conj(t) = (−5+10i)(5−6i) = (−25+60) + (50+30)i = 35 + 80i.
        // score = Re = 35.
        let mut m = ComplEx::new(2, 1, 2, &mut seeded_rng(4));
        m.entities.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        m.entities.row_mut(1).copy_from_slice(&[5.0, 6.0]);
        m.relations.row_mut(0).copy_from_slice(&[3.0, 4.0]);
        assert!((m.score(EntityId(0), RelationId(0), EntityId(1)) - 35.0).abs() < 1e-5);
    }
}
