//! TransE (Bordes et al., 2013): `score(h,r,t) = −‖e_h + w_r − e_t‖₁`.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use rand::Rng;

use crate::embedding::{
    combine_all, combine_candidates, combine_range, combine_row, Combine, EmbeddingTable,
};
use crate::model::{KgcModel, TrainableModel};

/// Translational embedding model with L1 distance.
pub struct TransE {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
}

impl TransE {
    /// New model with Xavier-initialised embeddings.
    pub fn new<R: Rng>(num_entities: usize, num_relations: usize, dim: usize, rng: &mut R) -> Self {
        TransE {
            entities: EmbeddingTable::xavier(num_entities, dim, rng),
            relations: EmbeddingTable::xavier(num_relations, dim, rng),
            dim,
        }
    }

    /// Tail query vector `e_h + w_r` from raw rows (shared with the
    /// quantized serving wrapper, which supplies dequantized rows).
    pub(crate) fn tail_query_into(he: &[f32], re: &[f32], q: &mut [f32]) {
        for k in 0..q.len() {
            q[k] = he[k] + re[k];
        }
    }

    /// Head query vector `e_t − w_r` (because `‖h + r − t‖ = ‖h − (t − r)‖`).
    pub(crate) fn head_query_into(te: &[f32], re: &[f32], q: &mut [f32]) {
        for k in 0..q.len() {
            q[k] = te[k] - re[k];
        }
    }

    fn tail_query(&self, h: EntityId, r: RelationId, q: &mut [f32]) {
        Self::tail_query_into(self.entities.row(h.index()), self.relations.row(r.index()), q);
    }

    fn head_query(&self, r: RelationId, t: EntityId, q: &mut [f32]) {
        Self::head_query_into(self.entities.row(t.index()), self.relations.row(r.index()), q);
    }
}

impl KgcModel for TransE {
    fn name(&self) -> &'static str {
        "TransE"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.relations.count()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_row(Combine::NegL1, &self.entities, &q, t.index())
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_all(Combine::NegL1, &self.entities, &q, out);
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_all(Combine::NegL1, &self.entities, &q, out);
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_range(Combine::NegL1, &self.entities, &q, range, out);
    }

    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_range(Combine::NegL1, &self.entities, &q, range, out);
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_candidates(Combine::NegL1, &self.entities, &q, candidates, out);
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_candidates(Combine::NegL1, &self.entities, &q, candidates, out);
    }
}

impl TrainableModel for TransE {
    crate::impl_persistence_tables!(entities, relations);

    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    ) {
        let d = self.dim;
        let context = side.context(pos); // fixed entity of the query
        let r = pos.relation;
        // Accumulated gradients for the fixed entity and the relation.
        let mut grad_ctx = vec![0.0f32; d];
        let mut grad_rel = vec![0.0f32; d];
        let mut grad_cand = vec![0.0f32; d];
        for (&cand, &w) in candidates.iter().zip(coeffs) {
            if w == 0.0 {
                continue;
            }
            // Difference δ = h + r − t for the candidate-completed triple.
            let (h, t) = match side {
                QuerySide::Tail => (context, cand),
                QuerySide::Head => (cand, context),
            };
            let he = self.entities.row(h.index());
            let te = self.entities.row(t.index());
            let re = self.relations.row(r.index());
            for k in 0..d {
                let delta = he[k] + re[k] - te[k];
                let sign = if delta > 0.0 {
                    1.0
                } else if delta < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                // score = −Σ|δ| ⇒ ∂s/∂h = −sign, ∂s/∂r = −sign, ∂s/∂t = +sign.
                let gh = -sign * w;
                let gt = sign * w;
                grad_rel[k] += gh;
                match side {
                    QuerySide::Tail => {
                        grad_ctx[k] += gh;
                        grad_cand[k] = gt;
                    }
                    QuerySide::Head => {
                        grad_ctx[k] += gt;
                        grad_cand[k] = gh;
                    }
                }
            }
            self.entities.adagrad_update(cand.index(), &grad_cand, lr);
        }
        self.entities.adagrad_update(context.index(), &grad_ctx, lr);
        self.relations.adagrad_update(r.index(), &grad_rel, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gradcheck;
    use kg_core::sample::seeded_rng;

    fn model() -> TransE {
        TransE::new(8, 3, 6, &mut seeded_rng(42))
    }

    #[test]
    fn scorers_consistent() {
        gradcheck::assert_scorers_consistent(&model(), RelationId(1));
    }

    #[test]
    fn steps_move_score_both_sides() {
        let mut m = model();
        gradcheck::assert_step_direction(&mut m, Triple::new(0, 1, 3), QuerySide::Tail);
        let mut m2 = model();
        gradcheck::assert_step_direction(&mut m2, Triple::new(0, 1, 3), QuerySide::Head);
    }

    #[test]
    fn perfect_translation_scores_zero() {
        let mut m = model();
        // Force e_0 + w_0 = e_1 exactly.
        let dim = m.dim;
        let h: Vec<f32> = m.entities.row(0).to_vec();
        let r: Vec<f32> = m.relations.row(0).to_vec();
        let target: Vec<f32> = (0..dim).map(|k| h[k] + r[k]).collect();
        m.entities.row_mut(1).copy_from_slice(&target);
        assert_eq!(m.score(EntityId(0), RelationId(0), EntityId(1)), 0.0);
        // Any other entity scores strictly worse (negative).
        assert!(m.score(EntityId(0), RelationId(0), EntityId(2)) < 0.0);
    }

    #[test]
    fn training_separates_positive_from_negative() {
        let mut m = model();
        let pos = Triple::new(0, 0, 1);
        let neg = EntityId(5);
        for _ in 0..60 {
            let cands = [EntityId(1), neg];
            let mut scores = [0.0f32; 2];
            m.score_group(pos, QuerySide::Tail, &cands, &mut scores);
            let mut coeffs = [0.0f32; 2];
            crate::loss::loss_and_coeffs(
                crate::loss::LossKind::Logistic,
                0.0,
                &scores,
                &mut coeffs,
            );
            m.step_group(pos, QuerySide::Tail, &cands, &coeffs, 0.05);
        }
        let s_pos = m.score(pos.head, pos.relation, pos.tail);
        let s_neg = m.score(pos.head, pos.relation, neg);
        assert!(s_pos > s_neg, "positive {s_pos} should beat negative {s_neg}");
    }
}
