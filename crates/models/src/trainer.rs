//! Training loop: shuffled positives, grouped corruption negatives, Adagrad.

use kg_core::sample::seeded_rng;
use kg_core::triple::QuerySide;
use kg_core::{EntityId, Triple};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::loss::{loss_and_coeffs, LossKind};
use crate::model::TrainableModel;
use crate::negative::NegativeSampler;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// Adagrad learning rate.
    pub lr: f32,
    /// Negatives per positive per side.
    pub num_negatives: usize,
    /// Loss function.
    pub loss: LossKind,
    /// Margin for [`LossKind::MarginRanking`].
    pub margin: f32,
    /// RNG seed (shuffling + negative sampling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            lr: 0.1,
            num_negatives: 4,
            loss: LossKind::Logistic,
            margin: 1.0,
            seed: 1234,
        }
    }
}

/// Callback invoked after each epoch with `(epoch index, mean loss)`.
pub type EpochCallback<'a> = dyn FnMut(usize, f32) + 'a;

/// Run one epoch over `triples` with uniform corruption negatives; returns
/// the mean per-group loss.
pub fn train_epoch(
    model: &mut dyn TrainableModel,
    triples: &[Triple],
    config: &TrainConfig,
    rng: &mut StdRng,
) -> f32 {
    let sampler = NegativeSampler::new(model.num_entities());
    train_epoch_with_source(model, triples, config, &sampler, rng)
}

/// Run one epoch drawing negatives from an arbitrary [`NegativeSource`] —
/// the hook for the paper's future-work extension of recommender-guided
/// *training-time* negative sampling.
pub fn train_epoch_with_source(
    model: &mut dyn TrainableModel,
    triples: &[Triple],
    config: &TrainConfig,
    source: &dyn crate::negative::NegativeSource,
    rng: &mut StdRng,
) -> f32 {
    let mut order: Vec<u32> = (0..triples.len() as u32).collect();
    order.shuffle(rng);

    let k = config.num_negatives;
    let mut candidates: Vec<EntityId> = vec![EntityId(0); k + 1];
    let mut scores = vec![0.0f32; k + 1];
    let mut coeffs = vec![0.0f32; k + 1];
    let mut total = 0.0f64;
    let mut groups = 0usize;

    for &idx in &order {
        let pos = triples[idx as usize];
        for side in QuerySide::BOTH {
            candidates[0] = side.answer(pos);
            source.corrupt_into(rng, pos, side, &mut candidates[1..]);
            model.score_group(pos, side, &candidates, &mut scores);
            let loss = loss_and_coeffs(config.loss, config.margin, &scores, &mut coeffs);
            model.step_group(pos, side, &candidates, &coeffs, config.lr);
            total += loss as f64;
            groups += 1;
        }
    }
    if groups == 0 {
        0.0
    } else {
        (total / groups as f64) as f32
    }
}

/// Train for `config.epochs`, invoking `callback` after every epoch (the
/// hook the evaluation harness uses to measure per-epoch metrics).
pub fn train(
    model: &mut dyn TrainableModel,
    triples: &[Triple],
    config: &TrainConfig,
    mut callback: Option<&mut EpochCallback<'_>>,
) {
    let mut rng = seeded_rng(config.seed);
    for epoch in 0..config.epochs {
        let loss = train_epoch(model, triples, config, &mut rng);
        if let Some(cb) = callback.as_deref_mut() {
            cb(epoch, loss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_model, ModelKind};
    use kg_core::RelationId;

    /// A tiny deterministic KG: relation 0 maps entity i → i+1 within a block.
    fn chain(n: u32) -> Vec<Triple> {
        (0..n - 1).map(|i| Triple::new(i, 0, i + 1)).collect()
    }

    #[test]
    fn loss_decreases_over_training() {
        let triples = chain(20);
        let mut model = build_model(ModelKind::DistMult, 20, 1, 16, 5);
        let config = TrainConfig { epochs: 15, ..Default::default() };
        let mut losses = Vec::new();
        let mut cb = |_e: usize, l: f32| losses.push(l);
        train(model.as_mut(), &triples, &config, Some(&mut cb));
        assert_eq!(losses.len(), 15);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn every_model_trains_without_nan() {
        let triples = chain(12);
        for kind in ModelKind::ALL {
            let mut model = build_model(kind, 12, 1, kind.default_dim().min(16), 9);
            let config = TrainConfig { epochs: 2, ..Default::default() };
            let mut last = f32::NAN;
            let mut cb = |_e: usize, l: f32| last = l;
            train(model.as_mut(), &triples, &config, Some(&mut cb));
            assert!(last.is_finite(), "{} produced NaN loss", kind.name());
            let s = model.score(kg_core::EntityId(0), RelationId(0), kg_core::EntityId(1));
            assert!(s.is_finite(), "{} produced NaN score after training", kind.name());
        }
    }

    #[test]
    fn training_improves_link_prediction() {
        // After training, the true tail should outrank a random entity for
        // most training triples.
        let triples = chain(30);
        let mut model = build_model(ModelKind::ComplEx, 30, 1, 16, 11);
        let config = TrainConfig { epochs: 40, lr: 0.15, ..Default::default() };
        train(model.as_mut(), &triples, &config, None);
        let mut wins = 0usize;
        for t in &triples {
            let pos = model.score(t.head, t.relation, t.tail);
            // Entity two steps away is a negative for relation 0.
            let neg = kg_core::EntityId((t.tail.0 + 5) % 30);
            if neg != t.tail {
                let s_neg = model.score(t.head, t.relation, neg);
                if pos > s_neg {
                    wins += 1;
                }
            }
        }
        assert!(wins * 10 >= triples.len() * 7, "only {wins}/{} wins", triples.len());
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut model = build_model(ModelKind::TransE, 5, 1, 8, 1);
        let config = TrainConfig { epochs: 1, ..Default::default() };
        let mut rng = seeded_rng(0);
        let loss = train_epoch(model.as_mut(), &[], &config, &mut rng);
        assert_eq!(loss, 0.0);
    }
}
