//! The model traits: scoring ([`KgcModel`]) and training ([`TrainableModel`]).

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};

/// A knowledge-graph completion model that scores triples.
///
/// Higher scores mean "more plausible". Implementations must provide the
/// vectorised full-row scorers; they are the expensive primitive whose cost
/// the paper's framework avoids paying `|E|` times per query.
pub trait KgcModel: Send + Sync {
    /// Human-readable model name (e.g. `"ComplEx"`).
    fn name(&self) -> &'static str;

    /// Embedding dimensionality (reported in experiment logs).
    fn dim(&self) -> usize;

    /// Number of entities.
    fn num_entities(&self) -> usize;

    /// Number of relations.
    fn num_relations(&self) -> usize;

    /// Storage precision of the entity table on the scoring path. Exact
    /// f32 for every trainable model; [`crate::QuantizedModel`] overrides
    /// this so serving surfaces can report what a model actually runs at.
    fn precision(&self) -> crate::kernels::Precision {
        crate::kernels::Precision::F32
    }

    /// Score a single triple.
    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32;

    /// Scores of *every* entity as the tail of `(h, r, ?)`;
    /// `out.len() == num_entities()`.
    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]);

    /// Scores of *every* entity as the head of `(?, r, t)`.
    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]);

    /// Scores of a candidate subset as tails of `(h, r, ?)`.
    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    );

    /// Scores of a candidate subset as heads of `(?, r, t)`.
    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    );

    /// Scores of a candidate subset answering `triple`'s query on `side`.
    fn score_candidates(
        &self,
        triple: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        match side {
            QuerySide::Tail => {
                self.score_tail_candidates(triple.head, triple.relation, candidates, out)
            }
            QuerySide::Head => {
                self.score_head_candidates(triple.relation, triple.tail, candidates, out)
            }
        }
    }

    /// Scores of every entity answering `triple`'s query on `side`.
    fn score_all(&self, triple: Triple, side: QuerySide, out: &mut [f32]) {
        match side {
            QuerySide::Tail => self.score_tails(triple.head, triple.relation, out),
            QuerySide::Head => self.score_heads(triple.relation, triple.tail, out),
        }
    }

    /// Whether [`KgcModel::score_tails_range`] / `score_heads_range` are
    /// overridden to score only the requested slice of the embedding table.
    ///
    /// When `false` the default range implementations fall back to scoring a
    /// full row and copying the slice out — correct for every model
    /// (including reciprocal-relation head scorers), but `O(|E|)` per call.
    /// The sharded scoring engine consults this to score such models with
    /// one full-row pass per query instead of one per shard.
    fn supports_range_scoring(&self) -> bool {
        false
    }

    /// Scores of entities `range` as tails of `(h, r, ?)`;
    /// `out.len() == range.len()`. Must equal the same slice of
    /// [`KgcModel::score_tails`]'s output bit-for-bit.
    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut full = vec![0.0f32; self.num_entities()];
        self.score_tails(h, r, &mut full);
        out.copy_from_slice(&full[range]);
    }

    /// Scores of entities `range` as heads of `(?, r, t)`; same contract as
    /// [`KgcModel::score_tails_range`].
    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut full = vec![0.0f32; self.num_entities()];
        self.score_heads(r, t, &mut full);
        out.copy_from_slice(&full[range]);
    }

    /// Scores of entities `range` answering `triple`'s query on `side`.
    fn score_range(
        &self,
        triple: Triple,
        side: QuerySide,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        match side {
            QuerySide::Tail => self.score_tails_range(triple.head, triple.relation, range, out),
            QuerySide::Head => self.score_heads_range(triple.relation, triple.tail, range, out),
        }
    }
}

/// A model that can take gradient steps.
///
/// Training is organised in *query groups*: a positive triple, a query side,
/// and a candidate list filling that side's slot (the true answer plus
/// sampled negatives). `coeffs[i] = ∂loss/∂score(candidates[i])`; the model
/// applies one Adagrad step for the group. Grouping lets models share the
/// query-side computation (crucial for TuckER's core contraction and ConvE's
/// convolution) and fold per-candidate gradients into a single rank-1 update.
pub trait TrainableModel: KgcModel {
    /// Scores of the group's candidates (same semantics as
    /// [`KgcModel::score_candidates`], but may cache query intermediates).
    fn score_group(&self, pos: Triple, side: QuerySide, candidates: &[EntityId], out: &mut [f32]) {
        self.score_candidates(pos, side, candidates, out);
    }

    /// Apply one Adagrad step for the group.
    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    );

    /// Export all parameter tables in a model-defined stable order (for
    /// persistence; see [`crate::io`]). Empty = persistence unsupported.
    fn export_tables(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Restore parameters exported by [`TrainableModel::export_tables`].
    fn import_tables(&mut self, _tables: &[Vec<f32>]) -> Result<(), String> {
        Err("persistence not supported by this model".into())
    }
}

/// Helper for implementing `export_tables`/`import_tables` over a fixed set
/// of embedding tables.
#[macro_export]
macro_rules! impl_persistence_tables {
    ($($field:ident),+ $(,)?) => {
        fn export_tables(&self) -> Vec<Vec<f32>> {
            vec![$(self.$field.as_slice().to_vec()),+]
        }

        fn import_tables(&mut self, tables: &[Vec<f32>]) -> Result<(), String> {
            let expected = [$(stringify!($field)),+].len();
            if tables.len() != expected {
                return Err(format!("expected {expected} tables, got {}", tables.len()));
            }
            let mut it = tables.iter();
            $(
                $crate::io::copy_table(&mut self.$field, it.next().unwrap())
                    .map_err(|e| format!(concat!(stringify!($field), ": {}"), e))?;
            )+
            Ok(())
        }
    };
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by every model's tests.
    //!
    //! `step_group` with a single candidate and coefficient 1 performs an
    //! Adagrad step with gradient `g = ∂score/∂θ`. On a fresh model the
    //! first Adagrad step is `−lr · g / (|g| + eps)`, i.e. `−lr · sign(g)`,
    //! which only reveals the gradient's sign. To check magnitudes we
    //! instead verify the *loss decrease* property: stepping with
    //! `coeff = −1` (gradient ascent on the score) must increase the score,
    //! and stepping with `coeff = +1` must decrease it, for every model and
    //! both query sides.

    use super::*;

    /// Assert that `step_group` moves the score in the expected direction.
    pub fn assert_step_direction<M: TrainableModel>(model: &mut M, pos: Triple, side: QuerySide) {
        let answer = side.answer(pos);
        let before = model.score(pos.head, pos.relation, pos.tail);
        // coeff −1 = ascend the score.
        model.step_group(pos, side, &[answer], &[-1.0], 0.05);
        let up = model.score(pos.head, pos.relation, pos.tail);
        assert!(
            up > before,
            "{}: ascent step did not increase score ({} -> {})",
            model.name(),
            before,
            up
        );
        // Several descent steps must bring it back down.
        for _ in 0..5 {
            model.step_group(pos, side, &[answer], &[1.0], 0.05);
        }
        let down = model.score(pos.head, pos.relation, pos.tail);
        assert!(
            down < up,
            "{}: descent steps did not decrease score ({} -> {})",
            model.name(),
            up,
            down
        );
    }

    /// Assert the vectorised scorers agree with `score` on every entity.
    ///
    /// Models using reciprocal relations for head queries (ConvE) should use
    /// [`assert_scorers_consistent_recip`] instead: their `score_heads` is
    /// *deliberately* a different function than `score(·, r, t)`.
    #[allow(clippy::needless_range_loop)] // symmetric/dual-index loop
    pub fn assert_scorers_consistent<M: KgcModel>(model: &M, r: RelationId) {
        let n = model.num_entities();
        let mut tails = vec![0.0f32; n];
        let mut heads = vec![0.0f32; n];
        let h = EntityId(0);
        let t = EntityId((n - 1) as u32);
        model.score_tails(h, r, &mut tails);
        model.score_heads(r, t, &mut heads);
        for e in 0..n {
            let eid = EntityId(e as u32);
            let st = model.score(h, r, eid);
            let sh = model.score(eid, r, t);
            assert!(
                (tails[e] - st).abs() < 1e-3,
                "{}: score_tails[{e}] = {} but score = {}",
                model.name(),
                tails[e],
                st
            );
            assert!(
                (heads[e] - sh).abs() < 1e-3,
                "{}: score_heads[{e}] = {} but score = {}",
                model.name(),
                heads[e],
                sh
            );
        }
        // Candidate scorer agrees with the full scorer.
        let cands: Vec<EntityId> = (0..n as u32).step_by(2).map(EntityId).collect();
        let mut out = vec![0.0f32; cands.len()];
        model.score_tail_candidates(h, r, &cands, &mut out);
        for (i, &c) in cands.iter().enumerate() {
            assert!((out[i] - tails[c.index()]).abs() < 1e-4);
        }
        let mut out_h = vec![0.0f32; cands.len()];
        model.score_head_candidates(r, t, &cands, &mut out_h);
        for (i, &c) in cands.iter().enumerate() {
            assert!((out_h[i] - heads[c.index()]).abs() < 1e-4);
        }
    }

    /// Scorer consistency for reciprocal-relation models: the tail side must
    /// match `score`, and the head side must be internally consistent
    /// (`score_heads` ↔ `score_head_candidates`) even though it evaluates the
    /// inverse relation.
    #[allow(clippy::needless_range_loop)] // dual-index loops
    pub fn assert_scorers_consistent_recip<M: KgcModel>(model: &M, r: RelationId) {
        let n = model.num_entities();
        let h = EntityId(0);
        let t = EntityId((n - 1) as u32);
        let mut tails = vec![0.0f32; n];
        model.score_tails(h, r, &mut tails);
        for e in 0..n {
            let st = model.score(h, r, EntityId(e as u32));
            assert!(
                (tails[e] - st).abs() < 1e-3,
                "{}: score_tails[{e}] = {} but score = {}",
                model.name(),
                tails[e],
                st
            );
        }
        let mut heads = vec![0.0f32; n];
        model.score_heads(r, t, &mut heads);
        let cands: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let mut out = vec![0.0f32; n];
        model.score_head_candidates(r, t, &cands, &mut out);
        for e in 0..n {
            assert!(
                (out[e] - heads[e]).abs() < 1e-4,
                "{}: head candidate scorer disagrees at {e}",
                model.name()
            );
        }
        let mut out_t = vec![0.0f32; n];
        model.score_tail_candidates(h, r, &cands, &mut out_t);
        for e in 0..n {
            assert!((out_t[e] - tails[e]).abs() < 1e-4);
        }
    }
}
