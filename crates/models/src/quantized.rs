//! Inference-only serving wrapper over a quantized entity table.
//!
//! [`QuantizedModel`] rebuilds a trained snapshot with its entity table
//! stored at reduced precision ([`Precision::F16`] or [`Precision::Int8`])
//! while relation parameters stay exact f32 (they are tiny next to the
//! entity table and participate in query construction, where precision is
//! cheapest to keep). Scoring runs the dequantize-free kernels in
//! [`crate::kernels::quant`]; query vectors are built from the *quantized*
//! context row so a model is self-consistent — the same representation of
//! an entity is used whether it appears as context or candidate.
//!
//! Quantization is never silent: construction fails for model families
//! whose scoring path cannot honour the documented accuracy budget
//! (TuckER's core contraction and ConvE's convolution amplify per-dimension
//! error in ways the affine bound does not cover), and
//! [`KgcModel::precision`] reports what the model actually runs at.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, KgError, RelationId, Triple};

use crate::factory::ModelKind;
use crate::io::ModelSnapshot;
use crate::kernels::{Combine, Precision, QuantizedTable};
use crate::model::KgcModel;
use crate::{ComplEx, DistMult, Rescal, RotatE, TransE};

/// A trained model re-materialised for serving with quantized entity
/// storage. Built from a [`ModelSnapshot`] via
/// [`QuantizedModel::from_snapshot`]; supports the full scoring surface
/// (including range scoring for sharded engines) but not training.
pub struct QuantizedModel {
    kind: ModelKind,
    dim: usize,
    num_relations: usize,
    entities: QuantizedTable,
    /// Relation parameters, flat f32 rows of width [`Self::rel_stride`].
    relations: Vec<f32>,
    /// Row width of `relations`: `dim` for TransE/DistMult/ComplEx,
    /// `dim²` for RESCAL matrices, `dim/2` for RotatE phases.
    rel_stride: usize,
}

impl QuantizedModel {
    /// Quantize a snapshot's entity table to `precision`.
    ///
    /// Errors when `precision` is [`Precision::F32`] (nothing to do — load
    /// the exact model instead), when the family has no quantized scoring
    /// path (TuckER, ConvE), or when the snapshot's tables do not have the
    /// shape the family declares.
    pub fn from_snapshot(snapshot: &ModelSnapshot, precision: Precision) -> Result<Self, KgError> {
        let fail = |msg: String| KgError::InvalidInput(format!("quantized load: {msg}"));
        if !precision.is_quantized() {
            return Err(fail("precision f32 is not a quantized representation".into()));
        }
        let kind = snapshot.kind;
        let dim = snapshot.dim;
        let rel_stride = match kind {
            ModelKind::TransE | ModelKind::DistMult | ModelKind::ComplEx => dim,
            ModelKind::Rescal => dim * dim,
            ModelKind::RotatE => dim / 2,
            ModelKind::TuckEr | ModelKind::ConvE => {
                return Err(fail(format!(
                    "{} has no quantized scoring path; serve it at f32",
                    kind.name()
                )));
            }
        };
        if dim == 0 {
            return Err(fail("snapshot has dim 0".into()));
        }
        if snapshot.tables.len() < 2 {
            return Err(fail(format!(
                "{} snapshot needs entity + relation tables, got {}",
                kind.name(),
                snapshot.tables.len()
            )));
        }
        let ents = &snapshot.tables[0];
        let rels = &snapshot.tables[1];
        if ents.len() != snapshot.num_entities * dim {
            return Err(fail(format!(
                "entity table length {} != {} entities × dim {dim}",
                ents.len(),
                snapshot.num_entities
            )));
        }
        if rels.len() != snapshot.num_relations * rel_stride {
            return Err(fail(format!(
                "relation table length {} != {} relations × stride {rel_stride}",
                rels.len(),
                snapshot.num_relations
            )));
        }
        Ok(QuantizedModel {
            kind,
            dim,
            num_relations: snapshot.num_relations,
            entities: QuantizedTable::from_rows(ents, dim, precision),
            relations: rels.clone(),
            rel_stride,
        })
    }

    /// The model family this snapshot came from.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Bytes held by the quantized entity table (for capacity planning).
    pub fn entity_table_bytes(&self) -> usize {
        self.entities.bytes()
    }

    /// Distance/similarity op the family's range kernel uses.
    fn combine(&self) -> Combine {
        match self.kind {
            ModelKind::TransE => Combine::NegL1,
            _ => Combine::Dot,
        }
    }

    fn relation(&self, r: RelationId) -> &[f32] {
        let i = r.index();
        &self.relations[i * self.rel_stride..(i + 1) * self.rel_stride]
    }

    /// Build the tail-side query vector for `(h, r, ?)` into `q`
    /// (`q.len() == dim`), dequantizing the context row.
    fn tail_query(&self, h: EntityId, r: RelationId, q: &mut [f32]) {
        let mut ctx = vec![0.0f32; self.dim];
        self.entities.dequantize_row(h.index(), &mut ctx);
        let re = self.relation(r);
        match self.kind {
            ModelKind::TransE => TransE::tail_query_into(&ctx, re, q),
            ModelKind::DistMult => DistMult::query_into(&ctx, re, q),
            ModelKind::ComplEx => ComplEx::tail_query_into(&ctx, re, q),
            ModelKind::Rescal => Rescal::tail_query_into(&ctx, re, q),
            ModelKind::RotatE => RotatE::tail_query_into(&ctx, re, q),
            ModelKind::TuckEr | ModelKind::ConvE => unreachable!("rejected at construction"),
        }
    }

    /// Build the head-side query vector for `(?, r, t)` into `q`.
    fn head_query(&self, r: RelationId, t: EntityId, q: &mut [f32]) {
        let mut ctx = vec![0.0f32; self.dim];
        self.entities.dequantize_row(t.index(), &mut ctx);
        let re = self.relation(r);
        match self.kind {
            ModelKind::TransE => TransE::head_query_into(&ctx, re, q),
            ModelKind::DistMult => DistMult::query_into(&ctx, re, q),
            ModelKind::ComplEx => ComplEx::head_query_into(&ctx, re, q),
            ModelKind::Rescal => Rescal::head_query_into(&ctx, re, q),
            ModelKind::RotatE => RotatE::head_query_into(&ctx, re, q),
            ModelKind::TuckEr | ModelKind::ConvE => unreachable!("rejected at construction"),
        }
    }

    fn query_for(&self, triple: Triple, side: QuerySide, q: &mut [f32]) {
        match side {
            QuerySide::Tail => self.tail_query(triple.head, triple.relation, q),
            QuerySide::Head => self.head_query(triple.relation, triple.tail, q),
        }
    }

    /// Score entities `range` against a prepared query vector.
    fn combine_query_range(&self, q: &[f32], range: std::ops::Range<usize>, out: &mut [f32]) {
        if self.kind == ModelKind::RotatE {
            // RotatE's modulus distance has no affine-fused kernel; score
            // row-by-row over dequantized candidates.
            let mut row = vec![0.0f32; self.dim];
            for (o, e) in out.iter_mut().zip(range) {
                self.entities.dequantize_row(e, &mut row);
                *o = RotatE::mod_distance_slices(q, &row);
            }
        } else {
            self.entities.combine_range(self.combine(), q, range, out);
        }
    }

    fn combine_query_one(&self, q: &[f32], e: usize) -> f32 {
        if self.kind == ModelKind::RotatE {
            let mut row = vec![0.0f32; self.dim];
            self.entities.dequantize_row(e, &mut row);
            RotatE::mod_distance_slices(q, &row)
        } else {
            self.entities.combine_one(self.combine(), q, e)
        }
    }
}

impl KgcModel for QuantizedModel {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn precision(&self) -> Precision {
        self.entities.precision()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        self.combine_query_one(&q, t.index())
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        self.combine_query_range(&q, 0..self.entities.count(), out);
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        self.combine_query_range(&q, 0..self.entities.count(), out);
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        self.combine_query_range(&q, range, out);
    }

    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        self.combine_query_range(&q, range, out);
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.combine_query_one(&q, c.index());
        }
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        for (o, &c) in out.iter_mut().zip(candidates) {
            *o = self.combine_query_one(&q, c.index());
        }
    }
}

// QuerySide-based helper used by tests and the engine via score_range's
// default; keep the explicit impl so the borrow of `q` is obvious.
impl QuantizedModel {
    /// Scores of entities `range` answering `triple`'s query on `side`
    /// (convenience mirror of [`KgcModel::score_range`]).
    pub fn score_query_range(
        &self,
        triple: Triple,
        side: QuerySide,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.query_for(triple, side, &mut q);
        self.combine_query_range(&q, range, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::build_model;
    use crate::io::snapshot_model;

    fn snapshot_for(kind: ModelKind, dim: usize) -> ModelSnapshot {
        let model = build_model(kind, 10, 3, dim, 99);
        snapshot_model(model.as_ref(), kind).unwrap()
    }

    const QUANT_KINDS: [ModelKind; 5] = [
        ModelKind::TransE,
        ModelKind::DistMult,
        ModelKind::ComplEx,
        ModelKind::Rescal,
        ModelKind::RotatE,
    ];

    #[test]
    fn quantized_tracks_f32_scores_within_budget() {
        for kind in QUANT_KINDS {
            let dim = if kind == ModelKind::Rescal { 8 } else { 12 };
            let snap = snapshot_for(kind, dim);
            let exact = crate::io::model_from_snapshot(&snap).unwrap();
            for precision in [Precision::F16, Precision::Int8] {
                let quant = QuantizedModel::from_snapshot(&snap, precision).unwrap();
                assert_eq!(quant.precision(), precision);
                assert_eq!(quant.name(), exact.name());
                let n = quant.num_entities();
                let mut want = vec![0.0f32; n];
                let mut got = vec![0.0f32; n];
                exact.score_tails(EntityId(3), RelationId(1), &mut want);
                quant.score_tails(EntityId(3), RelationId(1), &mut got);
                // Embeddings here are O(1); affine int8 error per dim is
                // ≤ scale/2 ≈ range/510, so a loose absolute budget holds.
                let tol = if precision == Precision::F16 { 5e-3 } else { 5e-2 };
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() <= tol * (1.0 + w.abs()),
                        "{} {}: {g} vs {w}",
                        kind.name(),
                        precision.name()
                    );
                }
            }
        }
    }

    #[test]
    fn range_and_candidate_scorers_match_full_pass() {
        for kind in QUANT_KINDS {
            let dim = if kind == ModelKind::Rescal { 8 } else { 12 };
            let snap = snapshot_for(kind, dim);
            let quant = QuantizedModel::from_snapshot(&snap, Precision::Int8).unwrap();
            let n = quant.num_entities();
            let mut full = vec![0.0f32; n];
            quant.score_heads(RelationId(0), EntityId(7), &mut full);
            let mut part = vec![0.0f32; 4];
            quant.score_heads_range(RelationId(0), EntityId(7), 3..7, &mut part);
            assert_eq!(&part, &full[3..7], "{}: range ≠ full slice", kind.name());
            let cands = [EntityId(8), EntityId(0), EntityId(5)];
            let mut cs = vec![0.0f32; 3];
            quant.score_head_candidates(RelationId(0), EntityId(7), &cands, &mut cs);
            for (i, &c) in cands.iter().enumerate() {
                assert_eq!(cs[i], full[c.index()], "{}: candidate ≠ full", kind.name());
            }
            // score() agrees with score_tails.
            quant.score_tails(EntityId(2), RelationId(2), &mut full);
            let one = quant.score(EntityId(2), RelationId(2), EntityId(9));
            assert_eq!(one, full[9]);
        }
    }

    #[test]
    fn unsupported_families_and_precisions_are_rejected() {
        let snap = snapshot_for(ModelKind::TuckEr, 8);
        assert!(QuantizedModel::from_snapshot(&snap, Precision::Int8).is_err());
        let snap = snapshot_for(ModelKind::ConvE, 16);
        assert!(QuantizedModel::from_snapshot(&snap, Precision::F16).is_err());
        let snap = snapshot_for(ModelKind::TransE, 8);
        assert!(QuantizedModel::from_snapshot(&snap, Precision::F32).is_err());
    }
}
