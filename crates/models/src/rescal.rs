//! RESCAL (Nickel et al., 2011): `score(h,r,t) = e_hᵀ · W_r · e_t` with a
//! full `d × d` interaction matrix per relation.

use kg_core::triple::QuerySide;
use kg_core::{EntityId, RelationId, Triple};
use rand::Rng;

use crate::embedding::{
    combine_all, combine_candidates, combine_range, combine_row, Combine, EmbeddingTable,
};
use crate::model::{KgcModel, TrainableModel};

/// Bilinear tensor factorisation with per-relation matrices.
pub struct Rescal {
    entities: EmbeddingTable,
    /// Relation matrices, one `d·d` row per relation (row-major `W[i][j]`).
    relations: EmbeddingTable,
    dim: usize,
}

impl Rescal {
    /// New model; each relation owns a `dim × dim` matrix.
    pub fn new<R: Rng>(num_entities: usize, num_relations: usize, dim: usize, rng: &mut R) -> Self {
        Rescal {
            entities: EmbeddingTable::xavier(num_entities, dim, rng),
            relations: EmbeddingTable::xavier(num_relations, dim * dim, rng),
            dim,
        }
    }

    /// Tail query `q_j = Σ_i h_i W_ij` (row vector `hᵀW`) from raw rows
    /// (`w` is the relation's `d·d` matrix). Shared with the quantized
    /// serving wrapper.
    pub(crate) fn tail_query_into(he: &[f32], w: &[f32], q: &mut [f32]) {
        let d = q.len();
        q.fill(0.0);
        for i in 0..d {
            let hi = he[i];
            if hi == 0.0 {
                continue;
            }
            let row = &w[i * d..(i + 1) * d];
            for j in 0..d {
                q[j] += hi * row[j];
            }
        }
    }

    /// Head query `q_i = Σ_j W_ij t_j` (column contraction `W·t`).
    pub(crate) fn head_query_into(te: &[f32], w: &[f32], q: &mut [f32]) {
        let d = q.len();
        for i in 0..d {
            let row = &w[i * d..(i + 1) * d];
            let mut acc = 0.0f32;
            for j in 0..d {
                acc += row[j] * te[j];
            }
            q[i] = acc;
        }
    }

    fn tail_query(&self, h: EntityId, r: RelationId, q: &mut [f32]) {
        Self::tail_query_into(self.entities.row(h.index()), self.relations.row(r.index()), q);
    }

    fn head_query(&self, r: RelationId, t: EntityId, q: &mut [f32]) {
        Self::head_query_into(self.entities.row(t.index()), self.relations.row(r.index()), q);
    }
}

impl KgcModel for Rescal {
    fn name(&self) -> &'static str {
        "RESCAL"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.entities.count()
    }

    fn num_relations(&self) -> usize {
        self.relations.count()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_row(Combine::Dot, &self.entities, &q, t.index())
    }

    fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_all(Combine::Dot, &self.entities, &q, out);
    }

    fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_all(Combine::Dot, &self.entities, &q, out);
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_tails_range(
        &self,
        h: EntityId,
        r: RelationId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_range(Combine::Dot, &self.entities, &q, range, out);
    }

    fn score_heads_range(
        &self,
        r: RelationId,
        t: EntityId,
        range: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_range(Combine::Dot, &self.entities, &q, range, out);
    }

    fn score_tail_candidates(
        &self,
        h: EntityId,
        r: RelationId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.tail_query(h, r, &mut q);
        combine_candidates(Combine::Dot, &self.entities, &q, candidates, out);
    }

    fn score_head_candidates(
        &self,
        r: RelationId,
        t: EntityId,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        let mut q = vec![0.0f32; self.dim];
        self.head_query(r, t, &mut q);
        combine_candidates(Combine::Dot, &self.entities, &q, candidates, out);
    }
}

impl TrainableModel for Rescal {
    crate::impl_persistence_tables!(entities, relations);

    fn step_group(
        &mut self,
        pos: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        coeffs: &[f32],
        lr: f32,
    ) {
        let d = self.dim;
        let context = side.context(pos);
        let r = pos.relation;

        let mut q = vec![0.0f32; d];
        match side {
            QuerySide::Tail => self.tail_query(context, r, &mut q),
            QuerySide::Head => self.head_query(r, context, &mut q),
        }
        // v = Σ w_c e_c.
        let mut v = vec![0.0f32; d];
        let mut grad_cand = vec![0.0f32; d];
        for (&cand, &w) in candidates.iter().zip(coeffs) {
            if w == 0.0 {
                continue;
            }
            let ce = self.entities.row(cand.index());
            for k in 0..d {
                v[k] += w * ce[k];
                grad_cand[k] = w * q[k];
            }
            self.entities.adagrad_update(cand.index(), &grad_cand, lr);
        }

        let mut grad_ctx = vec![0.0f32; d];
        let mut grad_w = vec![0.0f32; d * d];
        {
            let w = self.relations.row(r.index());
            let ce = self.entities.row(context.index());
            match side {
                QuerySide::Tail => {
                    // context = h: ∂s/∂h_i = Σ_j W_ij v_j; ∂s/∂W_ij = h_i v_j.
                    for i in 0..d {
                        let row = &w[i * d..(i + 1) * d];
                        let mut acc = 0.0f32;
                        for j in 0..d {
                            acc += row[j] * v[j];
                            grad_w[i * d + j] = ce[i] * v[j];
                        }
                        grad_ctx[i] = acc;
                    }
                }
                QuerySide::Head => {
                    // context = t: ∂s/∂t_j = Σ_i v_i W_ij; ∂s/∂W_ij = v_i t_j.
                    for i in 0..d {
                        let row = &w[i * d..(i + 1) * d];
                        for j in 0..d {
                            grad_ctx[j] += v[i] * row[j];
                            grad_w[i * d + j] = v[i] * ce[j];
                        }
                    }
                }
            }
        }
        self.entities.adagrad_update(context.index(), &grad_ctx, lr);
        self.relations.adagrad_update(r.index(), &grad_w, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gradcheck;
    use kg_core::sample::seeded_rng;

    fn model() -> Rescal {
        Rescal::new(8, 3, 4, &mut seeded_rng(21))
    }

    #[test]
    fn scorers_consistent() {
        gradcheck::assert_scorers_consistent(&model(), RelationId(0));
    }

    #[test]
    fn steps_move_score_both_sides() {
        let mut m = model();
        gradcheck::assert_step_direction(&mut m, Triple::new(3, 1, 7), QuerySide::Tail);
        let mut m2 = model();
        gradcheck::assert_step_direction(&mut m2, Triple::new(3, 1, 7), QuerySide::Head);
    }

    #[test]
    fn hand_computed_score() {
        let mut m = Rescal::new(2, 1, 2, &mut seeded_rng(5));
        m.entities.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        m.entities.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        // W = [[1, 0], [0, 1]] → score = h·t = 3 + 8 = 11.
        m.relations.row_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        assert!((m.score(EntityId(0), RelationId(0), EntityId(1)) - 11.0).abs() < 1e-5);
        // W = [[0, 1], [0, 0]] → score = h_0 W_01 t_1 = 1·1·4 = 4.
        m.relations.row_mut(0).copy_from_slice(&[0.0, 1.0, 0.0, 0.0]);
        assert!((m.score(EntityId(0), RelationId(0), EntityId(1)) - 4.0).abs() < 1e-5);
        // Asymmetric W ⇒ asymmetric relation.
        let fwd = m.score(EntityId(0), RelationId(0), EntityId(1));
        let bwd = m.score(EntityId(1), RelationId(0), EntityId(0));
        assert_ne!(fwd, bwd);
    }
}
