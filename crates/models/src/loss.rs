//! Training losses and their per-score gradients.

/// Which loss the trainer applies to a query group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LossKind {
    /// Logistic / binary cross-entropy on raw scores:
    /// `L = softplus(−s₊) + Σ softplus(s₋)`.
    Logistic,
    /// Margin ranking: `L = Σ max(0, γ + s₋ − s₊)` with margin `γ`.
    MarginRanking,
}

/// Numerically stable `log(1 + exp(x))`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Compute the loss and per-candidate gradient coefficients for a group.
///
/// `scores[0]` is the positive candidate; the rest are negatives.
/// Writes `∂L/∂scores[i]` into `coeffs` and returns the loss value.
pub fn loss_and_coeffs(kind: LossKind, margin: f32, scores: &[f32], coeffs: &mut [f32]) -> f32 {
    assert!(!scores.is_empty());
    assert_eq!(scores.len(), coeffs.len());
    match kind {
        LossKind::Logistic => {
            let mut loss = softplus(-scores[0]);
            coeffs[0] = -sigmoid(-scores[0]);
            for i in 1..scores.len() {
                loss += softplus(scores[i]);
                coeffs[i] = sigmoid(scores[i]);
            }
            loss
        }
        LossKind::MarginRanking => {
            let pos = scores[0];
            let mut loss = 0.0f32;
            coeffs[0] = 0.0;
            for i in 1..scores.len() {
                let viol = margin + scores[i] - pos;
                if viol > 0.0 {
                    loss += viol;
                    coeffs[i] = 1.0;
                    coeffs[0] -= 1.0;
                } else {
                    coeffs[i] = 0.0;
                }
            }
            loss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_matches_reference() {
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
        assert_eq!(softplus(50.0), 50.0);
        assert_eq!(softplus(-50.0), 0.0);
        assert!((softplus(1.0) - 1.313_261_7).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_basics() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        assert!((sigmoid(1.0) + sigmoid(-1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn logistic_coeff_signs() {
        let scores = [2.0f32, -1.0, 3.0];
        let mut coeffs = [0.0f32; 3];
        let loss = loss_and_coeffs(LossKind::Logistic, 0.0, &scores, &mut coeffs);
        assert!(loss > 0.0);
        assert!(coeffs[0] < 0.0, "positive should be pushed up");
        assert!(coeffs[1] > 0.0 && coeffs[2] > 0.0, "negatives pushed down");
        // A very confident positive contributes almost nothing.
        let mut c2 = [0.0f32; 1];
        loss_and_coeffs(LossKind::Logistic, 0.0, &[30.0], &mut c2);
        assert!(c2[0].abs() < 1e-6);
    }

    #[test]
    fn logistic_gradient_is_derivative() {
        // Finite-difference check of ∂L/∂s on both slots.
        let base = [0.3f32, -0.7];
        let mut coeffs = [0.0f32; 2];
        let l0 = loss_and_coeffs(LossKind::Logistic, 0.0, &base, &mut coeffs);
        let eps = 1e-3f32;
        for slot in 0..2 {
            let mut bumped = base;
            bumped[slot] += eps;
            let mut tmp = [0.0f32; 2];
            let l1 = loss_and_coeffs(LossKind::Logistic, 0.0, &bumped, &mut tmp);
            let fd = (l1 - l0) / eps;
            assert!((fd - coeffs[slot]).abs() < 1e-2, "slot {slot}: fd {fd} vs {}", coeffs[slot]);
        }
    }

    #[test]
    fn margin_only_counts_violations() {
        let scores = [5.0f32, 1.0, 4.9];
        let mut coeffs = [0.0f32; 3];
        // margin 1.0: candidate 1 (5-1=4 >= 1) satisfied; candidate 2 (0.1 < 1) violates.
        let loss = loss_and_coeffs(LossKind::MarginRanking, 1.0, &scores, &mut coeffs);
        assert!((loss - 0.9).abs() < 1e-5);
        assert_eq!(coeffs[1], 0.0);
        assert_eq!(coeffs[2], 1.0);
        assert_eq!(coeffs[0], -1.0);
    }

    #[test]
    fn margin_zero_loss_when_separated() {
        let scores = [10.0f32, 1.0];
        let mut coeffs = [0.0f32; 2];
        let loss = loss_and_coeffs(LossKind::MarginRanking, 2.0, &scores, &mut coeffs);
        assert_eq!(loss, 0.0);
        assert_eq!(coeffs, [0.0, 0.0]);
    }
}
