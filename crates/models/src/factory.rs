//! Model factory: build any of the paper's seven models by name.

use kg_core::sample::seeded_rng;

use crate::model::TrainableModel;

/// Which KGC model to build (§5.2's model zoo).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelKind {
    /// TransE (translational, L1).
    TransE,
    /// DistMult (bilinear diagonal).
    DistMult,
    /// ComplEx (complex bilinear).
    ComplEx,
    /// RESCAL (full bilinear).
    Rescal,
    /// RotatE (complex rotation).
    RotatE,
    /// TuckER (core tensor).
    TuckEr,
    /// ConvE (2D convolution, reciprocal relations).
    ConvE,
}

impl ModelKind {
    /// All models, in the order the paper's tables list them.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::TransE,
        ModelKind::RotatE,
        ModelKind::Rescal,
        ModelKind::DistMult,
        ModelKind::ConvE,
        ModelKind::ComplEx,
        ModelKind::TuckEr,
    ];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::TransE => "TransE",
            ModelKind::DistMult => "DistMult",
            ModelKind::ComplEx => "ComplEx",
            ModelKind::Rescal => "RESCAL",
            ModelKind::RotatE => "RotatE",
            ModelKind::TuckEr => "TuckER",
            ModelKind::ConvE => "ConvE",
        }
    }

    /// Parse a (case-insensitive) model name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "transe" => Some(ModelKind::TransE),
            "distmult" => Some(ModelKind::DistMult),
            "complex" => Some(ModelKind::ComplEx),
            "rescal" => Some(ModelKind::Rescal),
            "rotate" => Some(ModelKind::RotatE),
            "tucker" => Some(ModelKind::TuckEr),
            "conve" => Some(ModelKind::ConvE),
            _ => None,
        }
    }

    /// Default embedding dimension: smaller for the models whose per-step
    /// cost is super-linear in `d` (RESCAL's d², TuckER's d³).
    pub fn default_dim(self) -> usize {
        match self {
            ModelKind::Rescal | ModelKind::TuckEr => 16,
            _ => 32,
        }
    }
}

/// Build a freshly initialised model.
pub fn build_model(
    kind: ModelKind,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    seed: u64,
) -> Box<dyn TrainableModel> {
    let mut rng = seeded_rng(seed);
    match kind {
        ModelKind::TransE => {
            Box::new(crate::TransE::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::DistMult => {
            Box::new(crate::DistMult::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::ComplEx => {
            Box::new(crate::ComplEx::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::Rescal => {
            Box::new(crate::Rescal::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::RotatE => {
            Box::new(crate::RotatE::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::TuckEr => {
            Box::new(crate::TuckEr::new(num_entities, num_relations, dim, &mut rng))
        }
        ModelKind::ConvE => Box::new(crate::ConvE::new(num_entities, num_relations, dim, &mut rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::{EntityId, RelationId};

    #[test]
    fn parse_roundtrip() {
        for k in ModelKind::ALL {
            assert_eq!(ModelKind::parse(k.name()), Some(k));
        }
        assert_eq!(ModelKind::parse("nope"), None);
        assert_eq!(ModelKind::parse("COMPLEX"), Some(ModelKind::ComplEx));
    }

    #[test]
    fn build_all_models_and_score() {
        for k in ModelKind::ALL {
            let m = build_model(k, 12, 4, k.default_dim(), 3);
            assert_eq!(m.num_entities(), 12);
            assert_eq!(m.num_relations(), 4);
            assert_eq!(m.name(), k.name());
            let s = m.score(EntityId(1), RelationId(2), EntityId(5));
            assert!(s.is_finite(), "{} produced non-finite score", k.name());
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = build_model(ModelKind::ComplEx, 10, 3, 8, 7);
        let b = build_model(ModelKind::ComplEx, 10, 3, 8, 7);
        assert_eq!(
            a.score(EntityId(0), RelationId(0), EntityId(1)),
            b.score(EntityId(0), RelationId(0), EntityId(1))
        );
    }
}
