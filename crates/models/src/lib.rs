//! # kg-models
//!
//! Knowledge-graph-completion models implemented from scratch: TransE,
//! DistMult, ComplEx, RESCAL, RotatE, TuckER and ConvE — the model zoo of
//! the paper's §5.2 — together with Adagrad-based training, uniform
//! corruption negative sampling, and vectorised full-row scoring used by
//! the evaluation framework.
//!
//! All models implement [`KgcModel`] (scoring) and [`TrainableModel`]
//! (grouped gradient steps). Scoring reduces to a *query vector* combined
//! with entity embeddings by dot product or negative Lp distance, which
//! makes "score every entity" (the expensive full-ranking primitive) a
//! single pass over the embedding table.

// The only crate (with kg-core) allowed to contain unsafe code, and only behind the
// unsafe-op-in-unsafe-fn discipline: every unsafe operation sits in an
// explicit `unsafe {}` block with its own `// SAFETY:` comment (audited by
// kg-lint KL002 and clippy's undocumented_unsafe_blocks).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod complex;
pub mod conve;
pub mod distmult;
pub mod embedding;
pub mod engine;
pub mod factory;
pub mod io;
pub mod kernels;
pub mod loss;
pub mod model;
pub mod negative;
pub mod quantized;
pub mod rescal;
pub mod rotate;
pub mod trainer;
pub mod transe;
pub mod tucker;

pub use complex::ComplEx;
pub use conve::ConvE;
pub use distmult::DistMult;
pub use embedding::EmbeddingTable;
pub use engine::ScoringEngine;
pub use factory::{build_model, ModelKind};
pub use io::{load_model, save_model};
pub use kernels::{Isa, Precision, QuantizedTable};
pub use model::{KgcModel, TrainableModel};
pub use negative::{NegativeSampler, NegativeSource};
pub use quantized::QuantizedModel;
pub use rescal::Rescal;
pub use rotate::RotatE;
pub use trainer::{train, train_epoch, train_epoch_with_source, EpochCallback, TrainConfig};
pub use transe::TransE;
pub use tucker::TuckEr;
