//! The sharded scoring engine — the single full-ranking entry point.
//!
//! Every consumer that used to allocate a `num_entities()`-sized score row
//! and call [`KgcModel::score_tails`] / `score_heads` directly (the full
//! ranker, the `/topk` endpoint, benches) now goes through this module. The
//! engine partitions the entity space into `S` contiguous shards
//! ([`ShardPlan`]) and streams per-shard score slices through a reusable
//! scratch buffer:
//!
//! * **filtered ranks** are computed incrementally — `higher`/`ties`
//!   counters accumulate shard by shard, so the full `|E|` row never
//!   materialises;
//! * **top-k** builds one bounded heap per shard and merges them with the
//!   deterministic order of [`kg_core::topk`];
//! * models whose scorers reduce to *query vector × table slice*
//!   ([`KgcModel::supports_range_scoring`]) score each shard straight off
//!   its slice of the embedding table (cache-resident inner loops); other
//!   models fall back to one full-row pass per query, sliced logically.
//!
//! **Parity invariant:** because per-row arithmetic is independent of the
//! partition and all comparisons use the total order of
//! [`kg_core::topk::cmp_score`], results are bit-for-bit identical for
//! every shard count `S`, including `S = 1` (the unsharded path).
//!
//! **NaN ordering** (explicit, see [`cmp_score`]): a NaN score is *worse
//! than every real score*. A NaN competitor therefore never counts as
//! `higher` nor as a tie against a real answer, and a NaN answer ranks
//! behind every real competitor instead of silently ranking first.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

use kg_core::parallel::{parallel_map_indexed, BufferPool, ShardPlan};
use kg_core::topk::{cmp_score, merge_topk, TopKHeap};
use kg_core::triple::QuerySide;
use kg_core::{EntityId, Triple};

use crate::model::KgcModel;

/// Scratch-buffer length a per-query pass over `plan` needs for `model`:
/// one shard's width when the model scores ranges natively, the full row
/// otherwise (scored once, then sliced logically).
pub fn scratch_len(model: &dyn KgcModel, plan: &ShardPlan) -> usize {
    if model.supports_range_scoring() {
        plan.max_shard_len()
    } else {
        plan.len()
    }
}

/// Count strictly-higher and tied competitors in one scored shard.
///
/// `scores` is the slice for entities `base..base + scores.len()`; `known`
/// (ascending) are filtered out, and the answer never competes with itself.
fn count_shard(
    scores: &[f32],
    base: usize,
    answer: usize,
    s_true: f32,
    known: &[EntityId],
) -> (usize, usize) {
    let mut higher = 0usize;
    let mut ties = 0usize;
    for (off, &s) in scores.iter().enumerate() {
        match cmp_score(s, s_true) {
            Ordering::Greater => higher += 1,
            Ordering::Equal => {
                if base + off != answer {
                    ties += 1;
                }
            }
            Ordering::Less => {}
        }
    }
    // Remove known-true competitors (the *filtered* protocol). `known` is
    // sorted, so only its sub-range inside this shard is visited.
    let end = base + scores.len();
    let first = known.partition_point(|k| k.index() < base);
    for k in &known[first..] {
        let ki = k.index();
        if ki >= end {
            break;
        }
        if ki == answer {
            continue;
        }
        match cmp_score(scores[ki - base], s_true) {
            Ordering::Greater => higher -= 1,
            Ordering::Equal => ties -= 1,
            Ordering::Less => {}
        }
    }
    (higher, ties)
}

/// Per-shard bounded top-k, excluding `known` (ascending) entities.
fn topk_shard(scores: &[f32], base: usize, known: &[EntityId], k: usize) -> Vec<(u32, f32)> {
    let mut heap = TopKHeap::new(k);
    let mut next_known = known.partition_point(|e| e.index() < base);
    for (off, &s) in scores.iter().enumerate() {
        let e = base + off;
        if next_known < known.len() && known[next_known].index() == e {
            next_known += 1;
            continue;
        }
        heap.push(e as u32, s);
    }
    heap.into_sorted()
}

/// Streamed filtered-rank counters for one query: `(higher, ties)` over all
/// entities except `known`, under the NaN ordering documented at the module
/// level. `scratch.len()` must be at least [`scratch_len`].
///
/// The answer's own score is read out of its shard's slice (not via
/// [`KgcModel::score`]), so reciprocal-relation head scorers rank against
/// the same function they score with.
pub fn rank_counts_with(
    model: &dyn KgcModel,
    plan: &ShardPlan,
    scratch: &mut [f32],
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
) -> (usize, usize) {
    debug_assert_eq!(plan.len(), model.num_entities());
    let answer = side.answer(triple).index();
    if !model.supports_range_scoring() {
        // One full-row pass; counting over the whole row at once is
        // identical to counting shard by shard.
        let buf = &mut scratch[..plan.len()];
        model.score_all(triple, side, buf);
        let s_true = buf[answer];
        return count_shard(buf, 0, answer, s_true, known);
    }
    // Score the answer's shard first to obtain the reference score, then
    // stream the remaining shards; counting is order-independent.
    let answer_shard = plan.shard_of(answer);
    let ra = plan.range(answer_shard);
    let buf = &mut scratch[..ra.len()];
    model.score_range(triple, side, ra.clone(), buf);
    let s_true = buf[answer - ra.start];
    let (mut higher, mut ties) = count_shard(buf, ra.start, answer, s_true, known);
    for s in 0..plan.num_shards() {
        if s == answer_shard {
            continue;
        }
        let r = plan.range(s);
        let buf = &mut scratch[..r.len()];
        model.score_range(triple, side, r.clone(), buf);
        let (h, t) = count_shard(buf, r.start, answer, s_true, known);
        higher += h;
        ties += t;
    }
    (higher, ties)
}

/// Top-k entities for one query, excluding `known` (ascending): per-shard
/// bounded heaps merged deterministically. Best first; ties break toward
/// the lower entity id. `scratch.len()` must be at least [`scratch_len`].
pub fn top_k_with(
    model: &dyn KgcModel,
    plan: &ShardPlan,
    scratch: &mut [f32],
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
    k: usize,
) -> Vec<(u32, f32)> {
    debug_assert_eq!(plan.len(), model.num_entities());
    if k == 0 || plan.is_empty() {
        return Vec::new();
    }
    let mut per_shard = Vec::with_capacity(plan.num_shards());
    if model.supports_range_scoring() {
        for r in plan.ranges() {
            let buf = &mut scratch[..r.len()];
            model.score_range(triple, side, r.clone(), buf);
            per_shard.push(topk_shard(buf, r.start, known, k));
        }
    } else {
        let buf = &mut scratch[..plan.len()];
        model.score_all(triple, side, buf);
        for r in plan.ranges() {
            per_shard.push(topk_shard(&buf[r.clone()], r.start, known, k));
        }
    }
    merge_topk(per_shard, k)
}

/// Fill `ids`/`scores` with the answer followed by `candidates` and their
/// scores — the sampled-evaluation scoring layout (`scores[0]` is the
/// answer's score). Both buffers are cleared and reused, so callers keep
/// per-thread scratch instead of allocating per query.
pub fn score_answer_and_candidates(
    model: &dyn KgcModel,
    triple: Triple,
    side: QuerySide,
    candidates: &[EntityId],
    ids: &mut Vec<EntityId>,
    scores: &mut Vec<f32>,
) {
    ids.clear();
    ids.push(side.answer(triple));
    ids.extend_from_slice(candidates);
    scores.clear();
    scores.resize(ids.len(), 0.0);
    model.score_candidates(triple, side, ids, scores);
}

/// An owning handle bundling a model with its shard plan and scratch pool —
/// what long-lived consumers (the serving registry) hold instead of a bare
/// `Arc<dyn KgcModel>`.
pub struct ScoringEngine {
    model: Arc<dyn KgcModel>,
    plan: ShardPlan,
    pool: BufferPool,
}

impl ScoringEngine {
    /// Engine over `model` with `num_shards` entity shards (`0` = choose
    /// automatically from [`kg_core::parallel::DEFAULT_SHARD_TARGET`]).
    pub fn new(model: Arc<dyn KgcModel>, num_shards: usize) -> Self {
        let n = model.num_entities();
        let plan = if num_shards == 0 { ShardPlan::auto(n) } else { ShardPlan::new(n, num_shards) };
        let pool = BufferPool::new(scratch_len(model.as_ref(), &plan));
        ScoringEngine { model, plan, pool }
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<dyn KgcModel> {
        &self.model
    }

    /// The entity shard plan.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of entity shards.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.plan.len()
    }

    /// Score a single triple (point lookups bypass the shard machinery).
    pub fn score_one(&self, triple: Triple) -> f32 {
        self.model.score(triple.head, triple.relation, triple.tail)
    }

    /// Scores of a candidate subset answering `triple`'s query on `side`
    /// (the sampled-evaluation primitive; passthrough to the model).
    pub fn score_candidates(
        &self,
        triple: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        self.model.score_candidates(triple, side, candidates, out);
    }

    /// Streamed filtered-rank counters for one query (see
    /// [`rank_counts_with`]); scratch comes from the engine's pool.
    pub fn rank_counts(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
    ) -> (usize, usize) {
        let mut buf = self.pool.acquire();
        rank_counts_with(self.model.as_ref(), &self.plan, &mut buf, triple, side, known)
    }

    /// Top-k for one query, shards visited serially (see [`top_k_with`]).
    pub fn top_k(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
        k: usize,
    ) -> Vec<(u32, f32)> {
        let mut buf = self.pool.acquire();
        top_k_with(self.model.as_ref(), &self.plan, &mut buf, triple, side, known, k)
    }

    /// Top-k with the per-shard passes fanned out across `threads` workers
    /// and the per-shard heaps merged; bit-for-bit identical to
    /// [`ScoringEngine::top_k`]. Falls back to the serial pass when the
    /// model cannot score ranges natively (a full-row pass per worker would
    /// cost more than it saves) or there is nothing to fan out.
    pub fn top_k_fanout(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
        k: usize,
        threads: usize,
    ) -> Vec<(u32, f32)> {
        if k == 0 || self.plan.is_empty() {
            return Vec::new();
        }
        if threads <= 1 || self.num_shards() == 1 || !self.model.supports_range_scoring() {
            return self.top_k(triple, side, known, k);
        }
        let per_shard = parallel_map_indexed(self.num_shards(), threads, |s| {
            let r: Range<usize> = self.plan.range(s);
            let mut buf = self.pool.acquire();
            let buf = &mut buf[..r.len()];
            self.model.score_range(triple, side, r.clone(), buf);
            topk_shard(buf, r.start, known, k)
        });
        merge_topk(per_shard, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_model, ModelKind};
    use crate::model::TrainableModel;
    use kg_core::RelationId;

    /// Reference rank counters from a fully materialised row (the seed
    /// path's logic, generalised to cmp_score).
    fn reference_counts(scores: &[f32], answer: usize, known: &[EntityId]) -> (usize, usize) {
        let s_true = scores[answer];
        let mut higher = 0usize;
        let mut ties = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            match cmp_score(s, s_true) {
                Ordering::Greater => higher += 1,
                Ordering::Equal => {
                    if i != answer {
                        ties += 1;
                    }
                }
                Ordering::Less => {}
            }
        }
        for kn in known {
            let ki = kn.index();
            if ki == answer {
                continue;
            }
            match cmp_score(scores[ki], s_true) {
                Ordering::Greater => higher -= 1,
                Ordering::Equal => ties -= 1,
                Ordering::Less => {}
            }
        }
        (higher, ties)
    }

    fn reference_topk(scores: &[f32], known: &[EntityId], k: usize) -> Vec<(u32, f32)> {
        let mut all: Vec<(u32, f32)> = scores
            .iter()
            .enumerate()
            .filter(|(e, _)| known.binary_search(&EntityId(*e as u32)).is_err())
            .map(|(e, &s)| (e as u32, s))
            .collect();
        all.sort_by(|&a, &b| kg_core::topk::cmp_entry(a, b));
        all.truncate(k);
        all
    }

    fn models() -> Vec<Box<dyn TrainableModel>> {
        ModelKind::ALL
            .into_iter()
            .map(|kind| {
                let dim = match kind {
                    ModelKind::ConvE => 16,
                    ModelKind::Rescal | ModelKind::TuckEr => 8,
                    _ => 12,
                };
                build_model(kind, 23, 3, dim, 5)
            })
            .collect()
    }

    #[test]
    fn sharded_counts_match_full_row_for_every_model_and_shard_count() {
        for model in models() {
            let model: &dyn KgcModel = model.as_ref();
            let n = model.num_entities();
            let triple = Triple::new(2, 1, 20);
            let known = [EntityId(4), EntityId(20), EntityId(21)];
            for side in QuerySide::BOTH {
                let mut row = vec![0.0f32; n];
                model.score_all(triple, side, &mut row);
                let want = reference_counts(&row, side.answer(triple).index(), &known);
                for shards in [1usize, 2, 7, n] {
                    let plan = ShardPlan::new(n, shards);
                    let mut scratch = vec![0.0f32; scratch_len(model, &plan)];
                    let got = rank_counts_with(model, &plan, &mut scratch, triple, side, &known);
                    assert_eq!(got, want, "{} S={shards} {side:?}: counts diverged", model.name());
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_reference_for_every_model_and_shard_count() {
        for model in models() {
            let model: &dyn KgcModel = model.as_ref();
            let n = model.num_entities();
            let triple = Triple::new(0, 2, 9);
            let known = [EntityId(1), EntityId(9)];
            for side in QuerySide::BOTH {
                let mut row = vec![0.0f32; n];
                model.score_all(triple, side, &mut row);
                for k in [0usize, 1, 5, n] {
                    let want = reference_topk(&row, &known, k);
                    for shards in [1usize, 2, 7, n] {
                        let plan = ShardPlan::new(n, shards);
                        let mut scratch = vec![0.0f32; scratch_len(model, &plan)];
                        let got = top_k_with(model, &plan, &mut scratch, triple, side, &known, k);
                        assert_eq!(
                            got,
                            want,
                            "{} S={shards} k={k} {side:?}: top-k diverged",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_handle_matches_kernels_and_fanout_is_identical() {
        let model = build_model(ModelKind::ComplEx, 40, 2, 8, 9);
        let model: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
        let triple = Triple::new(3, 1, 17);
        let known = [EntityId(0), EntityId(17)];
        let serial_engine = ScoringEngine::new(Arc::clone(&model), 1);
        for shards in [2usize, 5, 40] {
            let engine = ScoringEngine::new(Arc::clone(&model), shards);
            assert_eq!(engine.num_shards(), shards);
            for side in QuerySide::BOTH {
                assert_eq!(
                    engine.rank_counts(triple, side, &known),
                    serial_engine.rank_counts(triple, side, &known)
                );
                let want = serial_engine.top_k(triple, side, &known, 7);
                assert_eq!(engine.top_k(triple, side, &known, 7), want);
                assert_eq!(engine.top_k_fanout(triple, side, &known, 7, 4), want);
            }
        }
        // The pool recycles: a second query should not grow the pool.
        let engine = ScoringEngine::new(model, 4);
        engine.top_k(triple, QuerySide::Tail, &known, 3);
        engine.top_k(triple, QuerySide::Tail, &known, 3);
        assert!(engine.pool.idle() <= 1, "serial queries reuse one scratch buffer");
    }

    #[test]
    fn auto_sharding_defaults_to_one_shard_for_small_graphs() {
        let model = build_model(ModelKind::DistMult, 30, 2, 8, 3);
        let engine = ScoringEngine::new(Arc::from(model as Box<dyn KgcModel>), 0);
        assert_eq!(engine.num_shards(), 1);
    }

    /// NaN regression (the documented ordering): NaN competitors never
    /// outrank a real answer, and a NaN answer ranks behind every real
    /// competitor.
    #[test]
    fn nan_scores_rank_worst() {
        struct NanModel;
        impl KgcModel for NanModel {
            fn name(&self) -> &'static str {
                "Nan"
            }
            fn dim(&self) -> usize {
                1
            }
            fn num_entities(&self) -> usize {
                4
            }
            fn num_relations(&self) -> usize {
                1
            }
            fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
                [0.5, f32::NAN, 0.9, f32::NAN][t.index()]
            }
            fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = self.score(h, r, EntityId(t as u32));
                }
            }
            fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
                self.score_tails(t, r, out);
            }
            fn score_tail_candidates(
                &self,
                h: EntityId,
                r: RelationId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                for (o, &e) in out.iter_mut().zip(c) {
                    *o = self.score(h, r, e);
                }
            }
            fn score_head_candidates(
                &self,
                r: RelationId,
                t: EntityId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                self.score_tail_candidates(t, r, c, out);
            }
        }
        let plan = ShardPlan::new(4, 2);
        let mut scratch = vec![0.0f32; 4];
        // Real answer (entity 0, score 0.5): only entity 2 (0.9) is higher;
        // the two NaNs neither rank higher nor tie.
        let (higher, ties) = rank_counts_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 0),
            QuerySide::Tail,
            &[],
        );
        assert_eq!((higher, ties), (1, 0));
        // NaN answer (entity 1): both real scores rank higher, the other
        // NaN ties.
        let (higher, ties) = rank_counts_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 1),
            QuerySide::Tail,
            &[],
        );
        assert_eq!((higher, ties), (2, 1));
        // Top-k: NaNs sort after all real scores, lower id first.
        let top = top_k_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 0),
            QuerySide::Tail,
            &[],
            4,
        );
        assert_eq!(top.iter().map(|t| t.0).collect::<Vec<_>>(), vec![2, 0, 1, 3]);
    }
}
