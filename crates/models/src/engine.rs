//! The sharded scoring engine — the single full-ranking entry point.
//!
//! Every consumer that used to allocate a `num_entities()`-sized score row
//! and call [`KgcModel::score_tails`] / `score_heads` directly (the full
//! ranker, the `/topk` endpoint, benches) now goes through this module. The
//! engine partitions the entity space into `S` contiguous shards
//! ([`ShardPlan`]) and streams per-shard score slices through a reusable
//! scratch buffer:
//!
//! * **filtered ranks** are computed incrementally — `higher`/`ties`
//!   counters accumulate shard by shard, so the full `|E|` row never
//!   materialises;
//! * **top-k** builds one bounded heap per shard and merges them with the
//!   deterministic order of [`kg_core::topk`];
//! * models whose scorers reduce to *query vector × table slice*
//!   ([`KgcModel::supports_range_scoring`]) score each shard straight off
//!   its slice of the embedding table (cache-resident inner loops); other
//!   models fall back to one full-row pass per query, sliced logically.
//!
//! **Parity invariant:** because per-row arithmetic is independent of the
//! partition and all comparisons use the total order of
//! [`kg_core::topk::cmp_score`], results are bit-for-bit identical for
//! every shard count `S`, including `S = 1` (the unsharded path).
//!
//! **NaN ordering** (explicit, see [`cmp_score`]): a NaN score is *worse
//! than every real score*. A NaN competitor therefore never counts as
//! `higher` nor as a tie against a real answer, and a NaN answer ranks
//! behind every real competitor instead of silently ranking first.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

use kg_core::parallel::{parallel_map_indexed, BufferPool, ShardPlan};
use kg_core::topk::{cmp_score, merge_topk, TopKHeap};
use kg_core::triple::QuerySide;
use kg_core::{EntityId, Triple};

use crate::model::KgcModel;

/// Scratch-buffer length a per-query pass over `plan` needs for `model`:
/// one shard's width when the model scores ranges natively, the full row
/// otherwise (scored once, then sliced logically).
pub fn scratch_len(model: &dyn KgcModel, plan: &ShardPlan) -> usize {
    if model.supports_range_scoring() {
        plan.max_shard_len()
    } else {
        plan.len()
    }
}

/// Count strictly-higher and tied competitors in one scored shard.
///
/// `scores` is the slice for entities `base..base + scores.len()`; `known`
/// (ascending) are filtered out, and the answer never competes with itself.
fn count_shard(
    scores: &[f32],
    base: usize,
    answer: usize,
    s_true: f32,
    known: &[EntityId],
) -> (usize, usize) {
    let mut higher = 0usize;
    let mut ties = 0usize;
    for (off, &s) in scores.iter().enumerate() {
        match cmp_score(s, s_true) {
            Ordering::Greater => higher += 1,
            Ordering::Equal => {
                if base + off != answer {
                    ties += 1;
                }
            }
            Ordering::Less => {}
        }
    }
    // Remove known-true competitors (the *filtered* protocol). `known` is
    // sorted, so only its sub-range inside this shard is visited.
    let end = base + scores.len();
    let first = known.partition_point(|k| k.index() < base);
    for k in &known[first..] {
        let ki = k.index();
        if ki >= end {
            break;
        }
        if ki == answer {
            continue;
        }
        match cmp_score(scores[ki - base], s_true) {
            Ordering::Greater => higher -= 1,
            Ordering::Equal => ties -= 1,
            Ordering::Less => {}
        }
    }
    (higher, ties)
}

/// Per-shard bounded top-k, excluding `known` (ascending) entities.
fn topk_shard(scores: &[f32], base: usize, known: &[EntityId], k: usize) -> Vec<(u32, f32)> {
    let mut heap = TopKHeap::new(k);
    let mut next_known = known.partition_point(|e| e.index() < base);
    for (off, &s) in scores.iter().enumerate() {
        let e = base + off;
        if next_known < known.len() && known[next_known].index() == e {
            next_known += 1;
            continue;
        }
        heap.push(e as u32, s);
    }
    heap.into_sorted()
}

/// Streamed filtered-rank counters for one query: `(higher, ties)` over all
/// entities except `known`, under the NaN ordering documented at the module
/// level. `scratch.len()` must be at least [`scratch_len`].
///
/// The answer's own score is read out of its shard's slice (not via
/// [`KgcModel::score`]), so reciprocal-relation head scorers rank against
/// the same function they score with.
pub fn rank_counts_with(
    model: &dyn KgcModel,
    plan: &ShardPlan,
    scratch: &mut [f32],
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
) -> (usize, usize) {
    debug_assert_eq!(plan.len(), model.num_entities());
    let answer = side.answer(triple).index();
    if !model.supports_range_scoring() {
        // One full-row pass; counting over the whole row at once is
        // identical to counting shard by shard.
        let buf = &mut scratch[..plan.len()];
        model.score_all(triple, side, buf);
        let s_true = buf[answer];
        return count_shard(buf, 0, answer, s_true, known);
    }
    // Score the answer's shard first to obtain the reference score, then
    // stream the remaining shards; counting is order-independent.
    let answer_shard = plan.shard_of(answer);
    let ra = plan.range(answer_shard);
    let buf = &mut scratch[..ra.len()];
    model.score_range(triple, side, ra.clone(), buf);
    let s_true = buf[answer - ra.start];
    let (mut higher, mut ties) = count_shard(buf, ra.start, answer, s_true, known);
    for s in 0..plan.num_shards() {
        if s == answer_shard {
            continue;
        }
        let r = plan.range(s);
        let buf = &mut scratch[..r.len()];
        model.score_range(triple, side, r.clone(), buf);
        let (h, t) = count_shard(buf, r.start, answer, s_true, known);
        higher += h;
        ties += t;
    }
    (higher, ties)
}

/// Top-k entities for one query, excluding `known` (ascending): per-shard
/// bounded heaps merged deterministically. Best first; ties break toward
/// the lower entity id. `scratch.len()` must be at least [`scratch_len`].
pub fn top_k_with(
    model: &dyn KgcModel,
    plan: &ShardPlan,
    scratch: &mut [f32],
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
    k: usize,
) -> Vec<(u32, f32)> {
    debug_assert_eq!(plan.len(), model.num_entities());
    if k == 0 || plan.is_empty() {
        return Vec::new();
    }
    let mut per_shard = Vec::with_capacity(plan.num_shards());
    if model.supports_range_scoring() {
        for r in plan.ranges() {
            let buf = &mut scratch[..r.len()];
            model.score_range(triple, side, r.clone(), buf);
            per_shard.push(topk_shard(buf, r.start, known, k));
        }
    } else {
        let buf = &mut scratch[..plan.len()];
        model.score_all(triple, side, buf);
        for r in plan.ranges() {
            per_shard.push(topk_shard(&buf[r.clone()], r.start, known, k));
        }
    }
    merge_topk(per_shard, k)
}

/// The latency pass's working plan: the storage plan, subdivided when it
/// has fewer shards than the fan-out has workers (a small-graph model
/// auto-shards to one cache-resident shard, which would otherwise silently
/// serialise the whole fan-out). Finer shards are strictly narrower than
/// the storage plan's, so every scratch buffer sized for the storage plan
/// still fits, and the parity invariant makes any partition safe.
fn fanout_plan(plan: &ShardPlan, fanout: usize) -> ShardPlan {
    if plan.num_shards() < fanout {
        ShardPlan::new(plan.len(), fanout)
    } else {
        *plan
    }
}

/// Streamed filtered-rank counters for one query with the per-shard passes
/// fanned out across `fanout` workers — the latency path of
/// [`rank_counts_with`], bit-for-bit identical to it for every model and
/// shard count (counter sums are order-independent).
///
/// Range-scoring models score the answer's shard first (serially, to fix
/// the reference score) and fan the remaining shards out; models without
/// range scoring score one full row — the pass that cannot be split — and
/// fan out the *counting* over the row's shard slices. A storage plan
/// coarser than the fan-out is subdivided first (see [`fanout_plan`]), so
/// small-graph models fan out too. Scratch buffers come from `pool`, so a
/// caller ranking many queries reuses one pool across all of them.
pub fn rank_counts_fanout(
    model: &dyn KgcModel,
    plan: &ShardPlan,
    pool: &BufferPool,
    triple: Triple,
    side: QuerySide,
    known: &[EntityId],
    fanout: usize,
) -> (usize, usize) {
    debug_assert_eq!(plan.len(), model.num_entities());
    debug_assert!(pool.buffer_len() >= scratch_len(model, plan));
    let plan = &fanout_plan(plan, fanout);
    if fanout <= 1 || plan.num_shards() == 1 {
        let mut buf = pool.acquire();
        return rank_counts_with(model, plan, &mut buf, triple, side, known);
    }
    let answer = side.answer(triple).index();
    if !model.supports_range_scoring() {
        // One full-row pass (the model cannot score ranges), then the
        // counting fans out across the row's shard slices.
        let mut row = pool.acquire();
        let row = &mut row[..plan.len()];
        model.score_all(triple, side, row);
        let s_true = row[answer];
        let row = &*row;
        let per_shard = parallel_map_indexed(plan.num_shards(), fanout, |s| {
            let r = plan.range(s);
            count_shard(&row[r.clone()], r.start, answer, s_true, known)
        });
        return sum_counts(per_shard);
    }
    // Score the answer's shard serially to fix the reference score, then
    // fan the remaining shards out; merging the counters is associative.
    let answer_shard = plan.shard_of(answer);
    let ra = plan.range(answer_shard);
    let (s_true, first) = {
        let mut buf = pool.acquire();
        let buf = &mut buf[..ra.len()];
        model.score_range(triple, side, ra.clone(), buf);
        let s_true = buf[answer - ra.start];
        (s_true, count_shard(buf, ra.start, answer, s_true, known))
    };
    let rest = parallel_map_indexed(plan.num_shards(), fanout, |s| {
        if s == answer_shard {
            return (0, 0);
        }
        let r = plan.range(s);
        let mut buf = pool.acquire();
        let buf = &mut buf[..r.len()];
        model.score_range(triple, side, r.clone(), buf);
        count_shard(buf, r.start, answer, s_true, known)
    });
    let (higher, ties) = sum_counts(rest);
    (higher + first.0, ties + first.1)
}

fn sum_counts(counts: Vec<(usize, usize)>) -> (usize, usize) {
    counts.into_iter().fold((0, 0), |(h, t), (hh, tt)| (h + hh, t + tt))
}

/// Candidate count below which [`score_answer_and_candidates_fanout`]
/// stays serial: spawning a thread team costs more than scoring this few.
pub const CANDIDATE_FANOUT_MIN: usize = 1024;

/// Fill `ids`/`scores` with the answer followed by `candidates` and their
/// scores — the sampled-evaluation scoring layout (`scores[0]` is the
/// answer's score). Both buffers are cleared and reused, so callers keep
/// per-thread scratch instead of allocating per query.
pub fn score_answer_and_candidates(
    model: &dyn KgcModel,
    triple: Triple,
    side: QuerySide,
    candidates: &[EntityId],
    ids: &mut Vec<EntityId>,
    scores: &mut Vec<f32>,
) {
    score_answer_and_candidates_fanout(model, triple, side, candidates, ids, scores, 1);
}

/// [`score_answer_and_candidates`] with the candidate list chunked across
/// `fanout` workers (the sampled-evaluation latency path). Per-candidate
/// arithmetic is independent of its neighbours, so the result is
/// bit-for-bit the single-pass one; lists shorter than
/// [`CANDIDATE_FANOUT_MIN`] are scored serially regardless.
pub fn score_answer_and_candidates_fanout(
    model: &dyn KgcModel,
    triple: Triple,
    side: QuerySide,
    candidates: &[EntityId],
    ids: &mut Vec<EntityId>,
    scores: &mut Vec<f32>,
    fanout: usize,
) {
    ids.clear();
    ids.push(side.answer(triple));
    ids.extend_from_slice(candidates);
    scores.clear();
    scores.resize(ids.len(), 0.0);
    if fanout <= 1 || ids.len() < CANDIDATE_FANOUT_MIN {
        model.score_candidates(triple, side, ids, scores);
        return;
    }
    let ids: &[EntityId] = ids;
    let chunks = ShardPlan::new(ids.len(), fanout);
    std::thread::scope(|scope| {
        let mut rest: &mut [f32] = scores;
        for r in chunks.ranges() {
            let (head, tail) = rest.split_at_mut(r.len());
            let chunk = &ids[r];
            scope.spawn(move || model.score_candidates(triple, side, chunk, head));
            rest = tail;
        }
    });
}

/// An owning handle bundling a model with its shard plan and scratch pool —
/// what long-lived consumers (the serving registry) hold instead of a bare
/// `Arc<dyn KgcModel>`.
pub struct ScoringEngine {
    model: Arc<dyn KgcModel>,
    plan: ShardPlan,
    pool: BufferPool,
}

impl ScoringEngine {
    /// Engine over `model` with `num_shards` entity shards (`0` = choose
    /// automatically from [`kg_core::parallel::DEFAULT_SHARD_TARGET`]).
    pub fn new(model: Arc<dyn KgcModel>, num_shards: usize) -> Self {
        let n = model.num_entities();
        let plan = if num_shards == 0 { ShardPlan::auto(n) } else { ShardPlan::new(n, num_shards) };
        let pool = BufferPool::new(scratch_len(model.as_ref(), &plan));
        ScoringEngine { model, plan, pool }
    }

    /// The underlying model.
    pub fn model(&self) -> &Arc<dyn KgcModel> {
        &self.model
    }

    /// The entity shard plan.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of entity shards.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.plan.len()
    }

    /// Score a single triple (point lookups bypass the shard machinery).
    pub fn score_one(&self, triple: Triple) -> f32 {
        self.model.score(triple.head, triple.relation, triple.tail)
    }

    /// Scores of a candidate subset answering `triple`'s query on `side`
    /// (the sampled-evaluation primitive; passthrough to the model).
    pub fn score_candidates(
        &self,
        triple: Triple,
        side: QuerySide,
        candidates: &[EntityId],
        out: &mut [f32],
    ) {
        self.model.score_candidates(triple, side, candidates, out);
    }

    /// Streamed filtered-rank counters for one query (see
    /// [`rank_counts_with`]); scratch comes from the engine's pool.
    pub fn rank_counts(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
    ) -> (usize, usize) {
        let mut buf = self.pool.acquire();
        rank_counts_with(self.model.as_ref(), &self.plan, &mut buf, triple, side, known)
    }

    /// Filtered-rank counters with the per-shard passes fanned out across
    /// `fanout` workers; bit-for-bit identical to
    /// [`ScoringEngine::rank_counts`] (see [`rank_counts_fanout`]).
    pub fn rank_counts_fanout(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
        fanout: usize,
    ) -> (usize, usize) {
        rank_counts_fanout(self.model.as_ref(), &self.plan, &self.pool, triple, side, known, fanout)
    }

    /// Top-k for one query, shards visited serially (see [`top_k_with`]).
    pub fn top_k(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
        k: usize,
    ) -> Vec<(u32, f32)> {
        let mut buf = self.pool.acquire();
        top_k_with(self.model.as_ref(), &self.plan, &mut buf, triple, side, known, k)
    }

    /// Top-k with the per-shard passes fanned out across `threads` workers
    /// and the per-shard heaps merged; bit-for-bit identical to
    /// [`ScoringEngine::top_k`] for every model family.
    ///
    /// Range-scoring models score one shard per worker; models without
    /// range scoring score one full row (the pass that cannot be split)
    /// and fan out the per-shard heap building over the row's slices —
    /// previously those models silently degraded to the fully serial pass
    /// no matter how many threads were free. A storage plan coarser than
    /// the fan-out is subdivided first (see [`fanout_plan`]), so
    /// small-graph engines fan out too; serial fallback remains only when
    /// there is genuinely nothing to split (`threads <= 1` or a
    /// single-entity plan).
    pub fn top_k_fanout(
        &self,
        triple: Triple,
        side: QuerySide,
        known: &[EntityId],
        k: usize,
        threads: usize,
    ) -> Vec<(u32, f32)> {
        if k == 0 || self.plan.is_empty() {
            return Vec::new();
        }
        let plan = fanout_plan(&self.plan, threads);
        if threads <= 1 || plan.num_shards() == 1 {
            return self.top_k(triple, side, known, k);
        }
        let per_shard = if self.model.supports_range_scoring() {
            parallel_map_indexed(plan.num_shards(), threads, |s| {
                let r: Range<usize> = plan.range(s);
                let mut buf = self.pool.acquire();
                let buf = &mut buf[..r.len()];
                self.model.score_range(triple, side, r.clone(), buf);
                topk_shard(buf, r.start, known, k)
            })
        } else {
            let mut row = self.pool.acquire();
            let row = &mut row[..plan.len()];
            self.model.score_all(triple, side, row);
            let row = &*row;
            parallel_map_indexed(plan.num_shards(), threads, |s| {
                let r: Range<usize> = plan.range(s);
                topk_shard(&row[r.clone()], r.start, known, k)
            })
        };
        merge_topk(per_shard, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_model, ModelKind};
    use crate::model::TrainableModel;
    use kg_core::RelationId;

    /// Reference rank counters from a fully materialised row (the seed
    /// path's logic, generalised to cmp_score).
    fn reference_counts(scores: &[f32], answer: usize, known: &[EntityId]) -> (usize, usize) {
        let s_true = scores[answer];
        let mut higher = 0usize;
        let mut ties = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            match cmp_score(s, s_true) {
                Ordering::Greater => higher += 1,
                Ordering::Equal => {
                    if i != answer {
                        ties += 1;
                    }
                }
                Ordering::Less => {}
            }
        }
        for kn in known {
            let ki = kn.index();
            if ki == answer {
                continue;
            }
            match cmp_score(scores[ki], s_true) {
                Ordering::Greater => higher -= 1,
                Ordering::Equal => ties -= 1,
                Ordering::Less => {}
            }
        }
        (higher, ties)
    }

    fn reference_topk(scores: &[f32], known: &[EntityId], k: usize) -> Vec<(u32, f32)> {
        let mut all: Vec<(u32, f32)> = scores
            .iter()
            .enumerate()
            .filter(|(e, _)| known.binary_search(&EntityId(*e as u32)).is_err())
            .map(|(e, &s)| (e as u32, s))
            .collect();
        all.sort_by(|&a, &b| kg_core::topk::cmp_entry(a, b));
        all.truncate(k);
        all
    }

    fn models() -> Vec<Box<dyn TrainableModel>> {
        ModelKind::ALL
            .into_iter()
            .map(|kind| {
                let dim = match kind {
                    ModelKind::ConvE => 16,
                    ModelKind::Rescal | ModelKind::TuckEr => 8,
                    _ => 12,
                };
                build_model(kind, 23, 3, dim, 5)
            })
            .collect()
    }

    #[test]
    fn sharded_counts_match_full_row_for_every_model_and_shard_count() {
        for model in models() {
            let model: &dyn KgcModel = model.as_ref();
            let n = model.num_entities();
            let triple = Triple::new(2, 1, 20);
            let known = [EntityId(4), EntityId(20), EntityId(21)];
            for side in QuerySide::BOTH {
                let mut row = vec![0.0f32; n];
                model.score_all(triple, side, &mut row);
                let want = reference_counts(&row, side.answer(triple).index(), &known);
                for shards in [1usize, 2, 7, n] {
                    let plan = ShardPlan::new(n, shards);
                    let mut scratch = vec![0.0f32; scratch_len(model, &plan)];
                    let got = rank_counts_with(model, &plan, &mut scratch, triple, side, &known);
                    assert_eq!(got, want, "{} S={shards} {side:?}: counts diverged", model.name());
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_reference_for_every_model_and_shard_count() {
        for model in models() {
            let model: &dyn KgcModel = model.as_ref();
            let n = model.num_entities();
            let triple = Triple::new(0, 2, 9);
            let known = [EntityId(1), EntityId(9)];
            for side in QuerySide::BOTH {
                let mut row = vec![0.0f32; n];
                model.score_all(triple, side, &mut row);
                for k in [0usize, 1, 5, n] {
                    let want = reference_topk(&row, &known, k);
                    for shards in [1usize, 2, 7, n] {
                        let plan = ShardPlan::new(n, shards);
                        let mut scratch = vec![0.0f32; scratch_len(model, &plan)];
                        let got = top_k_with(model, &plan, &mut scratch, triple, side, &known, k);
                        assert_eq!(
                            got,
                            want,
                            "{} S={shards} k={k} {side:?}: top-k diverged",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fanout_counts_and_topk_match_serial_for_every_model_family() {
        // Parity of the latency path for all 7 families — including the
        // non-range-scoring ones (TuckER, ConvE), which previously fell
        // back to a fully serial pass in `top_k_fanout`.
        for model in models() {
            let model: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
            let n = model.num_entities();
            let triple = Triple::new(5, 2, 11);
            let known = [EntityId(0), EntityId(11), EntityId(19)];
            for shards in [1usize, 2, 7, n] {
                let engine = ScoringEngine::new(Arc::clone(&model), shards);
                for side in QuerySide::BOTH {
                    let counts = engine.rank_counts(triple, side, &known);
                    let top = engine.top_k(triple, side, &known, 6);
                    for fanout in [1usize, 3, 8] {
                        assert_eq!(
                            engine.rank_counts_fanout(triple, side, &known, fanout),
                            counts,
                            "{} S={shards} fanout={fanout} {side:?}: counts diverged",
                            model.name()
                        );
                        assert_eq!(
                            engine.top_k_fanout(triple, side, &known, 6, fanout),
                            top,
                            "{} S={shards} fanout={fanout} {side:?}: top-k diverged",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn coarse_storage_plans_are_subdivided_for_the_fanout_pass() {
        use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
        // A range-scoring model that counts its range calls: with a
        // single-shard storage plan (every small graph under the auto
        // target), the fan-out must subdivide rather than silently run
        // serial on one core.
        struct CountingRange {
            n: usize,
            range_calls: AtomicUsize,
        }
        impl KgcModel for CountingRange {
            fn name(&self) -> &'static str {
                "CountingRange"
            }
            fn dim(&self) -> usize {
                1
            }
            fn num_entities(&self) -> usize {
                self.n
            }
            fn num_relations(&self) -> usize {
                1
            }
            fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
                (t.index() * 7 % self.n) as f32
            }
            fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = self.score(h, r, EntityId(t as u32));
                }
            }
            fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
                self.score_tails(t, r, out);
            }
            fn score_tail_candidates(
                &self,
                h: EntityId,
                r: RelationId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                for (o, &e) in out.iter_mut().zip(c) {
                    *o = self.score(h, r, e);
                }
            }
            fn score_head_candidates(
                &self,
                r: RelationId,
                t: EntityId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                self.score_tail_candidates(t, r, c, out);
            }
            fn supports_range_scoring(&self) -> bool {
                true
            }
            fn score_tails_range(
                &self,
                h: EntityId,
                r: RelationId,
                range: std::ops::Range<usize>,
                out: &mut [f32],
            ) {
                self.range_calls.fetch_add(1, AtomicOrdering::Relaxed);
                for (off, o) in out.iter_mut().enumerate() {
                    *o = self.score(h, r, EntityId((range.start + off) as u32));
                }
            }
            fn score_heads_range(
                &self,
                r: RelationId,
                t: EntityId,
                range: std::ops::Range<usize>,
                out: &mut [f32],
            ) {
                self.score_tails_range(t, r, range, out);
            }
        }

        let concrete = Arc::new(CountingRange { n: 64, range_calls: AtomicUsize::new(0) });
        let model: Arc<dyn KgcModel> = Arc::clone(&concrete) as Arc<dyn KgcModel>;
        let counter = || concrete.range_calls.load(AtomicOrdering::Relaxed);
        let engine = ScoringEngine::new(model, 1);
        assert_eq!(engine.num_shards(), 1, "storage plan is deliberately coarse");
        let triple = Triple::new(3, 0, 9);
        let known = [EntityId(9)];

        let serial_counts = engine.rank_counts(triple, QuerySide::Tail, &known);
        let serial_top = engine.top_k(triple, QuerySide::Tail, &known, 5);
        let before = counter();
        let fanned_counts = engine.rank_counts_fanout(triple, QuerySide::Tail, &known, 4);
        assert_eq!(fanned_counts, serial_counts);
        assert_eq!(
            counter() - before,
            4,
            "a 1-shard plan must subdivide into one range per fan-out worker"
        );
        let before = counter();
        let fanned_top = engine.top_k_fanout(triple, QuerySide::Tail, &known, 5, 4);
        assert_eq!(fanned_top, serial_top);
        assert_eq!(counter() - before, 4, "top-k fans the subdivided shards out too");
    }

    #[test]
    fn candidate_fanout_scores_identically_to_the_serial_pass() {
        let model = build_model(ModelKind::TuckEr, 40, 3, 8, 11);
        let model: &dyn KgcModel = model.as_ref();
        let triple = Triple::new(7, 1, 13);
        // Longer than CANDIDATE_FANOUT_MIN so the chunked path really runs.
        let candidates: Vec<EntityId> =
            (0..(CANDIDATE_FANOUT_MIN as u32 + 64)).map(|i| EntityId(i % 40)).collect();
        for side in QuerySide::BOTH {
            let (mut ids_a, mut scores_a) = (Vec::new(), Vec::new());
            let (mut ids_b, mut scores_b) = (Vec::new(), Vec::new());
            score_answer_and_candidates(
                model,
                triple,
                side,
                &candidates,
                &mut ids_a,
                &mut scores_a,
            );
            score_answer_and_candidates_fanout(
                model,
                triple,
                side,
                &candidates,
                &mut ids_b,
                &mut scores_b,
                4,
            );
            assert_eq!(ids_a, ids_b);
            assert_eq!(
                scores_a.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                scores_b.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{side:?}: chunked candidate scoring diverged"
            );
        }
    }

    #[test]
    fn engine_handle_matches_kernels_and_fanout_is_identical() {
        let model = build_model(ModelKind::ComplEx, 40, 2, 8, 9);
        let model: Arc<dyn KgcModel> = Arc::from(model as Box<dyn KgcModel>);
        let triple = Triple::new(3, 1, 17);
        let known = [EntityId(0), EntityId(17)];
        let serial_engine = ScoringEngine::new(Arc::clone(&model), 1);
        for shards in [2usize, 5, 40] {
            let engine = ScoringEngine::new(Arc::clone(&model), shards);
            assert_eq!(engine.num_shards(), shards);
            for side in QuerySide::BOTH {
                assert_eq!(
                    engine.rank_counts(triple, side, &known),
                    serial_engine.rank_counts(triple, side, &known)
                );
                let want = serial_engine.top_k(triple, side, &known, 7);
                assert_eq!(engine.top_k(triple, side, &known, 7), want);
                assert_eq!(engine.top_k_fanout(triple, side, &known, 7, 4), want);
            }
        }
        // The pool recycles: a second query should not grow the pool.
        let engine = ScoringEngine::new(model, 4);
        engine.top_k(triple, QuerySide::Tail, &known, 3);
        engine.top_k(triple, QuerySide::Tail, &known, 3);
        assert!(engine.pool.idle() <= 1, "serial queries reuse one scratch buffer");
    }

    #[test]
    fn auto_sharding_defaults_to_one_shard_for_small_graphs() {
        let model = build_model(ModelKind::DistMult, 30, 2, 8, 3);
        let engine = ScoringEngine::new(Arc::from(model as Box<dyn KgcModel>), 0);
        assert_eq!(engine.num_shards(), 1);
    }

    /// NaN regression (the documented ordering): NaN competitors never
    /// outrank a real answer, and a NaN answer ranks behind every real
    /// competitor.
    #[test]
    fn nan_scores_rank_worst() {
        struct NanModel;
        impl KgcModel for NanModel {
            fn name(&self) -> &'static str {
                "Nan"
            }
            fn dim(&self) -> usize {
                1
            }
            fn num_entities(&self) -> usize {
                4
            }
            fn num_relations(&self) -> usize {
                1
            }
            fn score(&self, _h: EntityId, _r: RelationId, t: EntityId) -> f32 {
                [0.5, f32::NAN, 0.9, f32::NAN][t.index()]
            }
            fn score_tails(&self, h: EntityId, r: RelationId, out: &mut [f32]) {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = self.score(h, r, EntityId(t as u32));
                }
            }
            fn score_heads(&self, r: RelationId, t: EntityId, out: &mut [f32]) {
                self.score_tails(t, r, out);
            }
            fn score_tail_candidates(
                &self,
                h: EntityId,
                r: RelationId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                for (o, &e) in out.iter_mut().zip(c) {
                    *o = self.score(h, r, e);
                }
            }
            fn score_head_candidates(
                &self,
                r: RelationId,
                t: EntityId,
                c: &[EntityId],
                out: &mut [f32],
            ) {
                self.score_tail_candidates(t, r, c, out);
            }
        }
        let plan = ShardPlan::new(4, 2);
        let mut scratch = vec![0.0f32; 4];
        // Real answer (entity 0, score 0.5): only entity 2 (0.9) is higher;
        // the two NaNs neither rank higher nor tie.
        let (higher, ties) = rank_counts_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 0),
            QuerySide::Tail,
            &[],
        );
        assert_eq!((higher, ties), (1, 0));
        // NaN answer (entity 1): both real scores rank higher, the other
        // NaN ties.
        let (higher, ties) = rank_counts_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 1),
            QuerySide::Tail,
            &[],
        );
        assert_eq!((higher, ties), (2, 1));
        // Top-k: NaNs sort after all real scores, lower id first.
        let top = top_k_with(
            &NanModel,
            &plan,
            &mut scratch,
            Triple::new(0, 0, 0),
            QuerySide::Tail,
            &[],
            4,
        );
        assert_eq!(top.iter().map(|t| t.0).collect::<Vec<_>>(), vec![2, 0, 1, 3]);
    }
}
